//! Umbrella crate for the TIP (Time-Proportional Instruction Profiling)
//! reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples under
//! `examples/` and the integration tests under `tests/` can use the whole
//! system through a single dependency:
//!
//! - [`isa`] — static program model and functional executor,
//! - [`mem`] — cache/TLB/DRAM hierarchy (Table 1),
//! - [`ooo`] — the 4-wide out-of-order core simulator and its commit trace,
//! - [`core`] — the paper's contribution: Oracle, TIP, and the heuristic
//!   profilers, sampling, error metrics, cycle stacks, overhead analysis,
//! - [`workloads`] — the 27 synthetic benchmarks plus the Imagick pair,
//! - [`trace`] — commit-stage trace serialization for out-of-band
//!   profiler evaluation,
//! - [`bench`](mod@bench) — the experiment harness behind each paper figure/table,
//! - [`serve`] — the networked profiling service (`tipd` daemon, TIPW wire
//!   protocol, `tipctl` client).

#![forbid(unsafe_code)]

pub use tip_bench as bench;
pub use tip_core as core;
pub use tip_isa as isa;
pub use tip_mem as mem;
pub use tip_ooo as ooo;
pub use tip_serve as serve;
pub use tip_trace as trace;
pub use tip_workloads as workloads;
