//! Quickstart: build a small program, run it on the simulated 4-wide
//! out-of-order core with TIP attached, and print the profile next to the
//! golden Oracle reference.
//!
//! Run with: `cargo run --release --example quickstart`

use tip_repro::core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::{BranchBehavior, Granularity, Instr, MemBehavior, ProgramBuilder, Reg};
use tip_repro::ooo::{Core, CoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny hot loop: some arithmetic, one cache-missing load, a store.
    let mut b = ProgramBuilder::named("quickstart");
    let main = b.function("main");
    let hot = b.function("hot_loop");

    let m0 = b.block(main);
    b.push(m0, Instr::call(hot));
    let m1 = b.block(main);
    b.push(m1, Instr::halt());

    let body = b.block(hot);
    b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
    b.push(body, Instr::int_alu(Some(Reg::int(2)), [None, None]));
    b.push(
        body,
        // A load streaming through a 16 MB array: misses past the LLC.
        Instr::load(
            Some(Reg::int(3)),
            None,
            MemBehavior::Stride {
                base: 0x100_0000,
                stride: 64,
                footprint: 16 << 20,
            },
        ),
    );
    b.push(
        body,
        Instr::int_alu(Some(Reg::int(4)), [Some(Reg::int(3)), None]),
    );
    b.push(
        body,
        Instr::store(
            Some(Reg::int(4)),
            None,
            MemBehavior::Stride {
                base: 0x200_0000,
                stride: 8,
                footprint: 64 << 10,
            },
        ),
    );
    b.push(
        body,
        Instr::branch(
            body,
            BranchBehavior::Loop {
                taken_iters: 100_000,
            },
        ),
    );
    let done = b.block(hot);
    b.push(done, Instr::ret());
    let program = b.build()?;

    // Run the core with the Oracle + TIP + NCI attached, all sampling the
    // same cycles.
    let mut bank = ProfilerBank::new(
        &program,
        SamplerConfig::periodic(149),
        &[ProfilerId::Tip, ProfilerId::Nci],
    );
    let mut core = Core::new(&program, CoreConfig::default(), 42);
    let summary = core.run(&mut bank, 100_000_000);
    println!(
        "ran `{}`: {} instructions in {} cycles (IPC {:.2})\n",
        program.name(),
        summary.instructions,
        summary.cycles,
        core.stats().ipc()
    );

    let result = bank.finish();
    for granularity in [Granularity::Function, Granularity::Instruction] {
        let oracle = result.oracle.profile(&program, granularity);
        println!("=== top symbols at {granularity} level (Oracle) ===");
        print!("{}", oracle.top_table(&program, 6));
        for id in [ProfilerId::Tip, ProfilerId::Nci] {
            let err = result.error_of(&program, id, granularity);
            println!("{id} profile error vs Oracle: {:.1}%", 100.0 * err);
        }
        println!();
    }
    Ok(())
}
