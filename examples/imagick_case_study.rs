//! The paper's Section 6 case study, end to end: profile the Imagick
//! stand-in with TIP and NCI, find the CSR (frflags/fsflags) hotspot that
//! only TIP pinpoints, apply the paper's fix (replace them with nops), and
//! measure the speed-up.
//!
//! Run with: `cargo run --release --example imagick_case_study`

use tip_repro::core::{CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::{Granularity, InstrIdx, InstrKind, Program};
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{imagick_optimized, imagick_original};

fn profile(program: &Program) -> (tip_repro::core::BankResult, u64, f64) {
    let mut bank = ProfilerBank::new(
        program,
        SamplerConfig::periodic(149),
        &[ProfilerId::Tip, ProfilerId::Nci],
    );
    let mut core = Core::new(program, CoreConfig::default(), 42);
    let summary = core.run(&mut bank, 200_000_000);
    (bank.finish(), summary.cycles, core.stats().ipc())
}

fn main() {
    let original = imagick_original(1_500_000);
    let (result, orig_cycles, orig_ipc) = profile(&original);

    // Step 1: the function-level profile does not identify the problem —
    // time is spread across four plausible-looking functions.
    println!("=== step 1: function-level profile (TIP) ===");
    let functions = result.profile_of(&original, ProfilerId::Tip, Granularity::Function);
    print!("{}", functions.top_table(&original, 5));

    // Step 2: at the instruction level, TIP attributes the time inside
    // floor/ceil to the CSR instructions; NCI does not.
    println!("\n=== step 2: hottest instructions (TIP vs NCI) ===");
    let tip = result.profile_of(&original, ProfilerId::Tip, Granularity::Instruction);
    let nci = result.profile_of(&original, ProfilerId::Nci, Granularity::Instruction);
    for (label, prof) in [("TIP", &tip), ("NCI", &nci)] {
        println!("--- {label} ---");
        print!("{}", prof.top_table(&original, 5));
    }

    let csr_share = |prof: &tip_repro::core::Profile| -> f64 {
        original
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind() == InstrKind::CsrFlush)
            .map(|(idx, _)| prof.share(tip_repro::isa::SymbolId(idx as u32)))
            .sum()
    };
    println!("\ntime attributed to the four CSR instructions:");
    println!(
        "  TIP: {:.1}%   NCI: {:.1}%",
        100.0 * csr_share(&tip),
        100.0 * csr_share(&nci)
    );

    // TIP also labels the samples: the CSR time is pipeline-flush time.
    let flush_samples = result
        .samples_of(ProfilerId::Tip)
        .iter()
        .filter(|s| s.category == Some(CycleCategory::MiscFlush))
        .count();
    println!(
        "TIP flags {} of {} samples as Misc-flush cycles",
        flush_samples,
        result.samples_of(ProfilerId::Tip).len()
    );

    // Step 3: apply the fix — frflags/fsflags become nops.
    let optimized = imagick_optimized(1_500_000);
    let (_, opt_cycles, opt_ipc) = profile(&optimized);
    println!("\n=== step 3: the fix (CSR -> nop) ===");
    println!("original:  {orig_cycles} cycles (IPC {orig_ipc:.2})");
    println!("optimized: {opt_cycles} cycles (IPC {opt_ipc:.2})");
    println!(
        "speed-up:  {:.2}x   (paper: 1.93x, mostly from restored latency hiding)",
        orig_cycles as f64 / opt_cycles as f64
    );

    // Sanity: the fix touched only the four CSR instructions.
    let changed = original
        .instrs()
        .iter()
        .zip(optimized.instrs())
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(changed, 4);
    let _ = InstrIdx::new(0);
}
