//! All seven profiling strategies on one benchmark, at all three
//! granularities — a condensed view of the paper's Figures 8, 9, and 10.
//!
//! Run with: `cargo run --release --example profiler_shootout [benchmark]`

use tip_repro::core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::isa::Granularity;
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "imagick".to_owned());
    let name = BENCHMARK_NAMES
        .iter()
        .copied()
        .find(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`; pick one of {BENCHMARK_NAMES:?}"));

    let bench = benchmark(name, SuiteScale::Small);
    let mut bank = ProfilerBank::new(
        &bench.program,
        SamplerConfig::periodic(149),
        &ProfilerId::ALL,
    );
    let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
    let summary = core.run(&mut bank, 400_000_000);
    println!(
        "benchmark {name} ({:?} class): {} instrs, {} cycles, IPC {:.2}\n",
        bench.class,
        summary.instructions,
        summary.cycles,
        core.stats().ipc()
    );
    let result = bank.finish();

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "profiler", "function", "basic-block", "instruction"
    );
    for id in ProfilerId::ALL {
        let e = |g| 100.0 * result.error_of(&bench.program, id, g);
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            id.label(),
            e(Granularity::Function),
            e(Granularity::BasicBlock),
            e(Granularity::Instruction)
        );
    }
    println!("\n(error vs the Oracle golden reference; lower is better)");
}
