//! Commit-stage cycle stacks: where do benchmarks of the three classes
//! spend their cycles? (Figure 7 of the paper, for a representative subset.)
//!
//! Run with: `cargo run --release --example cycle_stacks`

use tip_repro::core::{CycleCategory, ProfilerBank, ProfilerId, SamplerConfig};
use tip_repro::ooo::{Core, CoreConfig};
use tip_repro::workloads::{benchmark, SuiteScale};

fn main() {
    let names = [
        "exchange2",
        "namd",
        "imagick",
        "povray",
        "mcf",
        "lbm",
        "cam4",
    ];
    println!("{:<12} {:>6}  cycle stack", "benchmark", "IPC");
    for name in names {
        let bench = benchmark(name, SuiteScale::Small);
        let mut bank = ProfilerBank::new(
            &bench.program,
            SamplerConfig::periodic(149),
            &[ProfilerId::Tip],
        );
        let mut core = Core::new(&bench.program, CoreConfig::default(), 42);
        core.run(&mut bank, 400_000_000);
        let ipc = core.stats().ipc();
        let result = bank.finish();
        let stack = result.oracle.cycle_stack().normalized();

        // Render the stack as a 50-character bar.
        const GLYPHS: [char; 7] = ['#', 'a', 'l', 's', 'f', 'm', 'x'];
        let mut bar = String::new();
        for (i, frac) in stack.iter().enumerate() {
            bar.extend(std::iter::repeat_n(
                GLYPHS[i],
                (frac * 50.0).round() as usize,
            ));
        }
        println!("{name:<12} {ipc:>6.2}  {bar}");
    }
    println!();
    for (glyph, cat) in ['#', 'a', 'l', 's', 'f', 'm', 'x']
        .iter()
        .zip(CycleCategory::ALL)
    {
        println!("  {glyph} = {cat}");
    }
}
