//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand` 0.10 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! methods `random_range` / `random_bool`. The generator is a deterministic
//! xoshiro256++ seeded through SplitMix64 — statistically solid for workload
//! synthesis and sampling, and fully reproducible: the same seed always
//! yields the same stream on every platform.
//!
//! It intentionally does not promise stream compatibility with the real
//! `rand` crate; the workspace only relies on determinism, not on specific
//! values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the subset the workspace needs).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SmallRng {
        /// The generator's internal state, for checkpointing.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state. The
        /// restored generator produces exactly the stream the original
        /// would have produced from that point.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                if self.end <= self.start {
                    // Degenerate range: return the start rather than panic —
                    // callers in this workspace treat it as "no choice".
                    return self.start;
                }
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end <= start {
                    return start;
                }
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (rand 0.10's `Rng`/`RngExt` subset).
pub trait RngExt: RngCore {
    /// A value uniformly distributed in `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.random_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn empty_integer_range_returns_start() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(rng.random_range(9u64..9), 9);
    }
}
