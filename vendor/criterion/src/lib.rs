//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock measurement loop: a short warm-up,
//! then batches timed until the measurement budget is spent, reporting the
//! mean time per iteration (and derived throughput) to stdout. No
//! statistics, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batching policy for [`Bencher::iter_batched`] (ignored: every batch is
/// one iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up time.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the target number of samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line overrides (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benches `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let name = name.into();
        self.benchmark_group(name.clone()).run(&name, None, None, f);
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benches `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let label = format!("{}/{}", self.name, id.into());
        let (throughput, samples) = (self.throughput, self.sample_size);
        self.run(&label, throughput, samples, f);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        samples: Option<usize>,
        mut f: F,
    ) {
        let samples = samples.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: one call, untimed beyond what the bencher records.
        f(&mut b);
        let warmed = b.elapsed >= self.criterion.warm_up;
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let deadline = Instant::now() + self.criterion.measurement;
        let mut rounds = 0usize;
        while rounds < samples && (rounds == 0 || Instant::now() < deadline) {
            f(&mut b);
            rounds += 1;
        }
        let _ = warmed;
        if b.iters == 0 {
            println!("bench {label:<50} no iterations recorded");
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!("bench {label:<50} {:>12.3} ms/iter{rate}", per_iter * 1e3);
    }
}

/// Times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| total += v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(total > 0);
    }
}
