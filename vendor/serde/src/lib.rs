//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (there is no
//! serializer crate in the dependency tree), so marker traits are
//! sufficient: they keep the derive annotations compiling without pulling
//! the real serde stack into an offline build. Swapping the real `serde`
//! back in is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de>: Sized {}
