//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! Emits empty marker-trait impls. Uses only the compiler's built-in
//! `proc_macro` API — no syn/quote — since the build environment cannot
//! reach crates.io. Generic types are rejected with a clear compile error
//! (the workspace has none).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following `struct`/`enum`, rejecting generics.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the offline serde stub cannot derive for generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no struct or enum found in derive input".to_owned())
}

fn impl_for(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template.replace("__NAME__", &name).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for(input, "impl serde::Serialize for __NAME__ {}")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for(input, "impl<'de> serde::Deserialize<'de> for __NAME__ {}")
}
