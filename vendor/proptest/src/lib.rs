//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: range and
//! tuple strategies, `collection::vec`, `bool::ANY`, `sample::select`,
//! `prop_map`, `ProptestConfig`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (derived from the test name and case index),
//! so failures are reproducible; there is no shrinking — the failing inputs
//! are printed instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Number of cases run per property unless overridden.
pub const DEFAULT_CASES: u32 = 64;

/// Per-property configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Shrinking budget — accepted for API compatibility with upstream
    /// proptest; this stub does not shrink, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed or discarded test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
    /// Discarded (assume failed) rather than failed.
    pub rejected: bool,
}

impl TestCaseError {
    /// A failed assertion.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError {
            msg,
            rejected: false,
        }
    }

    /// A discarded case (failed `prop_assume!`).
    #[must_use]
    pub fn reject(msg: String) -> Self {
        TestCaseError {
            msg,
            rejected: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates values of `Self::Value` (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adaptor.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Anything usable as a vector-length specification: a fixed length or
    /// a half-open range of lengths (upstream's `Into<SizeRange>`).
    pub trait IntoSizeRange {
        /// The equivalent half-open range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..self.end().saturating_add(1)
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_size_range(),
        }
    }

    /// The [`vec`] strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                self.len.start + (rng.next_u64() as usize) % (self.len.end - self.len.start)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// A uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// A strategy picking uniformly from `options`.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select { options }
    }

    /// The [`select`] strategy.
    #[derive(Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() as usize) % self.options.len()].clone()
        }
    }
}

/// The glob import every proptest file starts with.
pub mod prelude {
    /// Alias so `prop::sample::select` etc. resolve after a prelude glob.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Defines property tests over generated inputs.
///
/// Supports the standard form, with an optional leading
/// `#![proptest_config(expr)]`:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(0u8..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected = 0u32;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {}
                        Err(e) if e.rejected => rejected += 1,
                        Err(e) => panic!(
                            "proptest case {case} failed: {e}\n  inputs: {}",
                            __inputs
                        ),
                    }
                }
                assert!(
                    rejected < config.cases,
                    "every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}

/// Asserts a condition, failing the current case (not the process) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality, failing the current case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(crate::TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in 3u32..10,
            v in crate::collection::vec(0u8..5, 1..12),
            f in 0.0f64..1.0,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(v.iter().all(|&b| b < 5));
            prop_assert!((0.0..1.0).contains(&f));
            // `bool::ANY` really produces both values over a run; record
            // the one we got in a way clippy can't fold away.
            prop_assert_eq!(u32::from(flag) <= 1, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn config_and_adaptors_work(pair in (0u64..4, 1u64..5).prop_map(|(a, b)| a * 10 + b)) {
            prop_assume!(pair != 1);
            prop_assert!(pair <= 34, "pair {} out of range", pair);
            prop_assert_eq!(pair % 10, pair - 10 * (pair / 10));
        }
    }
}
