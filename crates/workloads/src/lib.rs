//! Synthetic benchmark suite for the TIP reproduction.
//!
//! The paper evaluates on 27 SPEC CPU2017 + PARSEC benchmarks run to
//! completion under FireSim. We cannot run those binaries, so this crate
//! generates seeded synthetic programs with the same *commit-stage
//! behaviour classes* (Figure 7): Compute-intensive, Flush-intensive, and
//! Stall-intensive. The profiler evaluation only depends on those classes —
//! ILP at commit, stall distributions, flush and drain events, and a symbol
//! hierarchy — not on benchmark semantics (see DESIGN.md).
//!
//! The crate also contains the hand-built [`imagick_original`] /
//! [`imagick_optimized`] pair reproducing the paper's Section 6 case study.
//!
//! # Example
//!
//! ```
//! use tip_workloads::{benchmark, SuiteScale};
//!
//! let mcf = benchmark("mcf", SuiteScale::Test);
//! assert_eq!(mcf.class, tip_workloads::WorkloadClass::Stall);
//! assert!(mcf.program.len() > 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod imagick;
mod spec;
mod synth;

pub use imagick::{imagick_optimized, imagick_original, IMAGICK_FUNCTIONS};
pub use spec::{benchmark, suite, Benchmark, SuiteScale, WorkloadClass, BENCHMARK_NAMES};
pub use synth::{generate, InstrMix, SynthParams, DATA_BASE};
