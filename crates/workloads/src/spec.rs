//! The 27-benchmark suite standing in for SPEC CPU2017 + PARSEC.
//!
//! Each benchmark is a seeded synthetic program whose parameters are chosen
//! so its commit-stage cycle stack lands in the class the paper reports in
//! Figure 7: Compute-intensive (>50% of cycles committing), Flush-intensive
//! (>3% of cycles on pipeline flushes), or Stall-intensive (the rest). The
//! names match the paper's; the *behaviour* is synthetic (see DESIGN.md for
//! the substitution rationale).

use crate::imagick;
use crate::synth::{generate, InstrMix, SynthParams};
use serde::{Deserialize, Serialize};
use std::fmt;
use tip_isa::Program;

/// The paper's benchmark classification (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// More than 50% of execution time is spent committing instructions.
    Compute,
    /// More than 3% of execution time is spent on pipeline flushing.
    Flush,
    /// Dominated by processor stalls.
    Stall,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Compute => f.write_str("Compute"),
            WorkloadClass::Flush => f.write_str("Flush"),
            WorkloadClass::Stall => f.write_str("Stall"),
        }
    }
}

/// One benchmark of the suite: a name, its class, and its program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The benchmark's name (matching the paper's figures).
    pub name: &'static str,
    /// The paper's classification.
    pub class: WorkloadClass,
    /// The generated program.
    pub program: Program,
}

// Benchmarks ride inside executor `Job` specs that move to worker threads;
// keep them `Send + Sync` by construction.
const _: () = {
    const fn send<T: Send>() {}
    const fn sync<T: Sync>() {}
    send::<Benchmark>();
    sync::<Benchmark>();
};

/// Scales the dynamic length of the generated suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteScale {
    /// ~60k dynamic instructions per benchmark — for unit/integration tests.
    Test,
    /// ~1.5M dynamic instructions — for quick experiment previews.
    Small,
    /// ~12M dynamic instructions — for the paper-figure harnesses.
    Full,
}

impl SuiteScale {
    /// Target dynamic instruction count for this scale.
    #[must_use]
    pub fn dyn_instrs(self) -> u64 {
        match self {
            SuiteScale::Test => 60_000,
            SuiteScale::Small => 1_500_000,
            SuiteScale::Full => 12_000_000,
        }
    }
}

/// The benchmark names in the order Figure 7 lists them.
pub const BENCHMARK_NAMES: [&str; 27] = [
    // Compute-intensive.
    "exchange2",
    "x264",
    "deepsjeng",
    "namd",
    "leela",
    "swaptions",
    // Flush-intensive.
    "imagick",
    "nab",
    "perlbench",
    "fluidanimate",
    "blackscholes",
    "povray",
    "bodytrack",
    "gcc",
    // Stall-intensive.
    "canneal",
    "lbm",
    "mcf",
    "fotonik3d",
    "bwaves",
    "omnetpp",
    "roms",
    "streamcluster",
    "xalancbmk",
    "wrf",
    "parest",
    "cam4",
    "cactuBSSN",
];

fn params_for(name: &str) -> (WorkloadClass, SynthParams) {
    use WorkloadClass::{Compute, Flush, Stall};
    let base = SynthParams::default();
    // Compute-intensive: high ILP, L1-resident working sets, well-predicted
    // control flow, long basic blocks.
    let compute = SynthParams {
        dep_prob: 0.03,
        mix: InstrMix {
            alu: 0.70,
            mul: 0.04,
            div: 0.002,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.16,
            store: 0.08,
        },
        working_set: 8 * 1024,
        stride_share: 1.0,
        block_len: (12, 20),
        inner_iters: 48,
        ..base.clone()
    };
    let compute_fp = SynthParams {
        mix: InstrMix {
            alu: 0.30,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.28,
            fp_mul: 0.18,
            fp_div: 0.004,
            load: 0.14,
            store: 0.08,
        },
        dep_prob: 0.04,
        ..compute.clone()
    };
    // Flush-intensive: hard-to-predict diamonds over cache-resident data.
    let flush = SynthParams {
        dep_prob: 0.08,
        mix: InstrMix {
            alu: 0.66,
            mul: 0.03,
            div: 0.002,
            fp_alu: 0.04,
            fp_mul: 0.02,
            fp_div: 0.0,
            load: 0.17,
            store: 0.08,
        },
        working_set: 12 * 1024,
        stride_share: 1.0,
        diamond_prob: 0.8,
        bernoulli_prob: 0.4,
        block_len: (4, 8),
        inner_iters: 24,
        ..base.clone()
    };
    // Stall-intensive: working sets spilling past the LLC; moderate ILP so
    // misses partially overlap (the paper's partially-hidden LLC hits).
    let stall = SynthParams {
        dep_prob: 0.06,
        mix: InstrMix {
            alu: 0.58,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.06,
            fp_mul: 0.02,
            fp_div: 0.0,
            load: 0.24,
            store: 0.08,
        },
        working_set: 12 * 1024 * 1024,
        stride_share: 0.8,
        block_len: (8, 14),
        inner_iters: 40,
        ..base.clone()
    };
    // Front-end-heavy stall benchmarks: a large, non-sequential code
    // footprint visited once per call, short inner loops.
    let frontend = SynthParams {
        code_segments: 320,
        inner_iters: 6,
        mix: InstrMix {
            alu: 0.68,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.06,
            fp_mul: 0.02,
            fp_div: 0.0,
            load: 0.14,
            store: 0.08,
        },
        working_set: 256 * 1024,
        stride_share: 0.9,
        dep_prob: 0.05,
        ..stall.clone()
    };

    match name {
        // --- Compute-intensive ------------------------------------------
        "exchange2" => (
            Compute,
            SynthParams {
                dep_prob: 0.02,
                ..compute
            },
        ),
        "x264" => (
            Compute,
            SynthParams {
                working_set: 32 * 1024,
                stride_share: 0.9,
                ..compute.clone()
            },
        ),
        "deepsjeng" => (
            Compute,
            SynthParams {
                diamond_prob: 0.2,
                bernoulli_prob: 0.88,
                ..compute.clone()
            },
        ),
        "namd" => (
            Compute,
            SynthParams {
                dep_prob: 0.08,
                ..compute_fp.clone()
            },
        ),
        "leela" => (
            Compute,
            SynthParams {
                diamond_prob: 0.25,
                bernoulli_prob: 0.85,
                working_set: 24 * 1024,
                stride_share: 0.8,
                ..compute.clone()
            },
        ),
        "swaptions" => (Compute, compute_fp.clone()),
        // --- Flush-intensive ---------------------------------------------
        // imagick is hand-built (see `imagick`); parameters here are only a
        // fallback and unused by `suite`.
        "imagick" => (Flush, flush.clone()),
        "nab" => (
            Flush,
            SynthParams {
                mix: InstrMix {
                    alu: 0.34,
                    mul: 0.02,
                    div: 0.0,
                    fp_alu: 0.24,
                    fp_mul: 0.14,
                    fp_div: 0.0,
                    load: 0.16,
                    store: 0.08,
                },
                diamond_prob: 0.95,
                bernoulli_prob: 0.5,
                block_len: (3, 6),
                ..flush.clone()
            },
        ),
        "perlbench" => (
            Flush,
            SynthParams {
                csr_flush_prob: 0.03,
                bernoulli_prob: 0.45,
                working_set: 64 * 1024,
                stride_share: 0.8,
                ..flush.clone()
            },
        ),
        "fluidanimate" => (
            Flush,
            SynthParams {
                mix: InstrMix {
                    alu: 0.34,
                    mul: 0.02,
                    div: 0.0,
                    fp_alu: 0.22,
                    fp_mul: 0.12,
                    fp_div: 0.0,
                    load: 0.20,
                    store: 0.10,
                },
                working_set: 192 * 1024,
                stride_share: 0.9,
                bernoulli_prob: 0.5,
                ..flush.clone()
            },
        ),
        "blackscholes" => (
            Flush,
            SynthParams {
                mix: InstrMix {
                    alu: 0.32,
                    mul: 0.02,
                    div: 0.0,
                    fp_alu: 0.26,
                    fp_mul: 0.14,
                    fp_div: 0.004,
                    load: 0.16,
                    store: 0.10,
                },
                bernoulli_prob: 0.45,
                diamond_prob: 0.55,
                ..flush.clone()
            },
        ),
        "povray" => (
            Flush,
            SynthParams {
                mix: InstrMix {
                    alu: 0.36,
                    mul: 0.02,
                    div: 0.0,
                    fp_alu: 0.22,
                    fp_mul: 0.12,
                    fp_div: 0.002,
                    load: 0.18,
                    store: 0.08,
                },
                diamond_prob: 0.9,
                bernoulli_prob: 0.35,
                ..flush.clone()
            },
        ),
        "bodytrack" => (
            Flush,
            SynthParams {
                working_set: 256 * 1024,
                stride_share: 0.9,
                diamond_prob: 0.95,
                bernoulli_prob: 0.5,
                block_len: (3, 6),
                ..flush.clone()
            },
        ),
        "gcc" => (
            Flush,
            SynthParams {
                code_segments: 120,
                working_set: 48 * 1024,
                stride_share: 0.9,
                bernoulli_prob: 0.5,
                fault_every: Some(300_000),
                ..flush.clone()
            },
        ),
        // --- Stall-intensive ---------------------------------------------
        "canneal" => (
            Stall,
            SynthParams {
                pointer_chase: 0.025,
                working_set: 8 * 1024 * 1024,
                stride_share: 0.4,
                ..stall.clone()
            },
        ),
        "lbm" => (
            Stall,
            SynthParams {
                stride_share: 0.97,
                working_set: 32 * 1024 * 1024,
                mix: InstrMix {
                    alu: 0.30,
                    mul: 0.0,
                    div: 0.0,
                    fp_alu: 0.20,
                    fp_mul: 0.10,
                    fp_div: 0.0,
                    load: 0.26,
                    store: 0.14,
                },
                diamond_prob: 0.35,
                bernoulli_prob: 0.75,
                dep_prob: 0.25,
                ..stall.clone()
            },
        ),
        "mcf" => (
            Stall,
            SynthParams {
                pointer_chase: 0.03,
                working_set: 6 * 1024 * 1024,
                stride_share: 0.45,
                diamond_prob: 0.4,
                bernoulli_prob: 0.7,
                ..stall.clone()
            },
        ),
        "fotonik3d" => (
            Stall,
            SynthParams {
                mix: InstrMix {
                    alu: 0.36,
                    mul: 0.0,
                    div: 0.0,
                    fp_alu: 0.22,
                    fp_mul: 0.08,
                    fp_div: 0.0,
                    load: 0.26,
                    store: 0.08,
                },
                stride_share: 0.9,
                working_set: 24 * 1024 * 1024,
                ..stall.clone()
            },
        ),
        "bwaves" => (
            Stall,
            SynthParams {
                mix: InstrMix {
                    alu: 0.30,
                    mul: 0.0,
                    div: 0.0,
                    fp_alu: 0.26,
                    fp_mul: 0.10,
                    fp_div: 0.0,
                    load: 0.26,
                    store: 0.08,
                },
                stride_share: 0.85,
                working_set: 32 * 1024 * 1024,
                dep_prob: 0.2,
                ..stall.clone()
            },
        ),
        "omnetpp" => (
            Stall,
            SynthParams {
                pointer_chase: 0.02,
                working_set: 6 * 1024 * 1024,
                stride_share: 0.5,
                diamond_prob: 0.35,
                bernoulli_prob: 0.6,
                ..stall.clone()
            },
        ),
        "roms" => (
            Stall,
            SynthParams {
                stride_share: 0.92,
                working_set: 24 * 1024 * 1024,
                mix: InstrMix {
                    alu: 0.56,
                    mul: 0.02,
                    div: 0.0,
                    fp_alu: 0.10,
                    fp_mul: 0.04,
                    fp_div: 0.0,
                    load: 0.22,
                    store: 0.06,
                },
                ..stall.clone()
            },
        ),
        "streamcluster" => (
            Stall,
            SynthParams {
                stride_share: 1.0,
                block_len: (5, 7),
                inner_iters: 64,
                working_set: 16 * 1024 * 1024,
                dep_prob: 0.3,
                ..stall.clone()
            },
        ),
        "xalancbmk" => (
            Stall,
            SynthParams {
                code_segments: 300,
                working_set: 2 * 1024 * 1024,
                ..frontend.clone()
            },
        ),
        "wrf" => (
            Stall,
            SynthParams {
                code_segments: 360,
                mix: InstrMix {
                    alu: 0.44,
                    mul: 0.0,
                    div: 0.0,
                    fp_alu: 0.18,
                    fp_mul: 0.06,
                    fp_div: 0.0,
                    load: 0.22,
                    store: 0.08,
                },
                working_set: 4 * 1024 * 1024,
                ..frontend.clone()
            },
        ),
        "parest" => (
            Stall,
            SynthParams {
                code_segments: 280,
                working_set: 3 * 1024 * 1024,
                ..frontend.clone()
            },
        ),
        "cam4" => (
            Stall,
            SynthParams {
                code_segments: 400,
                fault_every: Some(400_000),
                ..frontend.clone()
            },
        ),
        "cactuBSSN" => (
            Stall,
            SynthParams {
                code_segments: 440,
                mix: InstrMix {
                    alu: 0.42,
                    mul: 0.0,
                    div: 0.0,
                    fp_alu: 0.20,
                    fp_mul: 0.08,
                    fp_div: 0.0,
                    load: 0.22,
                    store: 0.08,
                },
                working_set: 4 * 1024 * 1024,
                ..frontend.clone()
            },
        ),
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// Deterministic per-benchmark seed.
fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Builds one benchmark at the given scale.
///
/// # Panics
///
/// Panics if `name` is not one of [`BENCHMARK_NAMES`].
#[must_use]
pub fn benchmark(name: &'static str, scale: SuiteScale) -> Benchmark {
    if name == "imagick" {
        return Benchmark {
            name,
            class: WorkloadClass::Flush,
            program: imagick::imagick_original(scale.dyn_instrs()),
        };
    }
    let (class, mut params) = params_for(name);
    params.dyn_instrs = scale.dyn_instrs();
    Benchmark {
        name,
        class,
        program: generate(name, &params, seed_for(name)),
    }
}

/// Builds the full 27-benchmark suite at the given scale.
#[must_use]
pub fn suite(scale: SuiteScale) -> Vec<Benchmark> {
    BENCHMARK_NAMES
        .iter()
        .map(|&n| benchmark(n, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_27_benchmarks_build() {
        let s = suite(SuiteScale::Test);
        assert_eq!(s.len(), 27);
        for b in &s {
            assert!(!b.program.is_empty(), "{} is empty", b.name);
        }
    }

    #[test]
    fn class_counts_match_paper() {
        let s = suite(SuiteScale::Test);
        let count = |c| s.iter().filter(|b| b.class == c).count();
        assert_eq!(count(WorkloadClass::Compute), 6);
        assert_eq!(count(WorkloadClass::Flush), 8);
        assert_eq!(count(WorkloadClass::Stall), 13);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            BENCHMARK_NAMES.iter().map(|n| seed_for(n)).collect();
        assert_eq!(seeds.len(), 27);
    }

    #[test]
    fn benchmarks_are_reproducible() {
        let a = benchmark("mcf", SuiteScale::Test);
        let b = benchmark("mcf", SuiteScale::Test);
        assert_eq!(a.program, b.program);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = params_for("notabench");
    }
}
