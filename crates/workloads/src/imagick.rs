//! The Imagick case study (Section 6 of the paper).
//!
//! SPEC CPU2017's Imagick spends much of its time in the math-library
//! `ceil` and `floor` functions, which bracket their floating-point work
//! with `frflags`/`fsflags` status-register accesses. On a core that does
//! not rename FP status registers (like BOOM), each of those CSR accesses
//! flushes the pipeline at commit. The paper's optimized version replaces
//! them with `nop`s, yielding a 1.93x speed-up — mostly through the
//! second-order effect that removing the flushes restores the core's
//! ability to hide latencies.
//!
//! This module builds both versions with the same call structure the paper
//! reports: `MeanShiftImage` (the hot loop, calling `floor` and `ceil` per
//! pixel) and `MorphologyApply` (a second, memory-heavier kernel).

use tip_isa::{BranchBehavior, Instr, InstrKind, MemBehavior, Program, ProgramBuilder, Reg};

/// Pixels processed per `MeanShiftImage` call.
const PIXELS_PER_CALL: u32 = 24;

/// Iterations per `MorphologyApply` call.
const MORPH_ITERS: u32 = 30;

/// Builds the original Imagick stand-in (with CSR flushes in `floor` and
/// `ceil`); `dyn_instrs` controls the dynamic length.
#[must_use]
pub fn imagick_original(dyn_instrs: u64) -> Program {
    build(false, dyn_instrs)
}

/// Builds the optimized version: `frflags`/`fsflags` replaced by `nop`s, as
/// in the paper's source-level fix.
#[must_use]
pub fn imagick_optimized(dyn_instrs: u64) -> Program {
    build(true, dyn_instrs)
}

/// The function names of the Imagick stand-in, hottest-first as in
/// Figure 13.
pub const IMAGICK_FUNCTIONS: [&str; 5] =
    ["main", "MeanShiftImage", "floor", "ceil", "MorphologyApply"];

/// Emits `n` generic, mostly independent pixel-arithmetic instructions.
fn emit_pixel_work(b: &mut ProgramBuilder, blk: tip_isa::BlockId, n: u32) {
    for i in 0..n {
        let instr = match i % 5 {
            0 => Instr::fp(
                InstrKind::FpMul,
                Some(Reg::fp(18 + (i % 4) as u8)),
                [None, None],
            ),
            1 => Instr::int_alu(Some(Reg::int(18 + (i % 4) as u8)), [None, None]),
            2 => Instr::fp(
                InstrKind::FpAlu,
                Some(Reg::fp(22 + (i % 4) as u8)),
                [None, None],
            ),
            3 => Instr::int_alu(
                Some(Reg::int(22 + (i % 4) as u8)),
                [Some(Reg::int(18 + (i % 4) as u8)), None],
            ),
            _ => Instr::fp(
                InstrKind::FpAlu,
                Some(Reg::fp(26 + (i % 3) as u8)),
                [Some(Reg::fp(18 + (i % 4) as u8)), None],
            ),
        };
        b.push(blk, instr);
    }
}

fn csr_or_nop(optimized: bool) -> Instr {
    if optimized {
        Instr::nop()
    } else {
        Instr::csr_flush()
    }
}

/// Emits a `floor`/`ceil`-style math-library function: status-register save,
/// dependent FP arithmetic, status-register restore, return.
fn math_function(b: &mut ProgramBuilder, f: tip_isa::FunctionId, optimized: bool) -> u64 {
    let body = b.block(f);
    // frflags: read (and implicitly serialize on) the FP status register.
    b.push(body, csr_or_nop(optimized));
    // The actual rounding work: mostly independent FP/int operations.
    b.push(
        body,
        Instr::fp(
            InstrKind::FpAlu,
            Some(Reg::fp(10)),
            [Some(Reg::fp(1)), None],
        ),
    );
    b.push(body, Instr::int_alu(Some(Reg::int(10)), [None, None]));
    b.push(
        body,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(11)), [None, None]),
    );
    b.push(body, Instr::int_alu(Some(Reg::int(11)), [None, None]));
    b.push(
        body,
        Instr::fp(
            InstrKind::FpAlu,
            Some(Reg::fp(12)),
            [Some(Reg::fp(10)), None],
        ),
    );
    b.push(
        body,
        Instr::int_alu(Some(Reg::int(12)), [Some(Reg::int(10)), None]),
    );
    b.push(
        body,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(13)), [None, None]),
    );
    b.push(body, Instr::int_alu(Some(Reg::int(13)), [None, None]));
    // fsflags: restore the FP status register (masks any side effects).
    b.push(body, csr_or_nop(optimized));
    let ret = b.block(f);
    b.push(ret, Instr::ret());
    12 // dynamic instructions per call (10 body + ret + the call itself)
}

fn build(optimized: bool, dyn_instrs: u64) -> Program {
    let name = if optimized { "imagick-opt" } else { "imagick" };
    let mut b = ProgramBuilder::named(name);
    let main = b.function("main");
    let mean_shift = b.function("MeanShiftImage");
    let floor = b.function("floor");
    let ceil = b.function("ceil");
    let morphology = b.function("MorphologyApply");

    // --- MeanShiftImage: the hot per-pixel loop ---------------------------
    let ms_entry = b.block(mean_shift);
    b.push(ms_entry, Instr::int_alu(Some(Reg::int(1)), [None, None]));
    b.push(
        ms_entry,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(1)), [None, None]),
    );

    // Per-pixel: gather, window arithmetic, floor(), ceil(), accumulate.
    let ms_a = b.block(mean_shift);
    b.push(
        ms_a,
        Instr::load(
            Some(Reg::int(2)),
            None,
            MemBehavior::Stride {
                base: 0x2000_0000,
                stride: 8,
                footprint: 16 * 1024,
            },
        ),
    );
    b.push(
        ms_a,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(2)), [Some(Reg::fp(1)), None]),
    );
    b.push(
        ms_a,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(3)), [Some(Reg::fp(2)), None]),
    );
    b.push(
        ms_a,
        Instr::int_alu(Some(Reg::int(3)), [Some(Reg::int(2)), None]),
    );
    b.push(
        ms_a,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(14)), [None, None]),
    );
    b.push(ms_a, Instr::int_alu(Some(Reg::int(14)), [None, None]));
    b.push(
        ms_a,
        Instr::load(
            Some(Reg::int(15)),
            None,
            MemBehavior::Stride {
                base: 0x2100_0000,
                stride: 8,
                footprint: 16 * 1024,
            },
        ),
    );
    b.push(
        ms_a,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(15)), [None, None]),
    );
    b.push(ms_a, Instr::int_alu(Some(Reg::int(16)), [None, None]));
    emit_pixel_work(&mut b, ms_a, 38);
    b.push(ms_a, Instr::call(floor));

    let ms_b = b.block(mean_shift);
    b.push(
        ms_b,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(4)), [Some(Reg::fp(3)), None]),
    );
    b.push(ms_b, Instr::int_alu(Some(Reg::int(4)), [None, None]));
    b.push(
        ms_b,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(16)), [None, None]),
    );
    b.push(ms_b, Instr::int_alu(Some(Reg::int(17)), [None, None]));
    b.push(
        ms_b,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(17)), [None, None]),
    );
    emit_pixel_work(&mut b, ms_b, 32);
    b.push(ms_b, Instr::call(ceil));

    let ms_c = b.block(mean_shift);
    b.push(
        ms_c,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(5)), [Some(Reg::fp(4)), None]),
    );
    b.push(
        ms_c,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(6)), [Some(Reg::fp(5)), None]),
    );
    b.push(
        ms_c,
        Instr::store(
            Some(Reg::int(4)),
            None,
            MemBehavior::Stride {
                base: 0x2800_0000,
                stride: 8,
                footprint: 16 * 1024,
            },
        ),
    );
    b.push(
        ms_c,
        Instr::int_alu(Some(Reg::int(5)), [Some(Reg::int(4)), None]),
    );
    emit_pixel_work(&mut b, ms_c, 26);
    b.push(
        ms_c,
        Instr::branch(
            ms_a,
            BranchBehavior::Loop {
                taken_iters: PIXELS_PER_CALL,
            },
        ),
    );
    let ms_ret = b.block(mean_shift);
    b.push(ms_ret, Instr::ret());

    // --- floor / ceil ------------------------------------------------------
    let floor_dyn = math_function(&mut b, floor, optimized);
    let ceil_dyn = math_function(&mut b, ceil, optimized);

    // --- MorphologyApply: memory-heavier convolution-style kernel ----------
    let ma_entry = b.block(morphology);
    b.push(ma_entry, Instr::int_alu(Some(Reg::int(6)), [None, None]));
    let ma_loop = b.block(morphology);
    b.push(
        ma_loop,
        Instr::load(
            Some(Reg::int(7)),
            None,
            MemBehavior::Stride {
                base: 0x3000_0000,
                stride: 64,
                footprint: 256 * 1024,
            },
        ),
    );
    b.push(
        ma_loop,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(7)), [Some(Reg::fp(6)), None]),
    );
    b.push(
        ma_loop,
        Instr::fp(InstrKind::FpAlu, Some(Reg::fp(8)), [Some(Reg::fp(7)), None]),
    );
    b.push(
        ma_loop,
        Instr::load(
            Some(Reg::int(8)),
            None,
            MemBehavior::Stride {
                base: 0x3400_0000,
                stride: 64,
                footprint: 256 * 1024,
            },
        ),
    );
    b.push(
        ma_loop,
        Instr::int_alu(Some(Reg::int(9)), [Some(Reg::int(8)), None]),
    );
    b.push(
        ma_loop,
        Instr::store(
            Some(Reg::int(9)),
            None,
            MemBehavior::Stride {
                base: 0x3800_0000,
                stride: 64,
                footprint: 256 * 1024,
            },
        ),
    );
    b.push(
        ma_loop,
        Instr::branch(
            ma_loop,
            BranchBehavior::Loop {
                taken_iters: MORPH_ITERS,
            },
        ),
    );
    let ma_ret = b.block(morphology);
    b.push(ma_ret, Instr::ret());

    // --- main driver --------------------------------------------------------
    // Dynamic instructions per outer iteration.
    let ms_per_pixel = 48 + floor_dyn + 38 + ceil_dyn + 31; // ms_a + floor + ms_b + ceil + ms_c
    let ms_dyn = 2 + u64::from(PIXELS_PER_CALL + 1) * ms_per_pixel + 1;
    let ma_dyn = 1 + u64::from(MORPH_ITERS + 1) * 7 + 1;
    let per_outer = ms_dyn + ma_dyn + 3;
    let outer_iters = (dyn_instrs / per_outer).max(1) as u32;

    let m0 = b.block(main);
    b.push(m0, Instr::call(mean_shift));
    let m1 = b.block(main);
    b.push(m1, Instr::call(morphology));
    let m2 = b.block(main);
    b.push(m2, Instr::int_alu(Some(Reg::int(20)), [None, None]));
    b.push(
        m2,
        Instr::branch(
            m0,
            BranchBehavior::Loop {
                taken_iters: outer_iters,
            },
        ),
    );
    let m3 = b.block(main);
    b.push(m3, Instr::halt());

    b.build()
        .unwrap_or_else(|e| panic!("imagick program invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::Executor;

    #[test]
    fn both_versions_build_and_differ_only_in_csrs() {
        let orig = imagick_original(100_000);
        let opt = imagick_optimized(100_000);
        assert_eq!(orig.len(), opt.len(), "same instruction count");
        let mut diffs = 0;
        for (a, b) in orig.instrs().iter().zip(opt.instrs()) {
            if a != b {
                assert_eq!(a.kind(), InstrKind::CsrFlush);
                assert_eq!(b.kind(), InstrKind::Nop);
                diffs += 1;
            }
        }
        assert_eq!(diffs, 4, "frflags+fsflags in both floor and ceil");
    }

    #[test]
    fn function_names_match_case_study() {
        let p = imagick_original(10_000);
        let names: Vec<&str> = p.functions().iter().map(|f| f.name()).collect();
        assert_eq!(names, IMAGICK_FUNCTIONS.to_vec());
    }

    #[test]
    fn dynamic_length_tracks_target() {
        let p = imagick_original(200_000);
        let n = Executor::new(&p, 0).count() as f64;
        assert!((0.5..2.0).contains(&(n / 200_000.0)), "got {n}");
    }

    #[test]
    fn csr_count_scales_with_pixels() {
        let p = imagick_original(50_000);
        let mut exec_csrs = 0u64;
        for d in Executor::new(&p, 0) {
            if d.kind == InstrKind::CsrFlush {
                exec_csrs += 1;
            }
        }
        // 4 CSR executions per pixel (2 in floor + 2 in ceil).
        assert!(
            exec_csrs > 1_000,
            "CSR flushes should be frequent, got {exec_csrs}"
        );
    }
}
