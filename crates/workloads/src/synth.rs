//! Parameterized synthetic program generation.
//!
//! Each benchmark of the suite is produced by [`generate`] from a
//! [`SynthParams`] knob set and a seed. Programs have the shape of real
//! hot loops: an outer driver loop in `main` calling a handful of leaf
//! functions, each containing (optionally bloated) straight-line segments
//! and an inner loop with optional hard-to-predict diamonds, a tunable
//! instruction mix, dependency density (ILP), and memory behaviours over a
//! configurable working set.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tip_isa::{
    BranchBehavior, FaultSpec, Instr, InstrKind, MemBehavior, Program, ProgramBuilder, Reg,
};

/// Base address of the shared data region synthetic loads/stores access.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Relative weights of non-control instruction kinds in generated blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Single-cycle integer ALU.
    pub alu: f64,
    /// Integer multiply.
    pub mul: f64,
    /// Integer divide (unpipelined).
    pub div: f64,
    /// FP add/compare.
    pub fp_alu: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide (unpipelined).
    pub fp_div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
}

impl InstrMix {
    /// An integer-dominated mix.
    #[must_use]
    pub fn int_heavy() -> Self {
        InstrMix {
            alu: 0.62,
            mul: 0.05,
            div: 0.01,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.22,
            store: 0.10,
        }
    }

    /// A floating-point-dominated mix.
    #[must_use]
    pub fn fp_heavy() -> Self {
        InstrMix {
            alu: 0.25,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.25,
            fp_mul: 0.18,
            fp_div: 0.02,
            load: 0.18,
            store: 0.10,
        }
    }

    /// A memory-dominated mix.
    #[must_use]
    pub fn mem_heavy() -> Self {
        InstrMix {
            alu: 0.40,
            mul: 0.02,
            div: 0.0,
            fp_alu: 0.05,
            fp_mul: 0.03,
            fp_div: 0.0,
            load: 0.35,
            store: 0.15,
        }
    }

    fn pick(&self, rng: &mut SmallRng) -> InstrKind {
        let total = self.alu
            + self.mul
            + self.div
            + self.fp_alu
            + self.fp_mul
            + self.fp_div
            + self.load
            + self.store;
        let mut x = rng.random_range(0.0..total.max(1e-9));
        for (w, k) in [
            (self.alu, InstrKind::IntAlu),
            (self.mul, InstrKind::IntMul),
            (self.div, InstrKind::IntDiv),
            (self.fp_alu, InstrKind::FpAlu),
            (self.fp_mul, InstrKind::FpMul),
            (self.fp_div, InstrKind::FpDiv),
            (self.load, InstrKind::Load),
            (self.store, InstrKind::Store),
        ] {
            if x < w {
                return k;
            }
            x -= w;
        }
        InstrKind::IntAlu
    }
}

/// All knobs of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthParams {
    /// Number of leaf functions called from the driver loop.
    pub n_funcs: u32,
    /// Instructions per generated block (min, max).
    pub block_len: (u32, u32),
    /// Straight-line segment blocks per function, executed once per call
    /// (inflates the instruction footprint for front-end pressure).
    pub code_segments: u32,
    /// Inner-loop iterations per function call.
    pub inner_iters: u32,
    /// Instruction-kind mix.
    pub mix: InstrMix,
    /// Probability an operand depends on the most recent producer (1.0 =
    /// serial chain, 0.0 = maximal ILP).
    pub dep_prob: f64,
    /// Probability a block ends in a hard-to-predict diamond branch.
    pub diamond_prob: f64,
    /// Probability the inner loop contains a *predictable* pattern diamond:
    /// a short cyclic direction pattern over an odd-length skip block. Real
    /// code's data-dependent-but-regular control flow; it varies the dynamic
    /// path length so commit-group alignment rotates (without it, synthetic
    /// loops are unrealistically periodic and NCI-style leaders never
    /// rotate).
    pub pattern_diamond_prob: f64,
    /// Taken probability of diamond branches (0.5 = maximally flushy).
    pub bernoulli_prob: f64,
    /// Bytes of data the loads/stores touch.
    pub working_set: u64,
    /// Fraction of memory instructions that stream (stride 64) rather than
    /// access randomly within the working set.
    pub stride_share: f64,
    /// Fraction of loads that pointer-chase through a loop-carried register,
    /// serializing their misses (mcf/canneal-like). 0.0 disables chasing.
    pub pointer_chase: f64,
    /// Insert a CSR flush instruction in blocks with this probability
    /// (Imagick-like status-register flushes).
    pub csr_flush_prob: f64,
    /// If set, one load page-faults every N executions (exercises the
    /// exception path; needs the generated fault handler).
    pub fault_every: Option<u64>,
    /// Approximate dynamic instructions the program should execute.
    pub dyn_instrs: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            n_funcs: 4,
            block_len: (6, 14),
            code_segments: 0,
            inner_iters: 32,
            mix: InstrMix::int_heavy(),
            dep_prob: 0.25,
            diamond_prob: 0.0,
            pattern_diamond_prob: 0.8,
            bernoulli_prob: 0.5,
            working_set: 16 * 1024,
            stride_share: 0.7,
            pointer_chase: 0.0,
            csr_flush_prob: 0.0,
            fault_every: None,
            dyn_instrs: 1_000_000,
        }
    }
}

/// Tracks recently-written registers so operand selection can dial the
/// dependency density.
struct RegAlloc {
    rng_state: u8,
    fp_state: u8,
}

impl RegAlloc {
    fn new() -> Self {
        RegAlloc {
            rng_state: 0,
            fp_state: 0,
        }
    }

    fn next_int(&mut self) -> Reg {
        self.rng_state = (self.rng_state + 1) % 20;
        Reg::int(1 + self.rng_state)
    }

    fn next_fp(&mut self) -> Reg {
        self.fp_state = (self.fp_state + 1) % 20;
        Reg::fp(1 + self.fp_state)
    }
}

/// Generates a program from `params`, deterministically per seed.
///
/// The resulting program always terminates via `halt`, after an outer trip
/// count chosen so the dynamic length approximates `params.dyn_instrs`.
#[must_use]
pub fn generate(name: &str, params: &SynthParams, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::named(name);
    let main = b.function("main");
    let funcs: Vec<_> = (0..params.n_funcs)
        .map(|i| b.function(format!("func_{i}")))
        .collect();
    let handler = params
        .fault_every
        .map(|_| b.function("kernel_page_fault_handler"));

    let mut regs = RegAlloc::new();
    let mut last_int: Option<Reg> = None;
    let mut last_fp: Option<Reg> = None;
    let mut instrs_per_call_total = 0u64;
    // The pointer-chase register carries the serial dependency.
    let chase_reg = Reg::int(25);

    // Generate each leaf function body.
    let mut fault_assigned = false;
    for &f in &funcs {
        let mut per_call = 0u64;

        let gen_body = |b: &mut ProgramBuilder,
                        blk,
                        rng: &mut SmallRng,
                        regs: &mut RegAlloc,
                        last_int: &mut Option<Reg>,
                        last_fp: &mut Option<Reg>,
                        fault_assigned: &mut bool|
         -> u64 {
            let n = rng.random_range(params.block_len.0..=params.block_len.1);
            for _ in 0..n {
                let kind = params.mix.pick(rng);
                let pick_src = |rng: &mut SmallRng, last: Option<Reg>, fresh: Reg| {
                    if last.is_some() && rng.random_bool(params.dep_prob) {
                        last
                    } else {
                        Some(fresh)
                    }
                };
                let instr = match kind {
                    InstrKind::Load => {
                        let chase = params.pointer_chase > 0.0
                            && rng.random_bool(params.pointer_chase.clamp(0.0, 1.0));
                        let behavior = if chase {
                            MemBehavior::RandomIn {
                                base: DATA_BASE,
                                footprint: params.working_set,
                            }
                        } else if rng.random_bool(params.stride_share) {
                            MemBehavior::Stride {
                                base: DATA_BASE,
                                stride: 64,
                                footprint: params.working_set,
                            }
                        } else {
                            MemBehavior::RandomIn {
                                base: DATA_BASE,
                                footprint: params.working_set,
                            }
                        };
                        let (dst, addr_src) = if chase {
                            (chase_reg, Some(chase_reg))
                        } else {
                            let d = regs.next_int();
                            *last_int = Some(d);
                            (d, None)
                        };
                        let mut load = Instr::load(Some(dst), addr_src, behavior);
                        if let (Some(every), false) = (params.fault_every, *fault_assigned) {
                            load = load.with_fault(FaultSpec { every });
                            *fault_assigned = true;
                        }
                        load
                    }
                    InstrKind::Store => {
                        let behavior = if rng.random_bool(params.stride_share) {
                            MemBehavior::Stride {
                                base: DATA_BASE + params.working_set / 2,
                                stride: 64,
                                footprint: params.working_set,
                            }
                        } else {
                            MemBehavior::RandomIn {
                                base: DATA_BASE + params.working_set / 2,
                                footprint: params.working_set,
                            }
                        };
                        Instr::store(pick_src(rng, *last_int, Reg::int(26)), None, behavior)
                    }
                    InstrKind::FpAlu | InstrKind::FpMul | InstrKind::FpDiv => {
                        let dst = regs.next_fp();
                        let src = pick_src(rng, *last_fp, Reg::fp(26));
                        *last_fp = Some(dst);
                        Instr::fp(kind, Some(dst), [src, None])
                    }
                    k => {
                        let dst = regs.next_int();
                        let src = pick_src(rng, *last_int, Reg::int(26));
                        *last_int = Some(dst);
                        Instr::op(k, Some(dst), [src, None])
                    }
                };
                b.push(blk, instr);
            }
            if params.csr_flush_prob > 0.0 && rng.random_bool(params.csr_flush_prob) {
                b.push(blk, Instr::csr_flush());
                return u64::from(n) + 1;
            }
            u64::from(n)
        };

        // Entry block.
        let entry = b.block(f);
        per_call += gen_body(
            &mut b,
            entry,
            &mut rng,
            &mut regs,
            &mut last_int,
            &mut last_fp,
            &mut fault_assigned,
        );

        // Code segments executed once per call, visited in a shuffled order
        // via jumps so the instruction stream is non-sequential — this is
        // what actually pressures the I-cache (sequential code is absorbed
        // by the next-line prefetcher). The entry jumps to the first
        // shuffled segment; the last one jumps to the loop head.
        let segments: Vec<_> = (0..params.code_segments).map(|_| b.block(f)).collect();
        let mut order: Vec<usize> = (0..segments.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        if let Some(&first) = order.first() {
            b.push(entry, Instr::jump(segments[first]));
            per_call += 1;
        }
        for w in order.windows(2) {
            per_call += gen_body(
                &mut b,
                segments[w[0]],
                &mut rng,
                &mut regs,
                &mut last_int,
                &mut last_fp,
                &mut fault_assigned,
            );
            b.push(segments[w[0]], Instr::jump(segments[w[1]]));
            per_call += 1;
        }

        // Inner loop: head [, Bernoulli diamond] [, pattern diamond] with a
        // back edge.
        let loop_head = b.block(f);
        if let Some(&last) = order.last() {
            per_call += gen_body(
                &mut b,
                segments[last],
                &mut rng,
                &mut regs,
                &mut last_int,
                &mut last_fp,
                &mut fault_assigned,
            );
            b.push(segments[last], Instr::jump(loop_head));
            per_call += 1;
        }
        let mut body = gen_body(
            &mut b,
            loop_head,
            &mut rng,
            &mut regs,
            &mut last_int,
            &mut last_fp,
            &mut fault_assigned,
        );
        let mut back_block = if rng.random_bool(params.diamond_prob) {
            let skip = b.block(f);
            let join = b.block(f);
            b.push(
                loop_head,
                Instr::branch(
                    join,
                    BranchBehavior::Bernoulli {
                        taken_prob: params.bernoulli_prob,
                    },
                ),
            );
            body += 1;
            body += gen_body(
                &mut b,
                skip,
                &mut rng,
                &mut regs,
                &mut last_int,
                &mut last_fp,
                &mut fault_assigned,
            ) / 2;
            body += gen_body(
                &mut b,
                join,
                &mut rng,
                &mut regs,
                &mut last_int,
                &mut last_fp,
                &mut fault_assigned,
            );
            join
        } else {
            loop_head
        };
        if rng.random_bool(params.pattern_diamond_prob) {
            // A regular, learnable direction pattern over an odd-length skip
            // block: shifts the dynamic instruction count per iteration.
            let period = rng.random_range(3..=7u32);
            let skip_at = rng.random_range(0..period);
            let pattern: Vec<bool> = (0..period).map(|i| i != skip_at).collect();
            let skip = b.block(f);
            let join = b.block(f);
            b.push(
                back_block,
                Instr::branch(join, BranchBehavior::Pattern { pattern }),
            );
            body += 1;
            let skip_len = 2 * rng.random_range(0..=2u32) + 1; // 1, 3, or 5
            for j in 0..skip_len {
                b.push(
                    skip,
                    Instr::int_alu(Some(Reg::int(21 + (j % 3) as u8)), [None, None]),
                );
            }
            body += u64::from(skip_len) / u64::from(period).max(1);
            body += gen_body(
                &mut b,
                join,
                &mut rng,
                &mut regs,
                &mut last_int,
                &mut last_fp,
                &mut fault_assigned,
            );
            back_block = join;
        }
        b.push(
            back_block,
            Instr::branch(
                loop_head,
                BranchBehavior::Loop {
                    taken_iters: params.inner_iters,
                },
            ),
        );
        body += 1;

        let ret_block = b.block(f);
        b.push(ret_block, Instr::ret());
        per_call += u64::from(params.inner_iters + 1) * body + 1;
        instrs_per_call_total += per_call;
    }

    // The driver loop in main: call each function, repeat.
    let per_outer = instrs_per_call_total + u64::from(params.n_funcs) + 1;
    let outer_iters = (params.dyn_instrs / per_outer.max(1)).max(1) as u32;
    let call_blocks: Vec<_> = (0..params.n_funcs).map(|_| b.block(main)).collect();
    for (i, &blk) in call_blocks.iter().enumerate() {
        b.push(blk, Instr::call(funcs[i]));
    }
    let loop_block = b.block(main);
    b.push(loop_block, Instr::nop());
    b.push(
        loop_block,
        Instr::branch(
            call_blocks[0],
            BranchBehavior::Loop {
                taken_iters: outer_iters,
            },
        ),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());

    // Fault handler (OS page-fault service routine).
    if let Some(h) = handler {
        let hb = b.block(h);
        for _ in 0..24 {
            b.push(
                hb,
                Instr::int_alu(Some(Reg::int(27)), [Some(Reg::int(27)), None]),
            );
        }
        b.push(
            hb,
            Instr::load(
                Some(Reg::int(28)),
                None,
                MemBehavior::Stride {
                    base: 0x6000_0000,
                    stride: 64,
                    footprint: 1 << 16,
                },
            ),
        );
        let hr = b.block(h);
        b.push(hr, Instr::ret());
        b.set_fault_handler(h);
    }

    b.build()
        .unwrap_or_else(|e| panic!("synthetic program `{name}` invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::Executor;

    #[test]
    fn generated_programs_are_valid_and_deterministic() {
        let params = SynthParams::default();
        let a = generate("t", &params, 1);
        let b = generate("t", &params, 1);
        assert_eq!(a, b);
        let c = generate("t", &params, 2);
        assert_ne!(a, c, "different seeds give different programs");
    }

    #[test]
    fn dynamic_length_is_near_target() {
        let params = SynthParams {
            dyn_instrs: 200_000,
            ..SynthParams::default()
        };
        let p = generate("t", &params, 3);
        let n = Executor::new(&p, 3).count() as f64;
        let target = params.dyn_instrs as f64;
        assert!(
            (0.5..2.0).contains(&(n / target)),
            "dynamic length {n} should approximate target {target}"
        );
    }

    #[test]
    fn diamonds_generate_bernoulli_branches() {
        let params = SynthParams {
            diamond_prob: 1.0,
            ..SynthParams::default()
        };
        let p = generate("t", &params, 4);
        let bernoulli = p
            .instrs()
            .iter()
            .filter(|i| matches!(i.branch_behavior(), Some(BranchBehavior::Bernoulli { .. })))
            .count();
        assert!(bernoulli >= params.n_funcs as usize);
    }

    #[test]
    fn csr_flushes_appear_when_requested() {
        let params = SynthParams {
            csr_flush_prob: 0.9,
            ..SynthParams::default()
        };
        let p = generate("t", &params, 5);
        assert!(p.instrs().iter().any(|i| i.kind() == InstrKind::CsrFlush));
    }

    #[test]
    fn fault_handler_is_wired_up() {
        let params = SynthParams {
            fault_every: Some(1_000),
            ..SynthParams::default()
        };
        let p = generate("t", &params, 6);
        assert!(p.fault_handler().is_some());
        assert!(p.instrs().iter().any(|i| i.fault_spec().is_some()));
    }

    #[test]
    fn code_segments_inflate_footprint() {
        let small = generate("s", &SynthParams::default(), 7);
        let big = generate(
            "b",
            &SynthParams {
                code_segments: 60,
                ..SynthParams::default()
            },
            7,
        );
        assert!(big.len() > 4 * small.len());
    }

    #[test]
    fn pointer_chase_serializes_through_register() {
        let params = SynthParams {
            pointer_chase: 1.0,
            mix: InstrMix::mem_heavy(),
            ..SynthParams::default()
        };
        let p = generate("t", &params, 8);
        let chasing = p
            .instrs()
            .iter()
            .filter(|i| {
                i.kind() == InstrKind::Load
                    && i.dst() == Some(Reg::int(25))
                    && i.srcs()[0] == Some(Reg::int(25))
            })
            .count();
        assert!(
            chasing > 0,
            "pointer-chase loads must carry a loop dependency"
        );
    }
}
