//! Structural invariants of the commit-stage trace, checked on every cycle
//! of varied executions, plus targeted pipeline-behaviour tests.

use tip_isa::{BranchBehavior, Instr, InstrKind, MemBehavior, ProgramBuilder, Reg};
use tip_ooo::{Core, CoreConfig, CycleRecord, TraceSink};

/// Checks per-record invariants as the trace streams by.
struct InvariantChecker {
    commit_width: u8,
    rob_entries: u32,
    cycles: u64,
    violations: Vec<String>,
}

impl InvariantChecker {
    fn new(config: &CoreConfig) -> Self {
        InvariantChecker {
            commit_width: config.commit_width as u8,
            rob_entries: config.rob_entries,
            cycles: 0,
            violations: Vec::new(),
        }
    }

    fn check(&mut self, r: &CycleRecord) -> Result<(), String> {
        if r.cycle != self.cycles {
            return Err(format!(
                "cycle numbers must be dense: {} vs {}",
                r.cycle, self.cycles
            ));
        }
        if r.n_committed > self.commit_width {
            return Err(format!("commit width exceeded: {}", r.n_committed));
        }
        if r.rob_len > self.rob_entries {
            return Err(format!("ROB overflow: {}", r.rob_len));
        }
        if usize::from(r.oldest_bank) >= usize::from(self.commit_width) {
            return Err(format!("oldest bank {} out of range", r.oldest_bank));
        }
        // Committed entries must appear in the bank view with commit bits.
        for c in r.committed_iter() {
            if !r
                .banks
                .iter()
                .any(|b| b.valid && b.committing && b.addr == c.addr)
            {
                return Err(format!("committed {} missing from banks", c.addr));
            }
        }
        // A non-empty ROB must expose a head; an empty one must not.
        if r.rob_empty() != r.head.is_none() {
            return Err("head/rob_len inconsistency".to_owned());
        }
        // In the stalled state the oldest bank holds the head instruction.
        if !r.is_committing() {
            if let Some(head) = &r.head {
                let b = &r.banks[r.oldest_bank as usize];
                if !(b.valid && b.addr == head.addr) {
                    return Err("stalled head not in oldest bank".to_owned());
                }
            }
        }
        // Exceptions fire only on non-committing, squashed cycles.
        if r.exception.is_some() && r.is_committing() {
            return Err("exception on a committing cycle".to_owned());
        }
        Ok(())
    }
}

impl TraceSink for InvariantChecker {
    fn on_cycle(&mut self, r: &CycleRecord) {
        if let Err(v) = self.check(r) {
            self.violations.push(format!("cycle {}: {v}", r.cycle));
        }
        self.cycles += 1;
    }
}

fn mixed_program() -> tip_isa::Program {
    let mut b = ProgramBuilder::named("mixed");
    let main = b.function("main");
    let callee = b.function("callee");
    let head = b.block(main);
    b.push(head, Instr::int_alu(Some(Reg::int(1)), [None, None]));
    b.push(
        head,
        Instr::load(
            Some(Reg::int(2)),
            None,
            MemBehavior::RandomIn {
                base: 0x100_0000,
                footprint: 8 << 20,
            },
        ),
    );
    b.push(head, Instr::call(callee));
    let mid = b.block(main);
    b.push(mid, Instr::csr_flush());
    b.push(
        mid,
        Instr::branch(head, BranchBehavior::Loop { taken_iters: 400 }),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());
    let c0 = b.block(callee);
    b.push(
        c0,
        Instr::fp(InstrKind::FpMul, Some(Reg::fp(1)), [Some(Reg::fp(1)), None]),
    );
    b.push(
        c0,
        Instr::branch(c0, BranchBehavior::Bernoulli { taken_prob: 0.3 }),
    );
    let c1 = b.block(callee);
    b.push(c1, Instr::ret());
    b.build().expect("valid")
}

#[test]
fn record_invariants_hold_on_default_core() {
    let p = mixed_program();
    let config = CoreConfig::default();
    let mut checker = InvariantChecker::new(&config);
    let mut core = Core::new(&p, config, 9);
    core.run(&mut checker, 10_000_000);
    assert!(
        checker.violations.is_empty(),
        "violations: {:?}",
        &checker.violations[..3.min(checker.violations.len())]
    );
}

#[test]
fn record_invariants_hold_on_2wide_core() {
    let p = mixed_program();
    let config = CoreConfig::small_2wide();
    let mut checker = InvariantChecker::new(&config);
    let mut core = Core::new(&p, config, 9);
    core.run(&mut checker, 10_000_000);
    assert!(
        checker.violations.is_empty(),
        "violations: {:?}",
        &checker.violations[..3.min(checker.violations.len())]
    );
}

#[test]
fn narrow_core_never_commits_more_than_its_width() {
    struct MaxCommit(u8);
    impl TraceSink for MaxCommit {
        fn on_cycle(&mut self, r: &CycleRecord) {
            self.0 = self.0.max(r.n_committed);
        }
    }
    let p = mixed_program();
    let mut max = MaxCommit(0);
    let mut core = Core::new(&p, CoreConfig::small_2wide(), 9);
    core.run(&mut max, 10_000_000);
    assert!(max.0 <= 2);
    assert!(max.0 > 0);
}

#[test]
fn store_buffer_backpressure_creates_store_stalls() {
    // Stores streaming to DRAM faster than the buffer can drain must stall
    // commit with a store at the head.
    let mut b = ProgramBuilder::named("stores");
    let main = b.function("main");
    let blk = b.block(main);
    for i in 0..4 {
        b.push(
            blk,
            Instr::store(
                Some(Reg::int(i + 1)),
                None,
                MemBehavior::Stride {
                    base: 0x200_0000,
                    stride: 64,
                    footprint: 64 << 20,
                },
            ),
        );
    }
    b.push(
        blk,
        Instr::branch(blk, BranchBehavior::Loop { taken_iters: 3_000 }),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());
    let p = b.build().expect("valid");

    struct StoreStalls(u64);
    impl TraceSink for StoreStalls {
        fn on_cycle(&mut self, r: &CycleRecord) {
            if !r.is_committing() {
                if let Some(h) = &r.head {
                    if h.kind == InstrKind::Store && h.executed {
                        self.0 += 1;
                    }
                }
            }
        }
    }
    let mut stalls = StoreStalls(0);
    let mut core = Core::new(&p, CoreConfig::default(), 9);
    let summary = core.run(&mut stalls, 50_000_000);
    assert!(
        stalls.0 > summary.cycles / 10,
        "expected heavy store-buffer backpressure, got {} of {} cycles",
        stalls.0,
        summary.cycles
    );
}

#[test]
fn deep_recursion_overflows_the_ras_gracefully() {
    // A call chain deeper than the 32-entry RAS: returns beyond the stack
    // depth mispredict, but execution stays correct.
    let mut b = ProgramBuilder::named("deep");
    let main = b.function("main");
    let fns: Vec<_> = (0..40).map(|i| b.function(format!("f{i}"))).collect();
    let m0 = b.block(main);
    b.push(m0, Instr::call(fns[0]));
    let m1 = b.block(main);
    b.push(m1, Instr::halt());
    for i in 0..40 {
        let blk = b.block(fns[i]);
        b.push(blk, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        if i + 1 < 40 {
            b.push(blk, Instr::call(fns[i + 1]));
            let r = b.block(fns[i]);
            b.push(r, Instr::ret());
        } else {
            b.push(blk, Instr::ret());
        }
    }
    let p = b.build().expect("valid");
    let mut core = Core::new(&p, CoreConfig::default(), 9);
    let summary = core.run(&mut (), 1_000_000);
    assert_eq!(summary.exit, tip_ooo::RunExit::Halted);
    assert!(
        core.stats().mispredicts > 0,
        "RAS overflow must cost mispredicts"
    );
}

#[test]
fn wrong_path_instructions_reach_the_dispatch_boundary() {
    // With a hard-to-predict branch, wrong-path entries should be visible
    // at next_to_dispatch (the Dispatch profiler's tag point).
    let mut b = ProgramBuilder::named("wp");
    let main = b.function("main");
    let head = b.block(main);
    let skip = b.block(main);
    let join = b.block(main);
    let exit = b.block(main);
    b.push(head, Instr::int_alu(Some(Reg::int(1)), [None, None]));
    b.push(
        head,
        Instr::branch(join, BranchBehavior::Bernoulli { taken_prob: 0.5 }),
    );
    b.push(skip, Instr::int_alu(Some(Reg::int(2)), [None, None]));
    b.push(skip, Instr::jump(join));
    b.push(join, Instr::int_alu(Some(Reg::int(3)), [None, None]));
    b.push(
        join,
        Instr::branch(head, BranchBehavior::Loop { taken_iters: 2_000 }),
    );
    b.push(exit, Instr::halt());
    let p = b.build().expect("valid");

    struct WrongPathSeen(u64);
    impl TraceSink for WrongPathSeen {
        fn on_cycle(&mut self, r: &CycleRecord) {
            if matches!(r.next_to_dispatch, Some((_, _, true))) {
                self.0 += 1;
            }
        }
    }
    let mut seen = WrongPathSeen(0);
    let mut core = Core::new(&p, CoreConfig::default(), 9);
    core.run(&mut seen, 10_000_000);
    assert!(
        seen.0 > 100,
        "wrong-path dispatch tags should be common, got {}",
        seen.0
    );
    assert!(core.stats().wrong_path_fetched > 1_000);
}
