//! Forward-progress watchdog: a crafted livelock must be detected quickly
//! and reported with an actionable pipeline-state dump.

use tip_isa::{BranchBehavior, Instr, Program, ProgramBuilder};
use tip_ooo::{Core, CoreConfig, RunExit, SimError, StallReason};

fn looping_program(iters: u32) -> Program {
    let mut b = ProgramBuilder::named("watchdog-victim");
    let main = b.function("main");
    let body = b.block(main);
    b.push(body, Instr::int_alu(None, [None, None]));
    b.push(body, Instr::int_alu(None, [None, None]));
    b.push(
        body,
        Instr::branch(body, BranchBehavior::Loop { taken_iters: iters }),
    );
    let exit = b.block(main);
    b.push(exit, Instr::halt());
    b.build().expect("valid program")
}

fn wedged_core(program: &Program, watchdog_cycles: u64) -> Core<'_> {
    let config = CoreConfig {
        watchdog_cycles,
        ..CoreConfig::default()
    };
    let mut core = Core::new(program, config, 1);
    // Make some healthy progress first, then wedge the front-end.
    for _ in 0..200 {
        core.step(&mut ());
    }
    assert!(core.stats().committed > 0, "warm-up should commit");
    core.inject_lost_redirect();
    core
}

#[test]
fn watchdog_detects_crafted_livelock() {
    let program = looping_program(1_000_000);
    let mut core = wedged_core(&program, 1_000);
    let committed_before = core.stats().committed;

    let summary = core.run(&mut (), 50_000_000);
    let RunExit::Stuck(diag) = summary.exit else {
        panic!("expected Stuck exit, got {:?}", summary.exit);
    };

    // The watchdog fired close to its threshold, not at the cycle budget.
    assert!(
        summary.cycles < 250 + 1_000 + 16,
        "fired late: {} cycles",
        summary.cycles
    );
    assert!(diag.cycles_since_commit() >= 1_000);

    // The dump describes the crafted fault: an empty ROB with the front-end
    // parked waiting for a redirect that never arrives.
    assert_eq!(diag.reason, StallReason::FrontEndStalled);
    assert!(diag.fetch_stalled_forever);
    assert_eq!(diag.rob_len, 0);
    assert!(diag.head.is_none());
    assert_eq!(diag.committed, committed_before);
    assert_eq!(diag.cycle, summary.cycles);

    // And the rendered diagnostic is human-readable.
    let text = diag.to_string();
    assert!(text.contains("front-end stalled"), "{text}");
    assert!(text.contains("no commit for"), "{text}");
}

#[test]
fn run_to_completion_reports_livelock_as_error() {
    let program = looping_program(1_000_000);
    let mut core = wedged_core(&program, 1_000);
    let err = core
        .run_to_completion(&mut (), 50_000_000)
        .expect_err("wedged core cannot complete");
    match err {
        SimError::Livelock(diag) => {
            assert_eq!(diag.reason, StallReason::FrontEndStalled);
        }
        other => panic!("expected Livelock, got {other:?}"),
    }
    let text = err.to_string();
    assert!(text.starts_with("pipeline livelock"), "{text}");
}

#[test]
fn run_to_completion_reports_cycle_limit_as_error() {
    let program = looping_program(1_000_000);
    let mut core = Core::new(&program, CoreConfig::default(), 1);
    let err = core
        .run_to_completion(&mut (), 500)
        .expect_err("budget far too small");
    match err {
        SimError::CycleLimit {
            max_cycles,
            committed,
        } => {
            assert_eq!(max_cycles, 500);
            assert!(committed > 0, "should have made progress");
        }
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

#[test]
fn healthy_runs_are_unaffected_by_the_watchdog() {
    let program = looping_program(5_000);
    let config = CoreConfig::default();
    let mut with_watchdog = Core::new(&program, config.clone(), 7);
    let a = with_watchdog.run(&mut (), 50_000_000);
    let mut without = Core::new(
        &program,
        CoreConfig {
            watchdog_cycles: 0,
            ..config
        },
        7,
    );
    let b = without.run(&mut (), 50_000_000);
    assert_eq!(a, b, "watchdog must not perturb healthy runs");
    assert!(a.exit.is_complete());
}

#[test]
fn disabled_watchdog_spins_to_cycle_limit() {
    let program = looping_program(1_000_000);
    let config = CoreConfig {
        watchdog_cycles: 0,
        ..CoreConfig::default()
    };
    let mut core = Core::new(&program, config, 1);
    for _ in 0..200 {
        core.step(&mut ());
    }
    core.inject_lost_redirect();
    let summary = core.run(&mut (), 10_000);
    assert_eq!(summary.exit, RunExit::CycleLimit);
}
