//! Core configuration (Table 1 of the paper).

use serde::{Deserialize, Serialize};
use tip_mem::MemConfig;

/// Maximum commit width supported by the trace record layout.
pub const MAX_COMMIT: usize = 4;

/// One issue queue's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IqConfig {
    /// Number of entries.
    pub entries: u32,
    /// Instructions issued per cycle.
    pub width: u32,
}

/// Full configuration of the out-of-order core.
///
/// The default reproduces the BOOM configuration of Table 1: 8-wide fetch
/// into a 32-entry fetch buffer, 4-wide decode/dispatch/commit, 128-entry
/// ROB banked by commit width, 128 int + 128 fp physical registers, a
/// 40-entry 4-issue INT queue, 24-entry dual-issue MEM queue, 32-entry
/// dual-issue FP queue, a 32-entry load/store queue, and at most 20
/// outstanding branches, at 3.2 GHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Configuration name (used in reports).
    pub name: String,
    /// Core clock in GHz (3.2 in the paper; used for data-rate conversions).
    pub clock_ghz: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Fetch buffer entries.
    pub fetch_buffer: u32,
    /// Decode/rename/dispatch width.
    pub decode_width: u32,
    /// Commit width; equals the number of ROB banks. At most [`MAX_COMMIT`].
    pub commit_width: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Integer physical registers.
    pub int_phys_regs: u32,
    /// Floating-point physical registers.
    pub fp_phys_regs: u32,
    /// Integer issue queue.
    pub int_iq: IqConfig,
    /// Memory issue queue.
    pub mem_iq: IqConfig,
    /// Floating-point issue queue.
    pub fp_iq: IqConfig,
    /// Load/store queue entries (combined).
    pub lsq_entries: u32,
    /// Store buffer entries draining committed stores to the L1D.
    pub store_buffer: u32,
    /// Maximum unresolved branches in flight.
    pub max_branches: u32,
    /// Pipeline depth from fetch to dispatch-eligibility, in cycles
    /// (decode + rename stages).
    pub front_end_delay: u32,
    /// Fetch bubble after a predicted-taken control-flow instruction.
    pub taken_bubble: u32,
    /// Cycles between a mispredict/flush resolution and the front-end
    /// beginning to refetch.
    pub redirect_penalty: u32,
    /// Whether the front-end fetches and dispatches wrong-path instructions
    /// after a misprediction (ablation knob; the paper's core does).
    pub model_wrong_path: bool,
    /// Forward-progress watchdog: if no instruction commits for this many
    /// consecutive cycles, [`crate::Core::run`] exits with
    /// [`crate::RunExit::Stuck`] and a pipeline-state dump instead of
    /// spinning until the cycle budget runs out. `0` disables the watchdog.
    ///
    /// The default (100 000 cycles) is orders of magnitude beyond any legal
    /// commit gap in this model: the longest structural stalls — a chain of
    /// DRAM misses at the ROB head plus a serialized dispatch — span
    /// thousands of cycles, not tens of thousands.
    pub watchdog_cycles: u64,
    /// Memory system configuration.
    pub mem: MemConfig,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            name: "boom-4w".to_owned(),
            clock_ghz: 3.2,
            fetch_width: 8,
            fetch_buffer: 32,
            decode_width: 4,
            commit_width: 4,
            rob_entries: 128,
            int_phys_regs: 128,
            fp_phys_regs: 128,
            int_iq: IqConfig {
                entries: 40,
                width: 4,
            },
            mem_iq: IqConfig {
                entries: 24,
                width: 2,
            },
            fp_iq: IqConfig {
                entries: 32,
                width: 2,
            },
            lsq_entries: 32,
            store_buffer: 16,
            max_branches: 20,
            front_end_delay: 4,
            taken_bubble: 1,
            redirect_penalty: 2,
            model_wrong_path: true,
            watchdog_cycles: 100_000,
            mem: MemConfig::default(),
        }
    }
}

impl CoreConfig {
    /// A smaller 2-wide configuration used by the validation experiment
    /// (playing the role of the paper's "different platform").
    #[must_use]
    pub fn small_2wide() -> Self {
        CoreConfig {
            name: "small-2w".to_owned(),
            fetch_width: 4,
            fetch_buffer: 16,
            decode_width: 2,
            commit_width: 2,
            rob_entries: 64,
            int_phys_regs: 80,
            fp_phys_regs: 80,
            int_iq: IqConfig {
                entries: 20,
                width: 2,
            },
            mem_iq: IqConfig {
                entries: 12,
                width: 1,
            },
            fp_iq: IqConfig {
                entries: 16,
                width: 1,
            },
            lsq_entries: 16,
            store_buffer: 8,
            ..CoreConfig::default()
        }
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if the commit width exceeds [`MAX_COMMIT`], is zero, or the ROB
    /// size is not a multiple of the commit width, or register files are too
    /// small to cover the 32+32 logical registers.
    pub fn validate(&self) {
        assert!(self.commit_width >= 1 && self.commit_width as usize <= MAX_COMMIT);
        assert!(
            self.rob_entries.is_multiple_of(self.commit_width),
            "ROB must divide into banks"
        );
        assert!(
            self.int_phys_regs > 32 && self.fp_phys_regs > 32,
            "need free physical registers"
        );
        assert!(self.decode_width >= 1 && self.fetch_width >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        c.validate();
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.commit_width, 4);
        assert_eq!(
            c.int_iq,
            IqConfig {
                entries: 40,
                width: 4
            }
        );
        assert_eq!(
            c.mem_iq,
            IqConfig {
                entries: 24,
                width: 2
            }
        );
        assert_eq!(
            c.fp_iq,
            IqConfig {
                entries: 32,
                width: 2
            }
        );
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.max_branches, 20);
        assert!((c.clock_ghz - 3.2).abs() < 1e-12);
    }

    #[test]
    fn small_config_is_valid() {
        CoreConfig::small_2wide().validate();
    }

    #[test]
    #[should_panic(expected = "banks")]
    fn invalid_rob_banking_panics() {
        let c = CoreConfig {
            rob_entries: 127,
            ..CoreConfig::default()
        };
        c.validate();
    }
}
