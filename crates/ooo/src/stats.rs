//! Aggregate core statistics.

use serde::{Deserialize, Serialize};

use crate::error::StuckDiag;

/// Counters accumulated by one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub committed: u64,
    /// Correct-path instructions fetched.
    pub fetched: u64,
    /// Wrong-path instructions fetched (and later squashed).
    pub wrong_path_fetched: u64,
    /// Branches that resolved mispredicted (direction or return target).
    pub mispredicts: u64,
    /// Pipeline flushes caused by committing CSR instructions.
    pub csr_flushes: u64,
    /// Exceptions (page faults) taken.
    pub exceptions: u64,
    /// Cycles with at least one commit.
    pub commit_cycles: u64,
    /// Cycles with an empty ROB at end of cycle and no commit.
    pub empty_rob_cycles: u64,
    /// Cycles the front-end could not deliver because of I-cache/I-TLB
    /// misses.
    pub icache_stall_cycles: u64,
    /// Cycles dispatch was blocked by a full ROB.
    pub rob_full_cycles: u64,
}

impl CoreStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The outcome of [`crate::Core::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions committed.
    pub instructions: u64,
    /// How the run ended.
    pub exit: RunExit,
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunExit {
    /// A `halt` instruction committed.
    Halted,
    /// The program's dynamic stream ended (entry function returned).
    StreamEnd,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// The forward-progress watchdog detected a commit livelock; the payload
    /// is the pipeline-state dump captured when it fired.
    Stuck(StuckDiag),
}

impl RunExit {
    /// Whether the run completed normally (halt committed or stream drained).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, RunExit::Halted | RunExit::StreamEnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }
}
