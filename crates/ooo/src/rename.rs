//! Register renaming: speculative map, free lists, and readiness.

use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{Reg, RegClass};

/// Renames logical registers onto physical registers.
///
/// Physical registers are numbered in one namespace: `0..int_regs` for the
/// integer file and `int_regs..int_regs+fp_regs` for the FP file. Initially
/// logical `xN` maps to physical `N` and `fN` to `int_regs + N`; the rest
/// populate the free lists.
///
/// Each renamed uop records the previous mapping of its destination so a
/// squash can roll the map back by undoing uops youngest-first.
#[derive(Debug, Clone)]
pub(crate) struct Renamer {
    map: [u32; 64],
    free_int: Vec<u32>,
    free_fp: Vec<u32>,
    /// Cycle at which each physical register's value is available
    /// (`u64::MAX` = not yet scheduled; `0` = ready since reset).
    ready_at: Vec<u64>,
    int_regs: u32,
}

impl Renamer {
    pub fn new(int_regs: u32, fp_regs: u32) -> Self {
        let mut map = [0u32; 64];
        for (i, m) in map.iter_mut().enumerate() {
            *m = if i < 32 {
                i as u32
            } else {
                int_regs + (i as u32 - 32)
            };
        }
        let free_int = (32..int_regs).rev().collect();
        let free_fp = (int_regs + 32..int_regs + fp_regs).rev().collect();
        Renamer {
            map,
            free_int,
            free_fp,
            ready_at: vec![0; (int_regs + fp_regs) as usize],
            int_regs,
        }
    }

    /// Whether a destination of class `class` can be allocated.
    pub fn can_allocate(&self, class: RegClass) -> bool {
        match class {
            RegClass::Int => !self.free_int.is_empty(),
            RegClass::Fp => !self.free_fp.is_empty(),
        }
    }

    /// Current physical mapping of `reg`.
    pub fn lookup(&self, reg: Reg) -> u32 {
        self.map[reg.dense_index()]
    }

    /// Allocates a new physical register for destination `reg`; returns
    /// `(new_preg, previous_preg)`. The new register is marked not-ready.
    ///
    /// # Panics
    ///
    /// Panics if the free list for `reg`'s class is empty (check
    /// [`can_allocate`](Self::can_allocate) first).
    pub fn allocate(&mut self, reg: Reg) -> (u32, u32) {
        let free = match reg.class() {
            RegClass::Int => &mut self.free_int,
            RegClass::Fp => &mut self.free_fp,
        };
        let preg = free.pop().expect("free physical register available");
        let prev = std::mem::replace(&mut self.map[reg.dense_index()], preg);
        self.ready_at[preg as usize] = u64::MAX;
        (preg, prev)
    }

    /// Rolls back one squashed uop's rename (call youngest-first).
    pub fn rollback(&mut self, reg: Reg, preg: u32, prev: u32) {
        self.map[reg.dense_index()] = prev;
        self.release_preg(preg);
    }

    /// Frees `preg` into the right free list (the class is derived from the
    /// numbering split).
    pub fn release_preg(&mut self, preg: u32) {
        if preg < self.int_regs {
            self.free_int.push(preg);
        } else {
            self.free_fp.push(preg);
        }
    }

    /// Marks `preg`'s value available at `cycle`.
    pub fn set_ready_at(&mut self, preg: u32, cycle: u64) {
        self.ready_at[preg as usize] = cycle;
    }

    /// The cycle `preg`'s value is available.
    pub fn ready_at(&self, preg: u32) -> u64 {
        self.ready_at[preg as usize]
    }

    /// Number of free integer / fp physical registers.
    #[cfg(test)]
    pub fn free_counts(&self) -> (usize, usize) {
        (self.free_int.len(), self.free_fp.len())
    }

    /// Serializes the rename map, free lists, and readiness table.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        for &m in &self.map {
            snap::put_u32(out, m);
        }
        snap::put_len(out, self.free_int.len());
        for &p in &self.free_int {
            snap::put_u32(out, p);
        }
        snap::put_len(out, self.free_fp.len());
        for &p in &self.free_fp {
            snap::put_u32(out, p);
        }
        for &ready in &self.ready_at {
            snap::put_u64(out, ready);
        }
    }

    /// Restores a renamer captured by [`Renamer::snapshot_into`] for a core
    /// with `int_regs` + `fp_regs` physical registers.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged or any physical
    /// register number falls outside the configured files.
    pub fn restore(int_regs: u32, fp_regs: u32, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let total = int_regs + fp_regs;
        let mut map = [0u32; 64];
        for m in &mut map {
            let p = r.u32()?;
            if p >= total {
                return Err(SnapError::Malformed("mapped preg out of range"));
            }
            *m = p;
        }
        let read_free = |r: &mut SnapReader<'_>| -> Result<Vec<u32>, SnapError> {
            let n = r.len_of(4)?;
            let mut free = Vec::with_capacity(n);
            for _ in 0..n {
                let p = r.u32()?;
                if p >= total {
                    return Err(SnapError::Malformed("free preg out of range"));
                }
                free.push(p);
            }
            Ok(free)
        };
        let free_int = read_free(r)?;
        let free_fp = read_free(r)?;
        if free_int.iter().any(|&p| p >= int_regs) || free_fp.iter().any(|&p| p < int_regs) {
            return Err(SnapError::Malformed("free list crosses register files"));
        }
        let mut ready_at = Vec::with_capacity(total as usize);
        for _ in 0..total {
            ready_at.push(r.u64()?);
        }
        Ok(Renamer {
            map,
            free_int,
            free_fp,
            ready_at,
            int_regs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mapping_is_identity() {
        let r = Renamer::new(128, 128);
        assert_eq!(r.lookup(Reg::int(5)), 5);
        assert_eq!(r.lookup(Reg::fp(5)), 128 + 5);
        assert_eq!(r.free_counts(), (96, 96));
    }

    #[test]
    fn allocate_and_rollback_restores_map() {
        let mut r = Renamer::new(128, 128);
        let before = r.lookup(Reg::int(3));
        let (preg, prev) = r.allocate(Reg::int(3));
        assert_eq!(prev, before);
        assert_ne!(r.lookup(Reg::int(3)), before);
        assert_eq!(r.ready_at(preg), u64::MAX);
        r.rollback(Reg::int(3), preg, prev);
        assert_eq!(r.lookup(Reg::int(3)), before);
        assert_eq!(r.free_counts(), (96, 96));
    }

    #[test]
    fn commit_frees_previous_mapping() {
        let mut r = Renamer::new(128, 128);
        let (_, prev) = r.allocate(Reg::int(3));
        r.release_preg(prev);
        assert_eq!(r.free_counts().0, 96, "net zero after commit frees prev");
    }

    #[test]
    fn exhaustion_is_detectable() {
        let mut r = Renamer::new(34, 33);
        assert!(r.can_allocate(RegClass::Int));
        r.allocate(Reg::int(0));
        r.allocate(Reg::int(1));
        assert!(!r.can_allocate(RegClass::Int));
        assert!(r.can_allocate(RegClass::Fp));
        r.allocate(Reg::fp(0));
        assert!(!r.can_allocate(RegClass::Fp));
    }

    #[test]
    fn readiness_tracks_cycles() {
        let mut r = Renamer::new(128, 128);
        let (preg, _) = r.allocate(Reg::int(1));
        r.set_ready_at(preg, 42);
        assert_eq!(r.ready_at(preg), 42);
    }

    #[test]
    fn snapshot_roundtrips_mid_rename() {
        let mut r = Renamer::new(40, 40);
        let (p1, _) = r.allocate(Reg::int(3));
        r.set_ready_at(p1, 77);
        let (_, prev) = r.allocate(Reg::fp(9));
        r.release_preg(prev);

        let mut buf = Vec::new();
        r.snapshot_into(&mut buf);
        let mut reader = SnapReader::new(&buf);
        let restored = Renamer::restore(40, 40, &mut reader).unwrap();
        assert!(reader.is_empty());
        assert_eq!(restored.lookup(Reg::int(3)), r.lookup(Reg::int(3)));
        assert_eq!(restored.lookup(Reg::fp(9)), r.lookup(Reg::fp(9)));
        assert_eq!(restored.ready_at(p1), 77);
        assert_eq!(restored.free_counts(), r.free_counts());
        // A different register-file shape must be rejected.
        assert!(Renamer::restore(36, 36, &mut SnapReader::new(&buf)).is_err());
    }

    #[test]
    fn fp_pregs_release_to_fp_list() {
        let mut r = Renamer::new(128, 128);
        let (preg, prev) = r.allocate(Reg::fp(7));
        assert!(preg >= 128);
        r.release_preg(prev);
        let (i, f) = r.free_counts();
        assert_eq!(i, 96);
        assert_eq!(f, 96);
    }
}
