//! The per-cycle commit-stage trace the profilers consume.
//!
//! This mirrors what the paper's authors extracted from FireSim: "the
//! instruction address and the valid, commit, exception, flush, and
//! mispredicted flags of the head ROB-entry in each ROB bank every cycle",
//! plus the head/tail information needed to model the Dispatch and Software
//! profilers. All profilers in `tip-core` are driven exclusively from
//! [`CycleRecord`]s — they never peek inside the core.

use crate::config::MAX_COMMIT;
use tip_isa::{InstrAddr, InstrIdx, InstrKind};

/// An instruction committed this cycle, with the flags TIP's OIR tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitView {
    /// Address of the committed instruction.
    pub addr: InstrAddr,
    /// Static instruction index.
    pub idx: InstrIdx,
    /// Kind (profilers use this for cycle-stack categories).
    pub kind: InstrKind,
    /// The instruction was a mispredicted branch.
    pub mispredicted: bool,
    /// The instruction forces a pipeline flush at commit (CSR access).
    pub flush: bool,
}

/// The oldest in-flight instruction at the end of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadView {
    /// Address of the instruction at the head of the ROB.
    pub addr: InstrAddr,
    /// Static instruction index.
    pub idx: InstrIdx,
    /// Kind (drives the stall-type classification).
    pub kind: InstrKind,
    /// Whether it has finished executing (it then commits next cycle).
    pub executed: bool,
}

/// One ROB bank's head entry as TIP's sample-selection unit sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankView {
    /// The bank holds a dispatched instruction.
    pub valid: bool,
    /// The instruction committed this cycle.
    pub committing: bool,
    /// Its address (meaningless when `!valid`).
    pub addr: InstrAddr,
    /// Its static index (meaningless when `!valid`).
    pub idx: InstrIdx,
    /// Its kind (meaningless when `!valid`).
    pub kind: InstrKind,
}

impl BankView {
    /// An invalid (empty) bank.
    #[must_use]
    pub fn invalid() -> Self {
        BankView {
            valid: false,
            committing: false,
            addr: InstrAddr::new(0),
            idx: InstrIdx::new(0),
            kind: InstrKind::Nop,
        }
    }
}

/// Everything the profilers may observe about one clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// The cycle number (0-based).
    pub cycle: u64,
    /// Number of instructions committed this cycle.
    pub n_committed: u8,
    /// The committed instructions, oldest first.
    pub committed: [Option<CommitView>; MAX_COMMIT],
    /// Head-column view per ROB bank (index = bank id).
    pub banks: [BankView; MAX_COMMIT],
    /// Bank id of the oldest valid entry (TIP's "Oldest ID").
    pub oldest_bank: u8,
    /// Number of ROB entries at the end of the cycle.
    pub rob_len: u32,
    /// The oldest in-flight instruction at the end of the cycle.
    pub head: Option<HeadView>,
    /// An exception fired this cycle for this instruction (it was squashed
    /// and will re-execute after the handler).
    pub exception: Option<(InstrAddr, InstrIdx)>,
    /// The next instruction waiting at the dispatch boundary
    /// (address, index, is-wrong-path). Models what AMD-IBS-style Dispatch
    /// tagging would select.
    pub next_to_dispatch: Option<(InstrAddr, InstrIdx, bool)>,
    /// The next correct-path instruction the front-end will fetch. Models the
    /// program counter a Software (interrupt-based) profiler would observe.
    pub next_to_fetch: Option<(InstrAddr, InstrIdx)>,
}

impl CycleRecord {
    /// A record for an idle cycle (nothing committed, empty ROB).
    #[must_use]
    pub fn empty(cycle: u64) -> Self {
        CycleRecord {
            cycle,
            n_committed: 0,
            committed: [None; MAX_COMMIT],
            banks: [BankView::invalid(); MAX_COMMIT],
            oldest_bank: 0,
            rob_len: 0,
            head: None,
            exception: None,
            next_to_dispatch: None,
            next_to_fetch: None,
        }
    }

    /// Committed instructions as a slice-like iterator, oldest first.
    pub fn committed_iter(&self) -> impl Iterator<Item = &CommitView> {
        self.committed
            .iter()
            .take(self.n_committed as usize)
            .flatten()
    }

    /// Whether any instruction committed this cycle.
    #[must_use]
    pub fn is_committing(&self) -> bool {
        self.n_committed > 0
    }

    /// Whether the ROB is empty at the end of the cycle.
    #[must_use]
    pub fn rob_empty(&self) -> bool {
        self.rob_len == 0
    }

    /// The youngest instruction committed this cycle (what TIP's OIR-update
    /// unit latches).
    #[must_use]
    pub fn youngest_committed(&self) -> Option<&CommitView> {
        if self.n_committed == 0 {
            None
        } else {
            self.committed[self.n_committed as usize - 1].as_ref()
        }
    }
}

/// Consumes the per-cycle trace online (profilers, statistics, ...).
pub trait TraceSink {
    /// Called once per simulated cycle, in order.
    fn on_cycle(&mut self, record: &CycleRecord);
}

/// Discards the trace (pure performance simulation).
impl TraceSink for () {
    fn on_cycle(&mut self, _record: &CycleRecord) {}
}

impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn on_cycle(&mut self, record: &CycleRecord) {
        self.0.on_cycle(record);
        self.1.on_cycle(record);
    }
}

impl<T: TraceSink> TraceSink for Vec<T> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        for sink in self {
            sink.on_cycle(record);
        }
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn on_cycle(&mut self, record: &CycleRecord) {
        (**self).on_cycle(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_record_is_idle() {
        let r = CycleRecord::empty(7);
        assert_eq!(r.cycle, 7);
        assert!(!r.is_committing());
        assert!(r.rob_empty());
        assert!(r.youngest_committed().is_none());
        assert_eq!(r.committed_iter().count(), 0);
    }

    #[test]
    fn youngest_committed_picks_last() {
        let mut r = CycleRecord::empty(0);
        let mk = |a: u64| CommitView {
            addr: InstrAddr::new(a),
            idx: InstrIdx::new(0),
            kind: InstrKind::IntAlu,
            mispredicted: false,
            flush: false,
        };
        r.committed[0] = Some(mk(0x10));
        r.committed[1] = Some(mk(0x14));
        r.n_committed = 2;
        assert_eq!(r.youngest_committed().unwrap().addr, InstrAddr::new(0x14));
        assert_eq!(r.committed_iter().count(), 2);
        assert!(r.is_committing());
    }

    #[test]
    fn sink_combinators_fan_out() {
        struct Counter(u64);
        impl TraceSink for Counter {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let mut pair = (Counter(0), Counter(0));
        let r = CycleRecord::empty(0);
        pair.on_cycle(&r);
        pair.on_cycle(&r);
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);

        let mut many = vec![Counter(0), Counter(0), Counter(0)];
        many.on_cycle(&r);
        assert!(many.iter().all(|c| c.0 == 1));
    }
}
