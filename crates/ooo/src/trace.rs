//! The per-cycle commit-stage trace the profilers consume.
//!
//! This mirrors what the paper's authors extracted from FireSim: "the
//! instruction address and the valid, commit, exception, flush, and
//! mispredicted flags of the head ROB-entry in each ROB bank every cycle",
//! plus the head/tail information needed to model the Dispatch and Software
//! profilers. All profilers in `tip-core` are driven exclusively from
//! [`CycleRecord`]s — they never peek inside the core.

use crate::config::MAX_COMMIT;
use tip_isa::{InstrAddr, InstrIdx, InstrKind};

/// An instruction committed this cycle, with the flags TIP's OIR tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitView {
    /// Address of the committed instruction.
    pub addr: InstrAddr,
    /// Static instruction index.
    pub idx: InstrIdx,
    /// Kind (profilers use this for cycle-stack categories).
    pub kind: InstrKind,
    /// The instruction was a mispredicted branch.
    pub mispredicted: bool,
    /// The instruction forces a pipeline flush at commit (CSR access).
    pub flush: bool,
}

/// The oldest in-flight instruction at the end of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadView {
    /// Address of the instruction at the head of the ROB.
    pub addr: InstrAddr,
    /// Static instruction index.
    pub idx: InstrIdx,
    /// Kind (drives the stall-type classification).
    pub kind: InstrKind,
    /// Whether it has finished executing (it then commits next cycle).
    pub executed: bool,
}

/// One ROB bank's head entry as TIP's sample-selection unit sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankView {
    /// The bank holds a dispatched instruction.
    pub valid: bool,
    /// The instruction committed this cycle.
    pub committing: bool,
    /// Its address (meaningless when `!valid`).
    pub addr: InstrAddr,
    /// Its static index (meaningless when `!valid`).
    pub idx: InstrIdx,
    /// Its kind (meaningless when `!valid`).
    pub kind: InstrKind,
}

impl BankView {
    /// An invalid (empty) bank.
    #[must_use]
    pub fn invalid() -> Self {
        BankView {
            valid: false,
            committing: false,
            addr: InstrAddr::new(0),
            idx: InstrIdx::new(0),
            kind: InstrKind::Nop,
        }
    }
}

impl CommitView {
    /// Filler for the unused tail of a record's commit array; never
    /// observable through [`CycleRecord::committed_iter`].
    #[must_use]
    pub fn invalid() -> Self {
        CommitView {
            addr: InstrAddr::new(0),
            idx: InstrIdx::new(0),
            kind: InstrKind::Nop,
            mispredicted: false,
            flush: false,
        }
    }
}

/// Everything the profilers may observe about one clock cycle.
///
/// Equality compares only the *meaningful* commit entries
/// (`committed[..n_committed]`): the simulator reuses one record across
/// cycles, so the array tail may hold stale data from earlier cycles — it
/// is dead storage, not state.
#[derive(Debug, Clone)]
pub struct CycleRecord {
    /// The cycle number (0-based).
    pub cycle: u64,
    /// Number of instructions committed this cycle (at most
    /// [`MAX_COMMIT`]).
    pub n_committed: u8,
    /// The committed instructions, oldest first; only the first
    /// `n_committed` entries are meaningful.
    pub committed: [CommitView; MAX_COMMIT],
    /// Head-column view per ROB bank (index = bank id).
    pub banks: [BankView; MAX_COMMIT],
    /// Bank id of the oldest valid entry (TIP's "Oldest ID").
    pub oldest_bank: u8,
    /// Number of ROB entries at the end of the cycle.
    pub rob_len: u32,
    /// The oldest in-flight instruction at the end of the cycle.
    pub head: Option<HeadView>,
    /// An exception fired this cycle for this instruction (it was squashed
    /// and will re-execute after the handler).
    pub exception: Option<(InstrAddr, InstrIdx)>,
    /// The next instruction waiting at the dispatch boundary
    /// (address, index, is-wrong-path). Models what AMD-IBS-style Dispatch
    /// tagging would select.
    pub next_to_dispatch: Option<(InstrAddr, InstrIdx, bool)>,
    /// The next correct-path instruction the front-end will fetch. Models the
    /// program counter a Software (interrupt-based) profiler would observe.
    pub next_to_fetch: Option<(InstrAddr, InstrIdx)>,
}

impl CycleRecord {
    /// A record for an idle cycle (nothing committed, empty ROB).
    #[must_use]
    pub fn empty(cycle: u64) -> Self {
        CycleRecord {
            cycle,
            n_committed: 0,
            committed: [CommitView::invalid(); MAX_COMMIT],
            banks: [BankView::invalid(); MAX_COMMIT],
            oldest_bank: 0,
            rob_len: 0,
            head: None,
            exception: None,
            next_to_dispatch: None,
            next_to_fetch: None,
        }
    }

    /// Resets to an idle record for `cycle`, reusing the storage.
    ///
    /// The committed array is deliberately *not* cleared: `n_committed = 0`
    /// makes the tail unobservable, so the per-cycle cost is just the small
    /// scalar fields and the bank views. This is what lets the simulator
    /// keep one record alive across the whole run instead of rebuilding a
    /// ~300-byte struct every cycle.
    #[inline]
    pub fn reset(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.n_committed = 0;
        self.banks = [BankView::invalid(); MAX_COMMIT];
        self.oldest_bank = 0;
        self.rob_len = 0;
        self.head = None;
        self.exception = None;
        self.next_to_dispatch = None;
        self.next_to_fetch = None;
    }

    /// The meaningful committed instructions, oldest first.
    #[inline]
    #[must_use]
    pub fn committed_slice(&self) -> &[CommitView] {
        // Records from the live simulator always satisfy
        // `n_committed <= MAX_COMMIT`; clamp anyway so a hand-built or
        // damaged record degrades instead of panicking.
        &self.committed[..(self.n_committed as usize).min(MAX_COMMIT)]
    }

    /// Committed instructions as an iterator, oldest first.
    #[inline]
    pub fn committed_iter(&self) -> impl Iterator<Item = &CommitView> {
        self.committed_slice().iter()
    }

    /// Whether any instruction committed this cycle.
    #[inline]
    #[must_use]
    pub fn is_committing(&self) -> bool {
        self.n_committed > 0
    }

    /// Whether the ROB is empty at the end of the cycle.
    #[inline]
    #[must_use]
    pub fn rob_empty(&self) -> bool {
        self.rob_len == 0
    }

    /// The youngest instruction committed this cycle (what TIP's OIR-update
    /// unit latches).
    #[inline]
    #[must_use]
    pub fn youngest_committed(&self) -> Option<&CommitView> {
        self.committed_slice().last()
    }
}

impl PartialEq for CycleRecord {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle
            && self.n_committed == other.n_committed
            && self.committed_slice() == other.committed_slice()
            && self.banks == other.banks
            && self.oldest_bank == other.oldest_bank
            && self.rob_len == other.rob_len
            && self.head == other.head
            && self.exception == other.exception
            && self.next_to_dispatch == other.next_to_dispatch
            && self.next_to_fetch == other.next_to_fetch
    }
}

/// Consumes the per-cycle trace online (profilers, statistics, ...).
pub trait TraceSink {
    /// Called once per simulated cycle, in order.
    fn on_cycle(&mut self, record: &CycleRecord);
}

/// Discards the trace (pure performance simulation).
impl TraceSink for () {
    fn on_cycle(&mut self, _record: &CycleRecord) {}
}

impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    fn on_cycle(&mut self, record: &CycleRecord) {
        self.0.on_cycle(record);
        self.1.on_cycle(record);
    }
}

impl<T: TraceSink> TraceSink for Vec<T> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        for sink in self {
            sink.on_cycle(record);
        }
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn on_cycle(&mut self, record: &CycleRecord) {
        (**self).on_cycle(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_record_is_idle() {
        let r = CycleRecord::empty(7);
        assert_eq!(r.cycle, 7);
        assert!(!r.is_committing());
        assert!(r.rob_empty());
        assert!(r.youngest_committed().is_none());
        assert_eq!(r.committed_iter().count(), 0);
    }

    fn mk(a: u64) -> CommitView {
        CommitView {
            addr: InstrAddr::new(a),
            idx: InstrIdx::new(0),
            kind: InstrKind::IntAlu,
            mispredicted: false,
            flush: false,
        }
    }

    #[test]
    fn youngest_committed_picks_last() {
        let mut r = CycleRecord::empty(0);
        r.committed[0] = mk(0x10);
        r.committed[1] = mk(0x14);
        r.n_committed = 2;
        assert_eq!(r.youngest_committed().unwrap().addr, InstrAddr::new(0x14));
        assert_eq!(r.committed_iter().count(), 2);
        assert!(r.is_committing());
    }

    #[test]
    fn equality_ignores_the_stale_commit_tail() {
        let mut a = CycleRecord::empty(0);
        a.committed[0] = mk(0x10);
        a.n_committed = 1;
        let mut b = a.clone();
        // Stale garbage beyond n_committed must be invisible to equality —
        // a reused record is compared against freshly decoded ones.
        b.committed[1] = mk(0xdead);
        b.committed[3] = mk(0xbeef);
        assert_eq!(a, b);
        b.n_committed = 2;
        assert_ne!(a, b, "entries under the count do participate");
    }

    #[test]
    fn reset_yields_an_idle_record_with_dead_tail() {
        let mut r = CycleRecord::empty(3);
        r.committed[0] = mk(0x10);
        r.n_committed = 1;
        r.rob_len = 9;
        r.oldest_bank = 2;
        r.banks[1].valid = true;
        r.head = None;
        r.exception = Some((InstrAddr::new(0x44), InstrIdx::new(4)));
        r.next_to_fetch = Some((InstrAddr::new(0x48), InstrIdx::new(5)));
        r.reset(7);
        assert_eq!(r, CycleRecord::empty(7), "reset must equal a fresh record");
        assert!(!r.is_committing());
        assert!(r.rob_empty());
        assert!(r.committed_iter().next().is_none());
    }

    #[test]
    fn hostile_count_is_clamped_not_a_panic() {
        let mut r = CycleRecord::empty(0);
        r.n_committed = 200; // only possible for hand-built/damaged records
        assert_eq!(r.committed_slice().len(), MAX_COMMIT);
        assert!(r.youngest_committed().is_some());
    }

    #[test]
    fn sink_combinators_fan_out() {
        struct Counter(u64);
        impl TraceSink for Counter {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let mut pair = (Counter(0), Counter(0));
        let r = CycleRecord::empty(0);
        pair.on_cycle(&r);
        pair.on_cycle(&r);
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);

        let mut many = vec![Counter(0), Counter(0), Counter(0)];
        many.on_cycle(&r);
        assert!(many.iter().all(|c| c.0 == 1));
    }
}
