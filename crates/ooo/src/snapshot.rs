//! Snapshot codec helpers shared by the core's checkpoint machinery.
//!
//! Encodes the ISA-level value types (instruction kinds, registers, dynamic
//! instructions) that appear inside the core's microarchitectural state.
//! Decoding validates every tag and every instruction index against the
//! program, so a damaged snapshot surfaces as a
//! [`SnapError`] instead of a panic or out-of-bounds access.

use tip_isa::snap::{self, SnapError, SnapReader};
pub(crate) use tip_isa::snap::{get_kind, put_kind};
use tip_isa::{DynInstr, InstrAddr, InstrIdx, Program, Reg, RegClass, WrongPathInstr};

pub(crate) fn put_opt_reg(out: &mut Vec<u8>, reg: Option<Reg>) {
    match reg {
        None => snap::put_u8(out, 0),
        Some(reg) => {
            snap::put_u8(
                out,
                match reg.class() {
                    RegClass::Int => 1,
                    RegClass::Fp => 2,
                },
            );
            snap::put_u8(out, reg.index());
        }
    }
}

pub(crate) fn get_opt_reg(r: &mut SnapReader<'_>) -> Result<Option<Reg>, SnapError> {
    let tag = r.u8()?;
    if tag == 0 {
        return Ok(None);
    }
    let index = r.u8()?;
    if index >= 32 {
        return Err(SnapError::Malformed("register index"));
    }
    match tag {
        1 => Ok(Some(Reg::int(index))),
        2 => Ok(Some(Reg::fp(index))),
        _ => Err(SnapError::Malformed("register tag")),
    }
}

pub(crate) fn put_opt_taken(out: &mut Vec<u8>, taken: Option<bool>) {
    snap::put_u8(
        out,
        match taken {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
    );
}

pub(crate) fn get_opt_taken(r: &mut SnapReader<'_>) -> Result<Option<bool>, SnapError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(false)),
        2 => Ok(Some(true)),
        _ => Err(SnapError::Malformed("taken tag")),
    }
}

/// Reads an instruction index, rejecting positions outside `program`.
pub(crate) fn get_idx(r: &mut SnapReader<'_>, program: &Program) -> Result<InstrIdx, SnapError> {
    let raw = r.u32()?;
    if (raw as usize) >= program.len() {
        return Err(SnapError::Malformed("instruction index out of range"));
    }
    Ok(InstrIdx::new(raw))
}

pub(crate) fn put_dyn(out: &mut Vec<u8>, d: &DynInstr) {
    snap::put_u64(out, d.seq);
    snap::put_u32(out, d.idx.raw());
    snap::put_u64(out, d.addr.raw());
    put_kind(out, d.kind);
    put_opt_taken(out, d.taken);
    snap::put_opt_u64(out, d.mem_addr);
    snap::put_bool(out, d.fault);
    snap::put_opt_u64(out, d.next_addr.map(InstrAddr::raw));
}

pub(crate) fn get_dyn(r: &mut SnapReader<'_>, program: &Program) -> Result<DynInstr, SnapError> {
    Ok(DynInstr {
        seq: r.u64()?,
        idx: get_idx(r, program)?,
        addr: InstrAddr::new(r.u64()?),
        kind: get_kind(r)?,
        taken: get_opt_taken(r)?,
        mem_addr: r.opt_u64()?,
        fault: r.bool()?,
        next_addr: r.opt_u64()?.map(InstrAddr::new),
    })
}

pub(crate) fn put_wrong_instr(out: &mut Vec<u8>, w: &WrongPathInstr) {
    snap::put_u32(out, w.idx.raw());
    snap::put_u64(out, w.addr.raw());
    put_kind(out, w.kind);
    snap::put_opt_u64(out, w.mem_addr);
}

pub(crate) fn get_wrong_instr(
    r: &mut SnapReader<'_>,
    program: &Program,
) -> Result<WrongPathInstr, SnapError> {
    Ok(WrongPathInstr {
        idx: get_idx(r, program)?,
        addr: InstrAddr::new(r.u64()?),
        kind: get_kind(r)?,
        mem_addr: r.opt_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regs_roundtrip() {
        for reg in [
            None,
            Some(Reg::int(0)),
            Some(Reg::int(31)),
            Some(Reg::fp(7)),
        ] {
            let mut buf = Vec::new();
            put_opt_reg(&mut buf, reg);
            assert_eq!(get_opt_reg(&mut SnapReader::new(&buf)).unwrap(), reg);
        }
        assert!(get_opt_reg(&mut SnapReader::new(&[1, 32])).is_err());
        assert!(get_opt_reg(&mut SnapReader::new(&[3, 0])).is_err());
    }
}
