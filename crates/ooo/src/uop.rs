//! In-flight micro-op records and the slab that stores them.

use crate::snapshot::{get_idx, get_kind, get_opt_reg, put_kind, put_opt_reg};
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{FuClass, InstrAddr, InstrIdx, InstrKind, Program, Reg};

/// Sentinel trace position for wrong-path uops.
pub(crate) const WRONG_PATH_POS: u64 = u64::MAX;

/// The issue-queue class of `kind`, or `None` for uops that skip the issue
/// queues (nop, fence, halt execute in place).
pub(crate) fn iq_class_of(kind: InstrKind) -> Option<FuClass> {
    match kind {
        InstrKind::Nop | InstrKind::Fence | InstrKind::Halt => None,
        k => Some(k.fu_class()),
    }
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub(crate) struct Uop {
    /// Unique id, never reused within a run (guards stale event references).
    pub uid: u64,
    /// Position in the correct-path trace ([`WRONG_PATH_POS`] if wrong-path).
    pub trace_pos: u64,
    /// ROB allocation index (bank = `alloc % commit_width`).
    pub alloc: u64,
    pub idx: InstrIdx,
    pub addr: InstrAddr,
    pub kind: InstrKind,
    pub wrong_path: bool,
    pub mem_addr: Option<u64>,
    /// This load execution page-faults.
    pub fault: bool,
    /// The front-end mispredicted this instruction; resolving it redirects.
    pub mispredicted: bool,
    /// Renaming: destination physical register and the previous mapping of
    /// the destination logical register.
    pub dst_reg: Option<Reg>,
    pub dst_preg: Option<u32>,
    pub prev_preg: Option<u32>,
    pub src_pregs: [Option<u32>; 2],
    /// Whether the uop has been issued to a functional unit.
    pub issued: bool,
    /// Cycle execution completes; `u64::MAX` until scheduled.
    pub executed_at: u64,
}

impl Uop {
    /// Whether execution has finished by the start of `cycle`.
    pub fn executed(&self, cycle: u64) -> bool {
        self.executed_at <= cycle
    }

    /// Whether this uop occupies a load/store-queue slot.
    pub fn uses_lsq(&self) -> bool {
        self.kind.is_mem()
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_u64(out, self.uid);
        snap::put_u64(out, self.trace_pos);
        snap::put_u64(out, self.alloc);
        snap::put_u32(out, self.idx.raw());
        snap::put_u64(out, self.addr.raw());
        put_kind(out, self.kind);
        snap::put_bool(out, self.wrong_path);
        snap::put_opt_u64(out, self.mem_addr);
        snap::put_bool(out, self.fault);
        snap::put_bool(out, self.mispredicted);
        put_opt_reg(out, self.dst_reg);
        snap::put_opt_u32(out, self.dst_preg);
        snap::put_opt_u32(out, self.prev_preg);
        snap::put_opt_u32(out, self.src_pregs[0]);
        snap::put_opt_u32(out, self.src_pregs[1]);
        snap::put_bool(out, self.issued);
        snap::put_u64(out, self.executed_at);
    }

    fn restore(r: &mut SnapReader<'_>, program: &Program) -> Result<Self, SnapError> {
        Ok(Uop {
            uid: r.u64()?,
            trace_pos: r.u64()?,
            alloc: r.u64()?,
            idx: get_idx(r, program)?,
            addr: InstrAddr::new(r.u64()?),
            kind: get_kind(r)?,
            wrong_path: r.bool()?,
            mem_addr: r.opt_u64()?,
            fault: r.bool()?,
            mispredicted: r.bool()?,
            dst_reg: get_opt_reg(r)?,
            dst_preg: r.opt_u32()?,
            prev_preg: r.opt_u32()?,
            src_pregs: [r.opt_u32()?, r.opt_u32()?],
            issued: r.bool()?,
            executed_at: r.u64()?,
        })
    }
}

/// Slab of in-flight uops with index reuse.
#[derive(Debug, Default)]
pub(crate) struct UopSlab {
    slots: Vec<Option<Uop>>,
    free: Vec<usize>,
    next_uid: u64,
}

impl UopSlab {
    pub fn insert(&mut self, mut uop: Uop) -> usize {
        uop.uid = self.next_uid;
        self.next_uid += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot] = Some(uop);
            slot
        } else {
            self.slots.push(Some(uop));
            self.slots.len() - 1
        }
    }

    pub fn remove(&mut self, slot: usize) -> Uop {
        let uop = self.slots[slot].take().expect("removing a live uop");
        self.free.push(slot);
        uop
    }

    pub fn get(&self, slot: usize) -> &Uop {
        self.slots[slot].as_ref().expect("live uop")
    }

    pub fn get_mut(&mut self, slot: usize) -> &mut Uop {
        self.slots[slot].as_mut().expect("live uop")
    }

    /// The uop in `slot` if it is still the one with `uid`.
    pub fn get_if_uid(&self, slot: usize, uid: u64) -> Option<&Uop> {
        self.slots.get(slot)?.as_ref().filter(|u| u.uid == uid)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Serializes every slot (live or free), the free list, and the uid
    /// counter, preserving slot indices exactly — the ROB, issue queues, and
    /// resolve events all refer to uops by slot.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_len(out, self.slots.len());
        for slot in &self.slots {
            match slot {
                None => snap::put_u8(out, 0),
                Some(uop) => {
                    snap::put_u8(out, 1);
                    uop.snapshot_into(out);
                }
            }
        }
        snap::put_len(out, self.free.len());
        for &f in &self.free {
            snap::put_u32(out, f as u32);
        }
        snap::put_u64(out, self.next_uid);
    }

    /// Restores a slab captured by [`UopSlab::snapshot_into`].
    pub fn restore(r: &mut SnapReader<'_>, program: &Program) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(match r.u8()? {
                0 => None,
                1 => Some(Uop::restore(r, program)?),
                _ => return Err(SnapError::Malformed("uop slot tag")),
            });
        }
        let n_free = r.len_of(4)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let f = r.u32()? as usize;
            if f >= slots.len() || slots[f].is_some() {
                return Err(SnapError::Malformed("free list names a live slot"));
            }
            free.push(f);
        }
        Ok(UopSlab {
            slots,
            free,
            next_uid: r.u64()?,
        })
    }

    /// Number of slots (live and free) in the slab.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Whether `slot` currently holds a live uop.
    pub fn is_live(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uop(kind: InstrKind) -> Uop {
        Uop {
            uid: 0,
            trace_pos: 0,
            alloc: 0,
            idx: InstrIdx::new(0),
            addr: InstrAddr::new(0x1000),
            kind,
            wrong_path: false,
            mem_addr: None,
            fault: false,
            mispredicted: false,
            dst_reg: None,
            dst_preg: None,
            prev_preg: None,
            src_pregs: [None, None],
            issued: false,
            executed_at: u64::MAX,
        }
    }

    #[test]
    fn slab_reuses_slots_with_fresh_uids() {
        let mut slab = UopSlab::default();
        let a = slab.insert(uop(InstrKind::IntAlu));
        let uid_a = slab.get(a).uid;
        slab.remove(a);
        let b = slab.insert(uop(InstrKind::Load));
        assert_eq!(a, b, "slot should be reused");
        assert_ne!(slab.get(b).uid, uid_a, "uid must be fresh");
        assert!(slab.get_if_uid(b, uid_a).is_none());
        assert!(slab.get_if_uid(b, slab.get(b).uid).is_some());
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn iq_classes() {
        assert_eq!(iq_class_of(InstrKind::Nop), None);
        assert_eq!(iq_class_of(InstrKind::Fence), None);
        assert_eq!(iq_class_of(InstrKind::Halt), None);
        assert_eq!(iq_class_of(InstrKind::Load), Some(FuClass::Mem));
        assert_eq!(iq_class_of(InstrKind::FpMul), Some(FuClass::Fp));
        assert_eq!(iq_class_of(InstrKind::CsrFlush), Some(FuClass::Int));
    }

    #[test]
    fn executed_threshold() {
        let mut u = uop(InstrKind::IntAlu);
        assert!(!u.executed(100));
        u.executed_at = 50;
        assert!(u.executed(50));
        assert!(!u.executed(49));
    }
}
