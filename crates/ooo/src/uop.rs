//! In-flight micro-op records and the slab that stores them.

use tip_isa::{FuClass, InstrAddr, InstrIdx, InstrKind, Reg};

/// Sentinel trace position for wrong-path uops.
pub(crate) const WRONG_PATH_POS: u64 = u64::MAX;

/// The issue-queue class of `kind`, or `None` for uops that skip the issue
/// queues (nop, fence, halt execute in place).
pub(crate) fn iq_class_of(kind: InstrKind) -> Option<FuClass> {
    match kind {
        InstrKind::Nop | InstrKind::Fence | InstrKind::Halt => None,
        k => Some(k.fu_class()),
    }
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub(crate) struct Uop {
    /// Unique id, never reused within a run (guards stale event references).
    pub uid: u64,
    /// Position in the correct-path trace ([`WRONG_PATH_POS`] if wrong-path).
    pub trace_pos: u64,
    /// ROB allocation index (bank = `alloc % commit_width`).
    pub alloc: u64,
    pub idx: InstrIdx,
    pub addr: InstrAddr,
    pub kind: InstrKind,
    pub wrong_path: bool,
    pub mem_addr: Option<u64>,
    /// This load execution page-faults.
    pub fault: bool,
    /// The front-end mispredicted this instruction; resolving it redirects.
    pub mispredicted: bool,
    /// Renaming: destination physical register and the previous mapping of
    /// the destination logical register.
    pub dst_reg: Option<Reg>,
    pub dst_preg: Option<u32>,
    pub prev_preg: Option<u32>,
    pub src_pregs: [Option<u32>; 2],
    /// Whether the uop has been issued to a functional unit.
    pub issued: bool,
    /// Cycle execution completes; `u64::MAX` until scheduled.
    pub executed_at: u64,
}

impl Uop {
    /// Whether execution has finished by the start of `cycle`.
    pub fn executed(&self, cycle: u64) -> bool {
        self.executed_at <= cycle
    }

    /// Whether this uop occupies a load/store-queue slot.
    pub fn uses_lsq(&self) -> bool {
        self.kind.is_mem()
    }
}

/// Slab of in-flight uops with index reuse.
#[derive(Debug, Default)]
pub(crate) struct UopSlab {
    slots: Vec<Option<Uop>>,
    free: Vec<usize>,
    next_uid: u64,
}

impl UopSlab {
    pub fn insert(&mut self, mut uop: Uop) -> usize {
        uop.uid = self.next_uid;
        self.next_uid += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot] = Some(uop);
            slot
        } else {
            self.slots.push(Some(uop));
            self.slots.len() - 1
        }
    }

    pub fn remove(&mut self, slot: usize) -> Uop {
        let uop = self.slots[slot].take().expect("removing a live uop");
        self.free.push(slot);
        uop
    }

    pub fn get(&self, slot: usize) -> &Uop {
        self.slots[slot].as_ref().expect("live uop")
    }

    pub fn get_mut(&mut self, slot: usize) -> &mut Uop {
        self.slots[slot].as_mut().expect("live uop")
    }

    /// The uop in `slot` if it is still the one with `uid`.
    pub fn get_if_uid(&self, slot: usize, uid: u64) -> Option<&Uop> {
        self.slots.get(slot)?.as_ref().filter(|u| u.uid == uid)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uop(kind: InstrKind) -> Uop {
        Uop {
            uid: 0,
            trace_pos: 0,
            alloc: 0,
            idx: InstrIdx::new(0),
            addr: InstrAddr::new(0x1000),
            kind,
            wrong_path: false,
            mem_addr: None,
            fault: false,
            mispredicted: false,
            dst_reg: None,
            dst_preg: None,
            prev_preg: None,
            src_pregs: [None, None],
            issued: false,
            executed_at: u64::MAX,
        }
    }

    #[test]
    fn slab_reuses_slots_with_fresh_uids() {
        let mut slab = UopSlab::default();
        let a = slab.insert(uop(InstrKind::IntAlu));
        let uid_a = slab.get(a).uid;
        slab.remove(a);
        let b = slab.insert(uop(InstrKind::Load));
        assert_eq!(a, b, "slot should be reused");
        assert_ne!(slab.get(b).uid, uid_a, "uid must be fresh");
        assert!(slab.get_if_uid(b, uid_a).is_none());
        assert!(slab.get_if_uid(b, slab.get(b).uid).is_some());
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn iq_classes() {
        assert_eq!(iq_class_of(InstrKind::Nop), None);
        assert_eq!(iq_class_of(InstrKind::Fence), None);
        assert_eq!(iq_class_of(InstrKind::Halt), None);
        assert_eq!(iq_class_of(InstrKind::Load), Some(FuClass::Mem));
        assert_eq!(iq_class_of(InstrKind::FpMul), Some(FuClass::Fp));
        assert_eq!(iq_class_of(InstrKind::CsrFlush), Some(FuClass::Int));
    }

    #[test]
    fn executed_threshold() {
        let mut u = uop(InstrKind::IntAlu);
        assert!(!u.executed(100));
        u.executed_at = 50;
        assert!(u.executed(50));
        assert!(!u.executed(49));
    }
}
