//! Structured simulation errors and the forward-progress watchdog report.
//!
//! A cycle-level model has two systemic failure modes that a panic hides
//! badly: a **livelock**, where the pipeline keeps cycling but never commits
//! (a lost redirect, a resolve event that never fires, a deadlocked resource),
//! and a **cycle-budget overrun**, where the run is making progress but too
//! slowly to finish. [`crate::Core::run_to_completion`] surfaces both as
//! [`SimError`] values instead of asserting, and the livelock case carries a
//! [`StuckDiag`] pipeline-state dump captured by the watchdog at the moment it
//! fired — enough to tell *which* structural invariant broke without re-running
//! under a debugger.

use std::fmt;

use serde::{Deserialize, Serialize};
use tip_isa::InstrKind;

/// Why the pipeline is failing to commit, as classified by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// The ROB head has not finished executing: its completion event never
    /// arrived (or lies unreachably far in the future).
    HeadNotExecuted,
    /// The ROB head finished executing but still is not committing — a
    /// commit-stage gate (store buffer, serialization point) never opens.
    HeadNotCommitting,
    /// The ROB is empty and the front-end is stalled indefinitely, waiting
    /// for a redirect that will never come.
    FrontEndStalled,
    /// The ROB is empty and the front-end claims to be fetching, yet no
    /// instruction reached dispatch for the whole watchdog window.
    FetchNotDelivering,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::HeadNotExecuted => "ROB head never finishes executing",
            StallReason::HeadNotCommitting => "executed ROB head never commits",
            StallReason::FrontEndStalled => "ROB empty and front-end stalled awaiting a redirect",
            StallReason::FetchNotDelivering => "ROB empty and fetch delivers no instructions",
        };
        f.write_str(s)
    }
}

/// The ROB-head entry at the moment the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckHead {
    /// Instruction kind of the head uop.
    pub kind: InstrKind,
    /// Position in the correct-path trace (`u64::MAX` for wrong-path uops).
    pub trace_pos: u64,
    /// Whether the head uop is on the wrong path.
    pub wrong_path: bool,
    /// Whether the head uop has been issued to a functional unit.
    pub issued: bool,
    /// Whether execution had completed by the capture cycle.
    pub executed: bool,
}

/// Pipeline-state dump captured by the forward-progress watchdog.
///
/// Attached to [`crate::RunExit::Stuck`] and [`SimError::Livelock`]. All
/// fields describe the state at `cycle`, the cycle the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckDiag {
    /// Cycle at which the watchdog declared livelock.
    pub cycle: u64,
    /// Last cycle on which any instruction committed (`0` if none ever did).
    pub last_commit_cycle: u64,
    /// Total instructions committed before progress stopped.
    pub committed: u64,
    /// Occupied ROB entries.
    pub rob_len: u32,
    /// The ROB-head uop, if the ROB is non-empty.
    pub head: Option<StuckHead>,
    /// Front-end fetch position in the correct-path trace.
    pub fetch_pos: u64,
    /// Whether the front-end is stalled with no scheduled restart
    /// (awaiting a redirect).
    pub fetch_stalled_forever: bool,
    /// Occupied fetch-buffer entries.
    pub fetch_buffer_len: u32,
    /// In-flight unresolved branches.
    pub branches_inflight: u32,
    /// Occupied load/store-queue slots.
    pub lsq_used: u32,
    /// The watchdog's classification of the stall.
    pub reason: StallReason,
}

impl StuckDiag {
    /// Cycles elapsed since the last commit when the watchdog fired.
    #[must_use]
    pub fn cycles_since_commit(&self) -> u64 {
        self.cycle.saturating_sub(self.last_commit_cycle)
    }
}

impl fmt::Display for StuckDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no commit for {} cycles (cycle {}, {} committed): {}; \
             rob_len={} fetch_pos={} fetch_buffer={} branches={} lsq={}{}",
            self.cycles_since_commit(),
            self.cycle,
            self.committed,
            self.reason,
            self.rob_len,
            self.fetch_pos,
            self.fetch_buffer_len,
            self.branches_inflight,
            self.lsq_used,
            if self.fetch_stalled_forever {
                " (front-end parked)"
            } else {
                ""
            },
        )?;
        if let Some(head) = &self.head {
            write!(
                f,
                "; head: {} @trace_pos={}{}{}{}",
                head.kind,
                head.trace_pos,
                if head.wrong_path { " wrong-path" } else { "" },
                if head.issued {
                    " issued"
                } else {
                    " not-issued"
                },
                if head.executed {
                    " executed"
                } else {
                    " not-executed"
                },
            )?;
        }
        Ok(())
    }
}

/// A simulation that could not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// The forward-progress watchdog detected a commit livelock before the
    /// cycle budget ran out.
    Livelock(StuckDiag),
    /// The cycle budget was exhausted while the core was still making
    /// progress.
    CycleLimit {
        /// The budget that was exhausted.
        max_cycles: u64,
        /// Instructions committed within the budget.
        committed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock(diag) => write!(f, "pipeline livelock: {diag}"),
            SimError::CycleLimit {
                max_cycles,
                committed,
            } => write!(
                f,
                "cycle budget exhausted: {committed} instructions committed in {max_cycles} cycles"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> StuckDiag {
        StuckDiag {
            cycle: 100_500,
            last_commit_cycle: 500,
            committed: 1_234,
            rob_len: 17,
            head: Some(StuckHead {
                kind: InstrKind::Load,
                trace_pos: 1_234,
                wrong_path: false,
                issued: true,
                executed: false,
            }),
            fetch_pos: 2_000,
            fetch_stalled_forever: false,
            fetch_buffer_len: 3,
            branches_inflight: 2,
            lsq_used: 5,
            reason: StallReason::HeadNotExecuted,
        }
    }

    #[test]
    fn stuck_diag_display_names_the_cause() {
        let text = diag().to_string();
        assert!(text.contains("no commit for 100000 cycles"), "{text}");
        assert!(text.contains("never finishes executing"), "{text}");
        assert!(text.contains("trace_pos=1234"), "{text}");
        assert!(text.contains("not-executed"), "{text}");
    }

    #[test]
    fn sim_error_display_is_informative() {
        let livelock = SimError::Livelock(diag()).to_string();
        assert!(livelock.starts_with("pipeline livelock"), "{livelock}");
        let limit = SimError::CycleLimit {
            max_cycles: 1000,
            committed: 42,
        }
        .to_string();
        assert!(limit.contains("42 instructions"), "{limit}");
        assert!(limit.contains("1000 cycles"), "{limit}");
    }

    #[test]
    fn cycles_since_commit_saturates() {
        let mut d = diag();
        d.last_commit_cycle = d.cycle + 1;
        assert_eq!(d.cycles_since_commit(), 0);
    }
}
