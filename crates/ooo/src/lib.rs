//! Cycle-level 4-wide out-of-order core simulator for the TIP reproduction.
//!
//! This crate is the stand-in for the paper's BOOM-in-FireSim substrate. It
//! models the pipeline of Table 1 — 8-wide fetch with branch prediction and
//! I-cache/I-TLB access, 4-wide decode/rename/dispatch, a 128-entry ROB
//! banked by commit width, INT/MEM/FP issue queues, a load/store queue and
//! store buffer, execution-unit latencies, and 4-wide in-order commit — and
//! exposes exactly what the paper's profilers need: a per-cycle
//! [`CycleRecord`] describing the commit stage (per-bank head entries with
//! valid/commit/mispredict/flush/exception flags), plus the dispatch- and
//! fetch-boundary addresses used to model AMD-IBS-style and interrupt-based
//! profilers.
//!
//! Squash machinery covers all four of the paper's commit-stage states:
//! mispredicted branches and stale return-address-stack returns redirect at
//! execute (State 3, Flushed), CSR instructions flush at commit (the Imagick
//! case study), page-faulting loads raise exceptions at the ROB head, and
//! I-cache/I-TLB misses drain the ROB (State 4, Drained).
//!
//! See [`Core`] for an end-to-end example.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod core;
mod error;
mod predictor;
mod rename;
mod snapshot;
mod stats;
mod trace;
mod uop;

pub use crate::core::Core;
pub use config::{CoreConfig, IqConfig, MAX_COMMIT};
pub use error::{SimError, StallReason, StuckDiag, StuckHead};
pub use predictor::Predictor;
pub use stats::{CoreStats, RunExit, RunSummary};
pub use trace::{BankView, CommitView, CycleRecord, HeadView, TraceSink};
