//! The cycle-level out-of-order core.
//!
//! Execution is trace-driven: a functional [`Executor`] produces the
//! correct-path dynamic stream, the timing model fetches from it (or from a
//! [`WrongPath`] stream while running down a misprediction), and all
//! architectural events — stalls, flushes, drains, exceptions, commit ILP —
//! fall out of the pipeline model. Each cycle emits one
//! [`CycleRecord`](crate::CycleRecord) to the attached
//! [`TraceSink`](crate::TraceSink).
//!
//! Pipeline order within a cycle: resolve mispredicted branches → commit →
//! issue → dispatch → fetch → emit the record. This gives the standard
//! one-cycle boundaries between stages (an instruction completing in cycle
//! *c* commits no earlier than *c*, a dispatched instruction issues no
//! earlier than the next cycle).

use crate::config::CoreConfig;
use crate::error::{SimError, StallReason, StuckDiag, StuckHead};
use crate::predictor::Predictor;
use crate::rename::Renamer;
use crate::snapshot::{
    get_dyn, get_idx, get_kind, get_wrong_instr, put_dyn, put_kind, put_wrong_instr,
};
use crate::stats::{CoreStats, RunExit, RunSummary};
use crate::trace::{BankView, CommitView, CycleRecord, HeadView, TraceSink};
use crate::uop::{Uop, UopSlab, WRONG_PATH_POS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::{DynInstr, Executor, FuClass, InstrAddr, InstrIdx, InstrKind, Program, WrongPath};
use tip_mem::{MemStats, MemSystem};

/// Sliding window over the correct-path trace: the core fetches by absolute
/// position and may rewind to any position not yet retired by commit.
#[derive(Debug)]
struct TraceWindow<'p> {
    exec: Executor<'p>,
    buf: VecDeque<DynInstr>,
    base: u64,
    exhausted: bool,
}

impl<'p> TraceWindow<'p> {
    fn new(exec: Executor<'p>) -> Self {
        TraceWindow {
            exec,
            buf: VecDeque::new(),
            base: 0,
            exhausted: false,
        }
    }

    #[inline]
    fn get(&mut self, pos: u64) -> Option<&DynInstr> {
        assert!(
            pos >= self.base,
            "trace window underflow: {} < {}",
            pos,
            self.base
        );
        while !self.exhausted && self.base + self.buf.len() as u64 <= pos {
            match self.exec.next() {
                Some(d) => self.buf.push_back(d),
                None => self.exhausted = true,
            }
        }
        self.buf.get((pos - self.base) as usize)
    }

    /// Drops entries at positions strictly below `pos`.
    fn retire_before(&mut self, pos: u64) {
        while self.base < pos && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    fn snapshot_into(&self, out: &mut Vec<u8>) {
        self.exec.snapshot_into(out);
        snap::put_len(out, self.buf.len());
        for d in &self.buf {
            put_dyn(out, d);
        }
        snap::put_u64(out, self.base);
        snap::put_bool(out, self.exhausted);
    }

    fn restore(program: &'p Program, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let exec = Executor::restore(program, r)?;
        let n = r.len()?;
        let mut buf = VecDeque::with_capacity(n);
        for _ in 0..n {
            buf.push_back(get_dyn(r, program)?);
        }
        Ok(TraceWindow {
            exec,
            buf,
            base: r.u64()?,
            exhausted: r.bool()?,
        })
    }
}

/// An instruction sitting in the fetch buffer / front-end pipeline.
#[derive(Debug, Clone, Copy)]
struct FbEntry {
    idx: InstrIdx,
    addr: InstrAddr,
    kind: InstrKind,
    mem_addr: Option<u64>,
    fault: bool,
    wrong_path: bool,
    trace_pos: u64,
    mispredicted: bool,
    /// Cycle at which the entry reaches the dispatch boundary.
    ready_at: u64,
}

impl FbEntry {
    fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_u32(out, self.idx.raw());
        snap::put_u64(out, self.addr.raw());
        put_kind(out, self.kind);
        snap::put_opt_u64(out, self.mem_addr);
        snap::put_bool(out, self.fault);
        snap::put_bool(out, self.wrong_path);
        snap::put_u64(out, self.trace_pos);
        snap::put_bool(out, self.mispredicted);
        snap::put_u64(out, self.ready_at);
    }

    fn restore(r: &mut SnapReader<'_>, program: &Program) -> Result<Self, SnapError> {
        Ok(FbEntry {
            idx: get_idx(r, program)?,
            addr: InstrAddr::new(r.u64()?),
            kind: get_kind(r)?,
            mem_addr: r.opt_u64()?,
            fault: r.bool()?,
            wrong_path: r.bool()?,
            trace_pos: r.u64()?,
            mispredicted: r.bool()?,
            ready_at: r.u64()?,
        })
    }
}

enum FetchMode<'p> {
    Correct,
    Wrong {
        gen: WrongPath<'p>,
        peek: Option<tip_isa::WrongPathInstr>,
    },
}

/// The out-of-order core.
///
/// # Example
///
/// ```
/// use tip_isa::{ProgramBuilder, Instr, BranchBehavior};
/// use tip_ooo::{Core, CoreConfig};
///
/// # fn main() -> Result<(), tip_isa::BuildError> {
/// let mut b = ProgramBuilder::named("demo");
/// let main = b.function("main");
/// let body = b.block(main);
/// b.push(body, Instr::int_alu(None, [None, None]));
/// b.push(body, Instr::branch(body, BranchBehavior::Loop { taken_iters: 99 }));
/// let exit = b.block(main);
/// b.push(exit, Instr::halt());
/// let program = b.build()?;
///
/// let mut core = Core::new(&program, CoreConfig::default(), 1);
/// let summary = core.run(&mut (), 100_000);
/// assert_eq!(summary.instructions, 201);
/// # Ok(())
/// # }
/// ```
pub struct Core<'p> {
    program: &'p Program,
    config: CoreConfig,
    cycle: u64,
    mem: MemSystem,
    predictor: Predictor,

    // Front end.
    window: TraceWindow<'p>,
    fetch_pos: u64,
    fetch_mode: FetchMode<'p>,
    fetch_stall_until: u64,
    fetch_done: bool,
    cur_line: u64,
    cur_line_ready: u64,
    wrong_path_seed: u64,
    fetch_buffer: VecDeque<FbEntry>,

    // Back end.
    uops: UopSlab,
    rob: VecDeque<usize>,
    head_alloc: u64,
    renamer: Renamer,
    // Issue-queue entries are `(slot, uid, wakeup_bound)`. The bound is a
    // host-side scheduling accelerator: the earliest cycle the entry's
    // operands can all be ready (0 = not yet known). Once every source preg
    // has left the `u64::MAX` "unscheduled" state its `ready_at` is final
    // for the lifetime of the consumer (each preg is written exactly once
    // per allocation epoch, and a live entry's sources cannot be
    // reallocated under it), so `bound > t` proves the entry is not
    // issuable at `t` without touching the slab or renamer. Not part of
    // the architectural state: never serialized, rebuilt lazily after
    // restore.
    iq_int: Vec<(usize, u64, u64)>,
    iq_mem: Vec<(usize, u64, u64)>,
    iq_fp: Vec<(usize, u64, u64)>,
    div_busy: [u64; 2],
    lsq_used: u32,
    branches_inflight: u32,
    store_buffer: Vec<u64>,
    serialize: Option<u64>,
    resolve_events: BinaryHeap<Reverse<(u64, usize, u64)>>,

    halted: bool,
    stats: CoreStats,

    // Forward-progress watchdog, persisted across [`Core::run`] calls so a
    // checkpointed run observes the same commit gaps as an uninterrupted one.
    /// Commit count when the watchdog last observed forward progress.
    watchdog_committed: u64,
    /// Cycle at which the watchdog last observed forward progress.
    watchdog_commit_cycle: u64,
}

impl<'p> Core<'p> {
    /// Creates a core about to execute `program` from a cold state.
    ///
    /// `seed` drives all workload behaviours (branch outcomes, memory
    /// addresses); the same program, config and seed replay exactly.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid
    /// (see [`CoreConfig::validate`]).
    #[must_use]
    pub fn new(program: &'p Program, config: CoreConfig, seed: u64) -> Self {
        config.validate();
        let mem = MemSystem::new(&config.mem);
        let predictor = Predictor::new(program.len());
        let renamer = Renamer::new(config.int_phys_regs, config.fp_phys_regs);
        Core {
            program,
            cycle: 0,
            mem,
            predictor,
            window: TraceWindow::new(Executor::new(program, seed)),
            fetch_pos: 0,
            fetch_mode: FetchMode::Correct,
            fetch_stall_until: 0,
            fetch_done: false,
            cur_line: u64::MAX,
            cur_line_ready: 0,
            wrong_path_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
            fetch_buffer: VecDeque::with_capacity(config.fetch_buffer as usize),
            uops: UopSlab::default(),
            rob: VecDeque::with_capacity(config.rob_entries as usize),
            head_alloc: 0,
            renamer,
            iq_int: Vec::new(),
            iq_mem: Vec::new(),
            iq_fp: Vec::new(),
            div_busy: [0, 0],
            lsq_used: 0,
            branches_inflight: 0,
            store_buffer: Vec::with_capacity(config.store_buffer as usize),
            serialize: None,
            resolve_events: BinaryHeap::new(),
            halted: false,
            stats: CoreStats::default(),
            watchdog_committed: 0,
            watchdog_commit_cycle: 0,
            config,
        }
    }

    /// The configuration this core runs with.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Memory-hierarchy statistics accumulated so far.
    #[must_use]
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the run has finished (halt committed or program drained).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.halted
            || (self.window.exhausted
                && self.rob.is_empty()
                && self.fetch_buffer.is_empty()
                && matches!(self.fetch_mode, FetchMode::Correct)
                && self.fetch_really_done())
    }

    fn fetch_really_done(&self) -> bool {
        // The executor is exhausted and the fetch position is past the end.
        self.window.base + self.window.buf.len() as u64 <= self.fetch_pos
    }

    /// Runs until completion or `max_cycles`, streaming records into `sink`.
    ///
    /// A forward-progress watchdog (see [`CoreConfig::watchdog_cycles`])
    /// monitors the commit stage: if no instruction commits for the
    /// configured number of consecutive cycles, the run exits early with
    /// [`RunExit::Stuck`] carrying a pipeline-state dump, rather than
    /// spinning in a livelock until the cycle budget runs out.
    pub fn run(&mut self, sink: &mut impl TraceSink, max_cycles: u64) -> RunSummary {
        let watchdog = self.config.watchdog_cycles;
        // One record for the whole run; `step_with` resets it each cycle.
        let mut record = CycleRecord::empty(self.cycle);
        while !self.finished() && self.cycle < max_cycles {
            self.step_with(&mut record, sink);
            if self.stats.committed != self.watchdog_committed {
                self.watchdog_committed = self.stats.committed;
                self.watchdog_commit_cycle = self.cycle;
            } else if watchdog != 0 && self.cycle - self.watchdog_commit_cycle >= watchdog {
                if self.finished() {
                    break;
                }
                let diag = self.stuck_diag(self.watchdog_commit_cycle);
                return RunSummary {
                    cycles: self.cycle,
                    instructions: self.stats.committed,
                    exit: RunExit::Stuck(diag),
                };
            }
        }
        let exit = if self.halted {
            RunExit::Halted
        } else if self.finished() {
            RunExit::StreamEnd
        } else {
            RunExit::CycleLimit
        };
        RunSummary {
            cycles: self.cycle,
            instructions: self.stats.committed,
            exit,
        }
    }

    /// Like [`Core::run`], but abnormal exits become structured errors.
    ///
    /// Returns `Ok` only when the run completed (halt committed or dynamic
    /// stream drained); a watchdog-detected livelock becomes
    /// [`SimError::Livelock`] with the captured pipeline dump, and an
    /// exhausted budget becomes [`SimError::CycleLimit`].
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] if the forward-progress watchdog fired;
    /// [`SimError::CycleLimit`] if `max_cycles` elapsed first.
    pub fn run_to_completion(
        &mut self,
        sink: &mut impl TraceSink,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        let summary = self.run(sink, max_cycles);
        match summary.exit {
            RunExit::Halted | RunExit::StreamEnd => Ok(summary),
            RunExit::Stuck(diag) => Err(SimError::Livelock(diag)),
            RunExit::CycleLimit => Err(SimError::CycleLimit {
                max_cycles,
                committed: summary.instructions,
            }),
        }
    }

    /// Serializes the complete mid-flight state of the core: architectural
    /// position (executor, stack, behaviour RNGs), microarchitectural state
    /// (ROB and rename maps, issue queues, LSQ occupancy, store buffer,
    /// in-flight uops, fetch engine, predictor tables), the memory hierarchy,
    /// statistics, and watchdog progress.
    ///
    /// [`Core::restore`] with the same program and configuration continues
    /// the run bit-identically: every subsequent [`CycleRecord`] equals the
    /// one an uninterrupted run would have produced.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        snap::put_u64(&mut out, self.cycle);
        self.mem.snapshot_into(&mut out);
        self.predictor.snapshot_into(&mut out);
        self.window.snapshot_into(&mut out);
        snap::put_u64(&mut out, self.fetch_pos);
        match &self.fetch_mode {
            FetchMode::Correct => snap::put_u8(&mut out, 0),
            FetchMode::Wrong { gen, peek } => {
                snap::put_u8(&mut out, 1);
                gen.snapshot_into(&mut out);
                match peek {
                    None => snap::put_u8(&mut out, 0),
                    Some(w) => {
                        snap::put_u8(&mut out, 1);
                        put_wrong_instr(&mut out, w);
                    }
                }
            }
        }
        snap::put_u64(&mut out, self.fetch_stall_until);
        snap::put_bool(&mut out, self.fetch_done);
        snap::put_u64(&mut out, self.cur_line);
        snap::put_u64(&mut out, self.cur_line_ready);
        snap::put_u64(&mut out, self.wrong_path_seed);
        snap::put_len(&mut out, self.fetch_buffer.len());
        for fb in &self.fetch_buffer {
            fb.snapshot_into(&mut out);
        }
        self.uops.snapshot_into(&mut out);
        snap::put_len(&mut out, self.rob.len());
        for &slot in &self.rob {
            snap::put_u32(&mut out, slot as u32);
        }
        snap::put_u64(&mut out, self.head_alloc);
        self.renamer.snapshot_into(&mut out);
        for q in [&self.iq_int, &self.iq_mem, &self.iq_fp] {
            snap::put_len(&mut out, q.len());
            // The wakeup bound is a host-side cache — rebuilt after restore.
            for &(slot, uid, _) in q {
                snap::put_u32(&mut out, slot as u32);
                snap::put_u64(&mut out, uid);
            }
        }
        snap::put_u64(&mut out, self.div_busy[0]);
        snap::put_u64(&mut out, self.div_busy[1]);
        snap::put_u32(&mut out, self.lsq_used);
        snap::put_u32(&mut out, self.branches_inflight);
        snap::put_len(&mut out, self.store_buffer.len());
        for &done in &self.store_buffer {
            snap::put_u64(&mut out, done);
        }
        snap::put_opt_u64(&mut out, self.serialize);
        // BinaryHeap iteration order is unspecified; serialize sorted so the
        // same state always produces the same bytes. Sorting borrowed entries
        // keeps the heap intact (no deep clone); ascending `Reverse` order is
        // exactly what `clone().into_sorted_vec()` used to produce, so the
        // byte stream is unchanged.
        let mut events: Vec<&Reverse<(u64, usize, u64)>> = self.resolve_events.iter().collect();
        events.sort_unstable();
        snap::put_len(&mut out, events.len());
        for Reverse((when, slot, uid)) in events {
            snap::put_u64(&mut out, *when);
            snap::put_u32(&mut out, *slot as u32);
            snap::put_u64(&mut out, *uid);
        }
        snap::put_bool(&mut out, self.halted);
        for v in [
            self.stats.cycles,
            self.stats.committed,
            self.stats.fetched,
            self.stats.wrong_path_fetched,
            self.stats.mispredicts,
            self.stats.csr_flushes,
            self.stats.exceptions,
            self.stats.commit_cycles,
            self.stats.empty_rob_cycles,
            self.stats.icache_stall_cycles,
            self.stats.rob_full_cycles,
        ] {
            snap::put_u64(&mut out, v);
        }
        snap::put_u64(&mut out, self.watchdog_committed);
        snap::put_u64(&mut out, self.watchdog_commit_cycle);
        out
    }

    /// Restores a core captured by [`Core::snapshot`], re-attached to the
    /// same `program` and `config` the snapshot was taken under.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the bytes are truncated or malformed,
    /// refer to instruction indices outside `program`, or disagree with
    /// `config`'s structural shape (register files, cache geometry). Damaged
    /// checkpoints surface as errors — never as a panic or a silently wrong
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `config` itself is structurally invalid
    /// (see [`CoreConfig::validate`]).
    pub fn restore(
        program: &'p Program,
        config: CoreConfig,
        data: &[u8],
    ) -> Result<Self, SnapError> {
        config.validate();
        let r = &mut SnapReader::new(data);
        let cycle = r.u64()?;
        let mem = MemSystem::restore(&config.mem, r)?;
        let predictor = Predictor::restore(program.len(), r)?;
        let window = TraceWindow::restore(program, r)?;
        let fetch_pos = r.u64()?;
        let fetch_mode = match r.u8()? {
            0 => FetchMode::Correct,
            1 => {
                let gen = WrongPath::restore(program, r)?;
                let peek = match r.u8()? {
                    0 => None,
                    1 => Some(get_wrong_instr(r, program)?),
                    _ => return Err(SnapError::Malformed("wrong-path peek tag")),
                };
                FetchMode::Wrong { gen, peek }
            }
            _ => return Err(SnapError::Malformed("fetch mode tag")),
        };
        let fetch_stall_until = r.u64()?;
        let fetch_done = r.bool()?;
        let cur_line = r.u64()?;
        let cur_line_ready = r.u64()?;
        let wrong_path_seed = r.u64()?;
        let n_fb = r.len()?;
        let mut fetch_buffer = VecDeque::with_capacity(config.fetch_buffer as usize);
        for _ in 0..n_fb {
            fetch_buffer.push_back(FbEntry::restore(r, program)?);
        }
        let uops = UopSlab::restore(r, program)?;
        let n_rob = r.len_of(4)?;
        let mut rob = VecDeque::with_capacity(config.rob_entries as usize);
        for _ in 0..n_rob {
            let slot = r.u32()? as usize;
            if !uops.is_live(slot) {
                return Err(SnapError::Malformed("ROB names a dead uop slot"));
            }
            rob.push_back(slot);
        }
        let head_alloc = r.u64()?;
        let renamer = Renamer::restore(config.int_phys_regs, config.fp_phys_regs, r)?;
        let read_iq = |r: &mut SnapReader<'_>| -> Result<Vec<(usize, u64, u64)>, SnapError> {
            let n = r.len_of(12)?;
            let mut q = Vec::with_capacity(n);
            for _ in 0..n {
                let slot = r.u32()? as usize;
                if slot >= uops.num_slots() {
                    return Err(SnapError::Malformed("issue queue slot out of range"));
                }
                // Wakeup bound 0 = "unknown": recomputed on first issue scan.
                q.push((slot, r.u64()?, 0));
            }
            Ok(q)
        };
        let iq_int = read_iq(r)?;
        let iq_mem = read_iq(r)?;
        let iq_fp = read_iq(r)?;
        let div_busy = [r.u64()?, r.u64()?];
        let lsq_used = r.u32()?;
        let branches_inflight = r.u32()?;
        let n_sb = r.len_of(8)?;
        let mut store_buffer = Vec::with_capacity(config.store_buffer as usize);
        for _ in 0..n_sb {
            store_buffer.push(r.u64()?);
        }
        let serialize = r.opt_u64()?;
        let n_ev = r.len_of(20)?;
        let mut resolve_events = BinaryHeap::with_capacity(n_ev);
        for _ in 0..n_ev {
            let when = r.u64()?;
            let slot = r.u32()? as usize;
            if slot >= uops.num_slots() {
                return Err(SnapError::Malformed("resolve event slot out of range"));
            }
            resolve_events.push(Reverse((when, slot, r.u64()?)));
        }
        let halted = r.bool()?;
        let stats = CoreStats {
            cycles: r.u64()?,
            committed: r.u64()?,
            fetched: r.u64()?,
            wrong_path_fetched: r.u64()?,
            mispredicts: r.u64()?,
            csr_flushes: r.u64()?,
            exceptions: r.u64()?,
            commit_cycles: r.u64()?,
            empty_rob_cycles: r.u64()?,
            icache_stall_cycles: r.u64()?,
            rob_full_cycles: r.u64()?,
        };
        let watchdog_committed = r.u64()?;
        let watchdog_commit_cycle = r.u64()?;
        if !r.is_empty() {
            return Err(SnapError::Malformed("trailing bytes after core state"));
        }
        Ok(Core {
            program,
            cycle,
            mem,
            predictor,
            window,
            fetch_pos,
            fetch_mode,
            fetch_stall_until,
            fetch_done,
            cur_line,
            cur_line_ready,
            wrong_path_seed,
            fetch_buffer,
            uops,
            rob,
            head_alloc,
            renamer,
            iq_int,
            iq_mem,
            iq_fp,
            div_busy,
            lsq_used,
            branches_inflight,
            store_buffer,
            serialize,
            resolve_events,
            halted,
            stats,
            watchdog_committed,
            watchdog_commit_cycle,
            config,
        })
    }

    /// Captures the pipeline-state dump for a watchdog-detected livelock.
    fn stuck_diag(&self, last_commit_cycle: u64) -> StuckDiag {
        let t = self.cycle;
        let head = self.rob.front().map(|&slot| {
            let uop = self.uops.get(slot);
            StuckHead {
                kind: uop.kind,
                trace_pos: uop.trace_pos,
                wrong_path: uop.wrong_path,
                issued: uop.issued,
                executed: uop.executed(t),
            }
        });
        let reason = match &head {
            Some(h) if !h.executed => StallReason::HeadNotExecuted,
            Some(_) => StallReason::HeadNotCommitting,
            None if self.fetch_stall_until == u64::MAX => StallReason::FrontEndStalled,
            None => StallReason::FetchNotDelivering,
        };
        StuckDiag {
            cycle: t,
            last_commit_cycle,
            committed: self.stats.committed,
            rob_len: self.rob.len() as u32,
            head,
            fetch_pos: self.fetch_pos,
            fetch_stalled_forever: self.fetch_stall_until == u64::MAX,
            fetch_buffer_len: self.fetch_buffer.len() as u32,
            branches_inflight: self.branches_inflight,
            lsq_used: self.lsq_used,
            reason,
        }
    }

    /// Simulates one cycle, emitting one record into `sink`.
    pub fn step(&mut self, sink: &mut impl TraceSink) {
        let mut record = CycleRecord::empty(self.cycle);
        self.step_with(&mut record, sink);
    }

    /// The single-cycle body, writing into a caller-owned record.
    ///
    /// [`Core::run`] keeps one record alive for the whole run and resets it
    /// here each cycle; sinks only ever see `&CycleRecord`, so the reuse is
    /// invisible to them (equality deliberately ignores the stale tail of
    /// the commit array — see [`CycleRecord::reset`]).
    fn step_with(&mut self, record: &mut CycleRecord, sink: &mut impl TraceSink) {
        let t = self.cycle;
        record.reset(t);

        self.process_resolves(t);
        let pre_commit_head_alloc = self.head_alloc;
        self.commit(t, record);
        self.issue(t);
        self.dispatch(t);
        self.fetch(t);
        self.finalize_record(t, pre_commit_head_alloc, record);

        self.stats.cycles += 1;
        if record.is_committing() {
            self.stats.commit_cycles += 1;
        } else if record.rob_empty() {
            self.stats.empty_rob_cycles += 1;
        }

        sink.on_cycle(record);
        self.cycle = t + 1;
    }

    // ----- resolve ---------------------------------------------------------

    #[inline]
    fn process_resolves(&mut self, t: u64) {
        while let Some(&Reverse((when, slot, uid))) = self.resolve_events.peek() {
            if when > t {
                break;
            }
            self.resolve_events.pop();
            let Some(uop) = self.uops.get_if_uid(slot, uid) else {
                continue;
            };
            if !uop.mispredicted || uop.wrong_path {
                continue;
            }
            let resume = uop.trace_pos + 1;
            self.stats.mispredicts += 1;
            // Squash everything younger than the branch.
            let pos = self
                .rob
                .iter()
                .position(|&s| s == slot)
                .expect("resolving branch still in ROB");
            self.squash_from(pos + 1);
            self.redirect(resume, t + u64::from(self.config.redirect_penalty));
        }
    }

    // ----- commit ----------------------------------------------------------

    fn commit(&mut self, t: u64, record: &mut CycleRecord) {
        self.store_buffer.retain(|&done| done > t);

        let width = self.config.commit_width as usize;
        let mut n = 0usize;
        while n < width {
            let Some(&front) = self.rob.front() else {
                break;
            };
            // One slab access for all three head checks.
            let (executed, fault, is_store) = {
                let uop = self.uops.get(front);
                (uop.executed(t), uop.fault, uop.kind == InstrKind::Store)
            };
            if !executed {
                break;
            }
            if fault {
                if n > 0 {
                    break; // the exception fires alone, next cycle
                }
                self.take_exception(t, front, record);
                break;
            }
            if is_store && self.store_buffer.len() >= self.config.store_buffer as usize {
                break; // store stall at the head of the ROB
            }

            // Commit it.
            self.rob.pop_front();
            self.head_alloc += 1;
            let uop = self.uops.remove(front);
            debug_assert!(!uop.wrong_path, "wrong-path uops never commit");
            if let Some(prev) = uop.prev_preg {
                self.renamer.release_preg(prev);
            }
            if uop.uses_lsq() {
                self.lsq_used -= 1;
            }
            if uop.kind == InstrKind::Branch || uop.kind == InstrKind::Ret {
                self.branches_inflight = self.branches_inflight.saturating_sub(1);
            }
            if uop.kind == InstrKind::Store {
                let access = self.mem.access_data(uop.mem_addr.unwrap_or(0), t, true);
                self.store_buffer.push(access.ready);
            }
            if self.serialize == Some(uop.uid) {
                self.serialize = None;
            }
            self.stats.committed += 1;
            self.window.retire_before(uop.trace_pos);

            record.committed[n] = CommitView {
                addr: uop.addr,
                idx: uop.idx,
                kind: uop.kind,
                mispredicted: uop.mispredicted,
                flush: uop.kind == InstrKind::CsrFlush,
            };
            n += 1;

            match uop.kind {
                InstrKind::Halt => {
                    self.halted = true;
                    break;
                }
                InstrKind::CsrFlush => {
                    // Flush-on-commit: squash everything younger and refetch
                    // from the next correct-path instruction.
                    self.stats.csr_flushes += 1;
                    self.squash_from(0);
                    self.redirect(
                        uop.trace_pos + 1,
                        t + u64::from(self.config.redirect_penalty),
                    );
                    break;
                }
                _ => {}
            }
        }
        record.n_committed = n as u8;
    }

    fn take_exception(&mut self, t: u64, front_slot: usize, record: &mut CycleRecord) {
        let (addr, idx, trace_pos) = {
            let uop = self.uops.get(front_slot);
            (uop.addr, uop.idx, uop.trace_pos)
        };
        record.exception = Some((addr, idx));
        let resume = trace_pos + 1;
        self.stats.exceptions += 1;
        // The excepting instruction is squashed too; it re-executes after the
        // handler (the functional trace already contains the re-execution).
        self.squash_from(0);
        self.redirect(resume, t + u64::from(self.config.redirect_penalty));
    }

    // ----- issue -----------------------------------------------------------

    fn issue(&mut self, t: u64) {
        self.issue_class(t, FuClass::Int);
        self.issue_class(t, FuClass::Mem);
        self.issue_class(t, FuClass::Fp);
    }

    fn issue_class(&mut self, t: u64, class: FuClass) {
        let width = match class {
            FuClass::Int => self.config.int_iq.width,
            FuClass::Mem => self.config.mem_iq.width,
            FuClass::Fp => self.config.fp_iq.width,
        } as usize;

        // The queue is moved out (a pointer swap, not a copy) so `self` stays
        // borrowable, then compacted *in place*: survivors are written back
        // through `kept` and the tail truncated. The old rebuild-into-a-fresh
        // `Vec` allocated three times per cycle on the hot path.
        let mut queue = match class {
            FuClass::Int => std::mem::take(&mut self.iq_int),
            FuClass::Mem => std::mem::take(&mut self.iq_mem),
            FuClass::Fp => std::mem::take(&mut self.iq_fp),
        };

        let mut kept = 0usize;
        let mut issued = 0usize;
        for i in 0..queue.len() {
            if issued >= width {
                // Issue bandwidth is exhausted: every remaining entry is a
                // survivor, so move the whole tail at once. Skipping the
                // per-entry squash check is sound because `squash_from`
                // purges the issue queues eagerly (squashes happen in
                // resolve/commit, both earlier in the cycle than issue), so
                // no stale entry can be present here.
                let len = queue.len();
                queue.copy_within(i..len, kept);
                kept += len - i;
                break;
            }
            let (slot, uid, bound) = queue[i];
            // Cached wakeup bound: a waiting entry whose operands cannot be
            // ready before `bound` skips the slab and renamer entirely.
            if bound > t {
                queue[kept] = (slot, uid, bound);
                kept += 1;
                continue;
            }
            // One slab access covers the squash check, the operand-ready
            // scan, and the kind read (uops and renamer are disjoint
            // fields, so the borrows do not conflict).
            let Some(uop) = self.uops.get_if_uid(slot, uid) else {
                continue; // squashed
            };
            let kind = uop.kind;
            // Single pass over the sources: readiness now, plus the cached
            // bound for later cycles (0 while any producer is unscheduled —
            // its `ready_at` is still `u64::MAX`, so no finite bound exists
            // yet and the entry must be rechecked every cycle).
            let mut ready = true;
            let mut new_bound = 0u64;
            for &p in uop.src_pregs.iter().flatten() {
                let r = self.renamer.ready_at(p);
                if r > t {
                    ready = false;
                }
                if r == u64::MAX {
                    new_bound = 0;
                    break;
                }
                new_bound = new_bound.max(r);
            }
            if !ready {
                queue[kept] = (slot, uid, new_bound);
                kept += 1;
                continue;
            }
            // Unpipelined units (dividers) serialize.
            if !kind.pipelined() {
                let div = match class {
                    FuClass::Int => &mut self.div_busy[0],
                    FuClass::Fp => &mut self.div_busy[1],
                    FuClass::Mem => unreachable!("no unpipelined mem ops"),
                };
                if *div > t {
                    // The divider stays busy until at least `*div` (the
                    // busy-until mark only ever moves later), so it doubles
                    // as this entry's wakeup bound.
                    queue[kept] = (slot, uid, *div);
                    kept += 1;
                    continue;
                }
                *div = t + u64::from(kind.exec_latency());
            }

            let completion = self.execute_uop(t, slot);
            let uop = self.uops.get_mut(slot);
            uop.issued = true;
            uop.executed_at = completion;
            let (dst, mispredicted, wrong_path, uid2) =
                (uop.dst_preg, uop.mispredicted, uop.wrong_path, uop.uid);
            if let Some(dst) = dst {
                self.renamer.set_ready_at(dst, completion);
            }
            if mispredicted && !wrong_path {
                self.resolve_events.push(Reverse((completion, slot, uid2)));
            }
            issued += 1;
        }
        queue.truncate(kept);

        match class {
            FuClass::Int => self.iq_int = queue,
            FuClass::Mem => self.iq_mem = queue,
            FuClass::Fp => self.iq_fp = queue,
        }
    }

    /// Computes the completion cycle of `slot` issued at `t`.
    #[inline]
    fn execute_uop(&mut self, t: u64, slot: usize) -> u64 {
        let (kind, mem_addr, fault) = {
            let u = self.uops.get(slot);
            (u.kind, u.mem_addr, u.fault)
        };
        match kind {
            InstrKind::Load => {
                if fault {
                    // TLB miss -> page-table walk concludes the page is not
                    // resident; the exception bit is then set.
                    t + 1 + self.config.mem.ptw_latency
                } else {
                    self.mem
                        .access_data(mem_addr.unwrap_or(0), t + 1, false)
                        .ready
                }
            }
            // Stores only generate their address before commit.
            InstrKind::Store => t + 1,
            k => t + u64::from(k.exec_latency()),
        }
    }

    // ----- dispatch --------------------------------------------------------

    fn dispatch(&mut self, t: u64) {
        let width = self.config.decode_width as usize;
        for _ in 0..width {
            if self.serialize.is_some() {
                break; // a fence is in flight
            }
            let Some(&fb) = self.fetch_buffer.front() else {
                break;
            };
            if fb.ready_at > t {
                break;
            }
            if self.rob.len() >= self.config.rob_entries as usize {
                self.stats.rob_full_cycles += 1;
                break;
            }
            match fb.kind {
                InstrKind::Fence
                    // Serialized: wait for the ROB to drain and all
                    // committed stores to reach the memory system.
                    if (!self.rob.is_empty() || !self.store_buffer.is_empty()) => {
                        break;
                    }
                InstrKind::Load | InstrKind::Store
                    if self.lsq_used >= self.config.lsq_entries => {
                        break;
                    }
                InstrKind::Branch | InstrKind::Ret
                    if self.branches_inflight >= self.config.max_branches => {
                        break;
                    }
                _ => {}
            }

            // Issue-queue space.
            let static_instr = self.program.instr(fb.idx);
            let iq_class = crate::uop::iq_class_of(fb.kind);
            if let Some(class) = iq_class {
                let (len, cap) = match class {
                    FuClass::Int => (self.iq_int.len(), self.config.int_iq.entries),
                    FuClass::Mem => (self.iq_mem.len(), self.config.mem_iq.entries),
                    FuClass::Fp => (self.iq_fp.len(), self.config.fp_iq.entries),
                };
                if len >= cap as usize {
                    break;
                }
            }

            // Physical-register availability.
            let dst_reg = static_instr.dst();
            if let Some(dst) = dst_reg {
                if !self.renamer.can_allocate(dst.class()) {
                    break;
                }
            }

            // All resources available: dispatch.
            self.fetch_buffer.pop_front();
            let src_pregs = {
                let srcs = static_instr.srcs();
                [
                    srcs[0].map(|r| self.renamer.lookup(r)),
                    srcs[1].map(|r| self.renamer.lookup(r)),
                ]
            };
            let (dst_preg, prev_preg) = match dst_reg {
                Some(reg) => {
                    let (p, prev) = self.renamer.allocate(reg);
                    (Some(p), Some(prev))
                }
                None => (None, None),
            };

            let alloc = self.head_alloc + self.rob.len() as u64;
            let executed_at = match fb.kind {
                // These execute in place, one cycle after dispatch.
                InstrKind::Nop | InstrKind::Fence | InstrKind::Halt => t + 1,
                _ => u64::MAX,
            };
            let uop = Uop {
                uid: 0, // assigned by the slab
                trace_pos: fb.trace_pos,
                alloc,
                idx: fb.idx,
                addr: fb.addr,
                kind: fb.kind,
                wrong_path: fb.wrong_path,
                mem_addr: fb.mem_addr,
                fault: fb.fault,
                mispredicted: fb.mispredicted,
                dst_reg,
                dst_preg,
                prev_preg,
                src_pregs,
                issued: false,
                executed_at,
            };
            let slot = self.uops.insert(uop);
            let uid = self.uops.get(slot).uid;
            self.rob.push_back(slot);

            if let Some(class) = iq_class {
                // Seed the cached wakeup bound (see the issue-queue field
                // comment): the max of the sources' scheduled ready times,
                // or 0 while any producer is still unscheduled.
                let mut wakeup_bound = 0u64;
                for &p in src_pregs.iter().flatten() {
                    let r = self.renamer.ready_at(p);
                    if r == u64::MAX {
                        wakeup_bound = 0;
                        break;
                    }
                    wakeup_bound = wakeup_bound.max(r);
                }
                match class {
                    FuClass::Int => self.iq_int.push((slot, uid, wakeup_bound)),
                    FuClass::Mem => self.iq_mem.push((slot, uid, wakeup_bound)),
                    FuClass::Fp => self.iq_fp.push((slot, uid, wakeup_bound)),
                }
            }
            if fb.kind.is_mem() {
                self.lsq_used += 1;
            }
            if fb.kind == InstrKind::Branch || fb.kind == InstrKind::Ret {
                self.branches_inflight += 1;
            }
            if fb.kind == InstrKind::Fence {
                self.serialize = Some(uid);
            }
            if let Some(dst) = dst_preg {
                // Nop-likes produce no value but may name a dst; ready when
                // they "execute".
                if executed_at != u64::MAX {
                    self.renamer.set_ready_at(dst, executed_at);
                }
            }
        }
    }

    // ----- fetch -----------------------------------------------------------

    fn fetch(&mut self, t: u64) {
        if t < self.fetch_stall_until || self.fetch_done {
            return;
        }
        let width = self.config.fetch_width as usize;
        let cap = self.config.fetch_buffer as usize;
        let ready_at = t + u64::from(self.config.front_end_delay);

        for _ in 0..width {
            if self.fetch_buffer.len() >= cap || t < self.fetch_stall_until {
                break;
            }
            let stop = if matches!(self.fetch_mode, FetchMode::Correct) {
                self.fetch_one_correct(t, ready_at)
            } else {
                self.fetch_one_wrong(t, ready_at)
            };
            if stop {
                break;
            }
        }
    }

    /// Fetches one correct-path instruction; returns whether the fetch group
    /// must stop.
    fn fetch_one_correct(&mut self, t: u64, ready_at: u64) -> bool {
        let Some(d) = self.window.get(self.fetch_pos).copied() else {
            return true; // program stream exhausted
        };
        if !self.line_ready(d.addr, t) {
            return true;
        }
        self.fetch_pos += 1;
        self.stats.fetched += 1;
        let mut entry = FbEntry {
            idx: d.idx,
            addr: d.addr,
            kind: d.kind,
            mem_addr: d.mem_addr,
            fault: d.fault,
            wrong_path: false,
            trace_pos: d.seq,
            mispredicted: false,
            ready_at,
        };
        let mut stop_group = false;
        match d.kind {
            InstrKind::Branch => {
                let actual = d.taken.unwrap_or(false);
                let predicted = self.predictor.predict_and_train(d.idx.index(), actual);
                if predicted != actual {
                    entry.mispredicted = true;
                    // The front-end runs down the predicted (wrong) path
                    // until the branch resolves at execute.
                    let wrong_start = if actual {
                        // Predicted not-taken: falls through.
                        InstrIdx::new(d.idx.raw() + 1)
                    } else {
                        // Predicted taken: runs down the taken target.
                        let target = self
                            .program
                            .instr(d.idx)
                            .taken_target()
                            .expect("branch has target");
                        self.program.block(target).first_instr()
                    };
                    self.enter_wrong_path(wrong_start);
                    stop_group = true;
                }
                if predicted {
                    self.fetch_stall_until = t + 1 + u64::from(self.config.taken_bubble);
                    stop_group = true;
                }
            }
            InstrKind::Jump => {
                self.fetch_stall_until = t + 1 + u64::from(self.config.taken_bubble);
                stop_group = true;
            }
            InstrKind::Call => {
                let resume = self.program.call_resume_addr(d.idx);
                self.predictor.push_return(resume);
                self.fetch_stall_until = t + 1 + u64::from(self.config.taken_bubble);
                stop_group = true;
            }
            InstrKind::Ret => {
                let predicted = self.predictor.pop_return();
                if predicted != d.next_addr {
                    entry.mispredicted = true;
                    self.predictor.record_ras_mispredict();
                    match predicted.and_then(|a| self.program.idx_of_addr(a)) {
                        Some(idx) => self.enter_wrong_path(idx),
                        None => self.stall_until_redirect(),
                    }
                }
                self.fetch_stall_until = t + 1 + u64::from(self.config.taken_bubble);
                stop_group = true;
            }
            InstrKind::Halt => {
                self.fetch_done = true;
                stop_group = true;
            }
            InstrKind::Load if d.fault => {
                // The front-end does not know the load will fault: it keeps
                // fetching the architectural successor, which the exception
                // later squashes. The correct-path trace continues at the
                // handler.
                self.enter_wrong_path(InstrIdx::new(d.idx.raw() + 1));
                stop_group = true;
            }
            _ => {}
        }
        self.fetch_buffer.push_back(entry);
        stop_group
    }

    /// Fetches one wrong-path instruction; returns whether the fetch group
    /// must stop.
    fn fetch_one_wrong(&mut self, t: u64, ready_at: u64) -> bool {
        // Temporarily take the generator to sidestep aliasing with the
        // memory system; it is restored before returning.
        let FetchMode::Wrong { mut gen, mut peek } =
            std::mem::replace(&mut self.fetch_mode, FetchMode::Correct)
        else {
            unreachable!("fetch_one_wrong called in correct mode");
        };
        if peek.is_none() {
            peek = gen.next();
        }
        let Some(w) = peek else {
            // Wrong path ran off the program: wait for the redirect.
            self.fetch_mode = FetchMode::Wrong { gen, peek };
            self.stall_until_redirect();
            return true;
        };
        if !self.line_ready(w.addr, t) {
            self.fetch_mode = FetchMode::Wrong { gen, peek };
            return true;
        }
        self.fetch_mode = FetchMode::Wrong { gen, peek: None };
        self.stats.wrong_path_fetched += 1;
        self.fetch_buffer.push_back(FbEntry {
            idx: w.idx,
            addr: w.addr,
            kind: w.kind,
            mem_addr: w.mem_addr,
            fault: false,
            wrong_path: true,
            trace_pos: WRONG_PATH_POS,
            mispredicted: false,
            ready_at,
        });
        match w.kind {
            InstrKind::Jump | InstrKind::Call | InstrKind::Ret => {
                self.fetch_stall_until = t + 1 + u64::from(self.config.taken_bubble);
                true
            }
            InstrKind::Halt => {
                self.stall_until_redirect();
                true
            }
            _ => false,
        }
    }

    /// Checks (and if needed requests) the I-cache line holding `addr`.
    /// Returns whether fetch can proceed this cycle.
    fn line_ready(&mut self, addr: InstrAddr, t: u64) -> bool {
        let line = addr.raw() / tip_mem::LINE_BYTES;
        if line != self.cur_line {
            self.cur_line = line;
            self.cur_line_ready = self.mem.access_inst(addr.raw(), t);
        }
        if self.cur_line_ready > t {
            self.stats.icache_stall_cycles += self.cur_line_ready - t;
            self.fetch_stall_until = self.fetch_stall_until.max(self.cur_line_ready);
            return false;
        }
        true
    }

    fn enter_wrong_path(&mut self, start: InstrIdx) {
        if !self.config.model_wrong_path {
            self.stall_until_redirect();
            return;
        }
        if start.index() >= self.program.len() {
            self.stall_until_redirect();
            return;
        }
        self.wrong_path_seed = self
            .wrong_path_seed
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(1);
        self.fetch_mode = FetchMode::Wrong {
            gen: WrongPath::new(self.program, start, self.wrong_path_seed),
            peek: None,
        };
    }

    fn stall_until_redirect(&mut self) {
        self.fetch_stall_until = u64::MAX;
    }

    /// Fault injection: squashes everything in flight and parks the
    /// front-end as if waiting for a redirect that never arrives.
    ///
    /// This wedges the core into a commit livelock on purpose — no
    /// instruction will ever commit again — so the chaos harness and tests
    /// can exercise the forward-progress watchdog on a crafted failure
    /// instead of hoping for a real model bug.
    pub fn inject_lost_redirect(&mut self) {
        self.squash_from(0);
        self.fetch_mode = FetchMode::Correct;
        self.fetch_buffer.clear();
        self.fetch_done = false;
        self.stall_until_redirect();
    }

    fn redirect(&mut self, resume_pos: u64, refetch_at: u64) {
        self.fetch_mode = FetchMode::Correct;
        self.fetch_pos = resume_pos;
        self.fetch_stall_until = refetch_at;
        self.cur_line = u64::MAX;
        self.fetch_done = false;
        self.fetch_buffer.clear();
    }

    // ----- squash ----------------------------------------------------------

    /// Squashes ROB entries from position `from` (0 = everything) youngest
    /// first, undoing renames and releasing resources. The fetch buffer is
    /// cleared by the accompanying [`redirect`](Self::redirect).
    fn squash_from(&mut self, from: usize) {
        while self.rob.len() > from {
            let slot = self.rob.pop_back().expect("rob non-empty");
            let uop = self.uops.remove(slot);
            if let (Some(reg), Some(preg), Some(prev)) = (uop.dst_reg, uop.dst_preg, uop.prev_preg)
            {
                self.renamer.rollback(reg, preg, prev);
            }
            if uop.uses_lsq() {
                self.lsq_used -= 1;
            }
            if uop.kind == InstrKind::Branch || uop.kind == InstrKind::Ret {
                self.branches_inflight = self.branches_inflight.saturating_sub(1);
            }
            if self.serialize == Some(uop.uid) {
                self.serialize = None;
            }
        }
        // Drop squashed entries from the issue queues eagerly so occupancy
        // checks stay accurate.
        let uops = &self.uops;
        self.iq_int
            .retain(|&(s, u, _)| uops.get_if_uid(s, u).is_some());
        self.iq_mem
            .retain(|&(s, u, _)| uops.get_if_uid(s, u).is_some());
        self.iq_fp
            .retain(|&(s, u, _)| uops.get_if_uid(s, u).is_some());
    }

    // ----- record ----------------------------------------------------------

    #[inline]
    fn finalize_record(&mut self, t: u64, pre_commit_head_alloc: u64, record: &mut CycleRecord) {
        let w = self.config.commit_width as u64;
        // The commit width is a power of two in every shipped config; reduce
        // the per-bank modulo to a mask there (`%` on a runtime u64 is a
        // hardware divide, and this runs up to six times per cycle).
        let bank_of = |alloc: u64| -> u64 {
            if w.is_power_of_two() {
                alloc & (w - 1)
            } else {
                alloc % w
            }
        };
        record.rob_len = self.rob.len() as u32;

        if let Some(&front) = self.rob.front() {
            let uop = self.uops.get(front);
            record.head = Some(HeadView {
                addr: uop.addr,
                idx: uop.idx,
                kind: uop.kind,
                executed: uop.executed(t),
            });
        }

        if record.n_committed > 0 {
            // Computing state: the bank view reflects the committing column.
            for i in 0..record.n_committed as usize {
                let c = record.committed[i];
                let bank = bank_of(pre_commit_head_alloc + i as u64) as usize;
                record.banks[bank] = BankView {
                    valid: true,
                    committing: true,
                    addr: c.addr,
                    idx: c.idx,
                    kind: c.kind,
                };
            }
            record.oldest_bank = bank_of(pre_commit_head_alloc) as u8;
        } else {
            // Stalled (or empty): the head column at end of cycle.
            for i in 0..self.rob.len().min(w as usize) {
                let uop = self.uops.get(self.rob[i]);
                let bank = bank_of(uop.alloc) as usize;
                record.banks[bank] = BankView {
                    valid: true,
                    committing: false,
                    addr: uop.addr,
                    idx: uop.idx,
                    kind: uop.kind,
                };
            }
            record.oldest_bank = bank_of(self.head_alloc) as u8;
        }

        record.next_to_dispatch = self
            .fetch_buffer
            .front()
            .map(|fb| (fb.addr, fb.idx, fb.wrong_path));
        record.next_to_fetch = self.window.get(self.fetch_pos).map(|d| (d.addr, d.idx));
    }
}

impl std::fmt::Debug for Core<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("program", &self.program.name())
            .field("config", &self.config.name)
            .field("cycle", &self.cycle)
            .field("rob_len", &self.rob.len())
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

// A whole in-flight simulation (core + memory system + trace window) moves
// to an executor worker thread; the borrow of the program is fine because
// `Program` is `Sync`. Regressing either bound must fail the build here,
// not at a distant `thread::scope` call.
const _: () = {
    const fn send<T: Send>() {}
    send::<Core<'static>>();
    send::<CoreStats>();
    send::<RunSummary>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MAX_COMMIT;
    use tip_isa::{BranchBehavior, FaultSpec, Instr, MemBehavior, ProgramBuilder, Reg};

    /// Collects every record for post-hoc assertions.
    #[derive(Default)]
    struct Recorder {
        records: Vec<CycleRecord>,
    }

    impl TraceSink for Recorder {
        fn on_cycle(&mut self, record: &CycleRecord) {
            self.records.push(record.clone());
        }
    }

    fn loop_program(body: impl Fn(&mut ProgramBuilder, tip_isa::BlockId), iters: u32) -> Program {
        let mut b = ProgramBuilder::named("test-loop");
        let main = b.function("main");
        let blk = b.block(main);
        body(&mut b, blk);
        b.push(
            blk,
            Instr::branch(blk, BranchBehavior::Loop { taken_iters: iters }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid program")
    }

    fn run(program: &Program) -> (RunSummary, Recorder, CoreStats) {
        let mut recorder = Recorder::default();
        let mut core = Core::new(program, CoreConfig::default(), 7);
        let summary = core.run(&mut recorder, 2_000_000);
        let stats = *core.stats();
        (summary, recorder, stats)
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        // 8 independent single-cycle ALU ops per iteration.
        let p = loop_program(
            |b, blk| {
                for i in 0..8 {
                    b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
                }
            },
            2_000,
        );
        let (summary, _, stats) = run(&p);
        assert_eq!(summary.exit, RunExit::Halted);
        let ipc = stats.ipc();
        assert!(
            ipc > 2.5,
            "independent code should commit near-width IPC, got {ipc:.2}"
        );
    }

    #[test]
    fn dependent_chain_limits_ipc() {
        // Each ALU op reads the previous one's destination.
        let p = loop_program(
            |b, blk| {
                for _ in 0..8 {
                    b.push(
                        blk,
                        Instr::int_alu(Some(Reg::int(1)), [Some(Reg::int(1)), None]),
                    );
                }
            },
            2_000,
        );
        let (_, _, stats) = run(&p);
        let ipc = stats.ipc();
        assert!(
            ipc < 1.3,
            "serial chain should commit about one per cycle, got {ipc:.2}"
        );
    }

    #[test]
    fn commit_respects_width_and_counts_match() {
        let p = loop_program(
            |b, blk| {
                for i in 0..6 {
                    b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
                }
            },
            500,
        );
        let (summary, recorder, _) = run(&p);
        let mut total = 0u64;
        for r in &recorder.records {
            assert!(r.n_committed as usize <= MAX_COMMIT);
            total += u64::from(r.n_committed);
            // Committing entries appear in the bank view with commit bits.
            for c in r.committed_iter() {
                assert!(r
                    .banks
                    .iter()
                    .any(|bnk| bnk.valid && bnk.committing && bnk.addr == c.addr));
            }
        }
        assert_eq!(total, summary.instructions);
        assert_eq!(recorder.records.len() as u64, summary.cycles);
    }

    #[test]
    fn llc_missing_loads_stall_at_head() {
        // Pointer-chase style dependent loads over a DRAM-sized footprint.
        let p = loop_program(
            |b, blk| {
                b.push(
                    blk,
                    Instr::load(
                        Some(Reg::int(1)),
                        Some(Reg::int(1)),
                        MemBehavior::RandomIn {
                            base: 0x100_0000,
                            footprint: 64 * 1024 * 1024,
                        },
                    ),
                );
            },
            2_000,
        );
        let (_, recorder, _) = run(&p);
        let stall_on_load = recorder
            .records
            .iter()
            .filter(|r| {
                !r.is_committing()
                    && !r.rob_empty()
                    && r.head.map(|h| h.kind == InstrKind::Load && !h.executed) == Some(true)
            })
            .count();
        let frac = stall_on_load as f64 / recorder.records.len() as f64;
        assert!(
            frac > 0.5,
            "dependent missing loads should dominate cycles, got {frac:.2}"
        );
    }

    #[test]
    fn bernoulli_branch_flushes_pipeline() {
        let mut b = ProgramBuilder::named("flushy");
        let main = b.function("main");
        let head = b.block(main);
        let skip = b.block(main);
        let tail = b.block(main);
        let exit = b.block(main);
        b.push(head, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            head,
            Instr::branch(tail, BranchBehavior::Bernoulli { taken_prob: 0.5 }),
        );
        b.push(skip, Instr::int_alu(Some(Reg::int(2)), [None, None]));
        b.push(skip, Instr::jump(tail));
        b.push(tail, Instr::int_alu(Some(Reg::int(3)), [None, None]));
        b.push(
            tail,
            Instr::branch(head, BranchBehavior::Loop { taken_iters: 3_000 }),
        );
        b.push(exit, Instr::halt());
        let p = b.build().expect("valid");

        let (summary, recorder, stats) = run(&p);
        assert_eq!(summary.exit, RunExit::Halted);
        assert!(
            stats.mispredicts > 500,
            "expected many mispredicts, got {}",
            stats.mispredicts
        );
        // Flushed state: an empty ROB cycle whose last commit was a
        // mispredicted branch.
        let mut seen_flush_state = false;
        let mut last_commit_mispredicted = false;
        for r in &recorder.records {
            if let Some(c) = r.youngest_committed() {
                last_commit_mispredicted = c.mispredicted;
            }
            if !r.is_committing() && r.rob_empty() && last_commit_mispredicted {
                seen_flush_state = true;
            }
        }
        assert!(
            seen_flush_state,
            "mispredicts should expose empty-ROB flush cycles"
        );
        assert!(
            stats.wrong_path_fetched > 0,
            "wrong-path fetch should be modelled"
        );
    }

    #[test]
    fn csr_flush_empties_rob() {
        let p = loop_program(
            |b, blk| {
                b.push(blk, Instr::int_alu(Some(Reg::int(1)), [None, None]));
                b.push(blk, Instr::csr_flush());
                b.push(blk, Instr::int_alu(Some(Reg::int(2)), [None, None]));
            },
            500,
        );
        let (_, recorder, stats) = run(&p);
        assert_eq!(stats.csr_flushes, 501);
        // After a CSR commit the ROB must be empty (everything younger
        // squashed) until refetch.
        let mut flush_then_empty = 0;
        let mut prev_flush = false;
        for r in &recorder.records {
            if prev_flush && r.rob_empty() && !r.is_committing() {
                flush_then_empty += 1;
            }
            prev_flush = r.committed_iter().any(|c| c.flush);
        }
        assert!(
            flush_then_empty > 100,
            "CSR flushes should drain the ROB, got {flush_then_empty}"
        );
    }

    #[test]
    fn page_fault_runs_handler_and_reexecutes() {
        let mut b = ProgramBuilder::named("faulty");
        let main = b.function("main");
        let handler = b.function("os_handler");
        let blk = b.block(main);
        b.push(
            blk,
            Instr::load(
                Some(Reg::int(1)),
                None,
                MemBehavior::Fixed { addr: 0x20_0000 },
            )
            .with_fault(FaultSpec { every: 50 }),
        );
        b.push(
            blk,
            Instr::int_alu(Some(Reg::int(2)), [Some(Reg::int(1)), None]),
        );
        b.push(
            blk,
            Instr::branch(blk, BranchBehavior::Loop { taken_iters: 200 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        let h = b.block(handler);
        b.push(h, Instr::int_alu(Some(Reg::int(3)), [None, None]));
        b.push(h, Instr::ret());
        b.set_fault_handler(handler);
        let p = b.build().expect("valid");

        let (summary, recorder, stats) = run(&p);
        assert_eq!(summary.exit, RunExit::Halted);
        assert_eq!(stats.exceptions, 4, "201 loads with every=50 fault 4 times");
        let exception_records = recorder
            .records
            .iter()
            .filter(|r| r.exception.is_some())
            .count();
        assert_eq!(exception_records, 4);
        // The handler's instructions committed (handler ALU address).
        let handler_entry = p.addr_of(p.block(p.function(handler).entry_block()).first_instr());
        let handler_commits = recorder
            .records
            .iter()
            .flat_map(|r| r.committed_iter())
            .filter(|c| c.addr == handler_entry)
            .count();
        assert_eq!(handler_commits, 4);
    }

    #[test]
    fn fence_serializes_but_completes() {
        let with_fence = loop_program(
            |b, blk| {
                for i in 0..4 {
                    b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
                }
                b.push(blk, Instr::fence());
            },
            400,
        );
        let without = loop_program(
            |b, blk| {
                for i in 0..4 {
                    b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
                }
                b.push(blk, Instr::nop());
            },
            400,
        );
        let (sf, _, stats_f) = run(&with_fence);
        let (sn, _, _) = run(&without);
        assert_eq!(sf.exit, RunExit::Halted);
        assert_eq!(sf.instructions, sn.instructions);
        assert!(
            sf.cycles as f64 > 1.5 * sn.cycles as f64,
            "fences should serialize: {} vs {} cycles",
            sf.cycles,
            sn.cycles
        );
        assert!(
            stats_f.ipc() < 1.6,
            "serialized IPC should be low, got {:.2}",
            stats_f.ipc()
        );
    }

    #[test]
    fn icache_misses_drain_rob() {
        // A program with a huge instruction footprint: many blocks chained by
        // jumps, total far exceeding the 32 KB L1I.
        let mut b = ProgramBuilder::named("ifootprint");
        let main = b.function("main");
        let n_blocks = 1_200; // x ~24 instrs x 4B = ~115 KB of text
        let blocks: Vec<_> = (0..n_blocks).map(|_| b.block(main)).collect();
        let exit = b.block(main);
        for (i, &blk) in blocks.iter().enumerate() {
            for j in 0..23 {
                b.push(
                    blk,
                    Instr::int_alu(Some(Reg::int((j % 8) + 1)), [None, None]),
                );
            }
            if i + 1 < blocks.len() {
                b.push(blk, Instr::jump(blocks[i + 1]));
            } else {
                // Loop back to the start a few times.
                b.push(
                    blk,
                    Instr::branch(blocks[0], BranchBehavior::Loop { taken_iters: 3 }),
                );
            }
        }
        b.push(exit, Instr::halt());
        let p = b.build().expect("valid");

        let (summary, recorder, stats) = run(&p);
        assert_eq!(summary.exit, RunExit::Halted);
        assert!(stats.icache_stall_cycles > 0, "expected I-cache stalls");
        // Drained state: empty ROB with no flush cause.
        let empty = recorder
            .records
            .iter()
            .filter(|r| r.rob_empty() && !r.is_committing())
            .count();
        assert!(empty > 0, "I-miss should drain the ROB");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = loop_program(
            |b, blk| {
                b.push(
                    blk,
                    Instr::load(
                        Some(Reg::int(1)),
                        None,
                        MemBehavior::RandomIn {
                            base: 0x50_0000,
                            footprint: 1 << 20,
                        },
                    ),
                );
                b.push(
                    blk,
                    Instr::int_alu(Some(Reg::int(2)), [Some(Reg::int(1)), None]),
                );
            },
            1_000,
        );
        let (s1, r1, _) = run(&p);
        let (s2, r2, _) = run(&p);
        assert_eq!(s1, s2);
        assert_eq!(r1.records.len(), r2.records.len());
        assert_eq!(r1.records, r2.records);
    }

    #[test]
    fn small_core_is_slower() {
        let p = loop_program(
            |b, blk| {
                for i in 0..8 {
                    b.push(blk, Instr::int_alu(Some(Reg::int(i + 1)), [None, None]));
                }
            },
            2_000,
        );
        let mut big = Core::new(&p, CoreConfig::default(), 7);
        let sb = big.run(&mut (), 2_000_000);
        let mut small = Core::new(&p, CoreConfig::small_2wide(), 7);
        let ss = small.run(&mut (), 2_000_000);
        assert_eq!(sb.instructions, ss.instructions);
        assert!(
            ss.cycles > sb.cycles,
            "2-wide core must be slower on ILP-rich code"
        );
    }

    #[test]
    fn stream_end_without_halt() {
        let mut b = ProgramBuilder::named("ret-end");
        let main = b.function("main");
        let blk = b.block(main);
        b.push(blk, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(blk, Instr::ret());
        let p = b.build().expect("valid");
        let mut core = Core::new(&p, CoreConfig::default(), 0);
        let summary = core.run(&mut (), 10_000);
        assert_eq!(summary.exit, RunExit::StreamEnd);
        assert_eq!(summary.instructions, 2);
    }

    /// A program exercising every squash path at once: hard-to-predict
    /// branches (mispredicts + wrong-path fetch), calls and returns (RAS),
    /// faulting loads over a cache-hostile footprint (exceptions + MSHRs),
    /// and CSR flushes.
    fn stress_program() -> Program {
        let mut b = ProgramBuilder::named("stress");
        let main = b.function("main");
        let helper = b.function("helper");
        let handler = b.function("os_handler");
        let head = b.block(main);
        let skip = b.block(main);
        let resume = b.block(main);
        let tail = b.block(main);
        let exit = b.block(main);
        b.push(
            head,
            Instr::load(
                Some(Reg::int(1)),
                None,
                MemBehavior::RandomIn {
                    base: 0x40_0000,
                    footprint: 4 * 1024 * 1024,
                },
            )
            .with_fault(FaultSpec { every: 301 }),
        );
        b.push(
            head,
            Instr::int_alu(Some(Reg::int(2)), [Some(Reg::int(1)), None]),
        );
        b.push(
            head,
            Instr::branch(tail, BranchBehavior::Bernoulli { taken_prob: 0.5 }),
        );
        b.push(skip, Instr::call(helper));
        b.push(resume, Instr::jump(tail));
        b.push(
            tail,
            Instr::store(
                Some(Reg::int(2)),
                None,
                MemBehavior::Stride {
                    base: 0x80_0000,
                    stride: 64,
                    footprint: 1024 * 1024,
                },
            ),
        );
        b.push(
            tail,
            Instr::branch(head, BranchBehavior::Loop { taken_iters: 1_500 }),
        );
        b.push(exit, Instr::halt());
        let hb = b.block(helper);
        b.push(hb, Instr::int_alu(Some(Reg::int(4)), [None, None]));
        b.push(hb, Instr::csr_flush());
        b.push(hb, Instr::ret());
        let fh = b.block(handler);
        b.push(fh, Instr::int_alu(Some(Reg::int(5)), [None, None]));
        b.push(fh, Instr::ret());
        b.set_fault_handler(handler);
        b.build().expect("valid program")
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let p = stress_program();
        let config = CoreConfig::default();

        // Uninterrupted reference run.
        let mut full_rec = Recorder::default();
        let mut full = Core::new(&p, config.clone(), 7);
        let full_summary = full.run(&mut full_rec, 2_000_000);
        assert_eq!(full_summary.exit, RunExit::Halted);
        assert!(
            full.stats().mispredicts > 100 && full.stats().exceptions > 0,
            "stress program must exercise squash paths"
        );
        assert!(
            full_summary.cycles > 9_000,
            "program too short to checkpoint mid-flight"
        );

        // The same run torn down and restored twice mid-flight, at cycle
        // bounds chosen to land inside the loop (not on iteration edges).
        let mut rec = Recorder::default();
        let mut core = Core::new(&p, config.clone(), 7);
        core.run(&mut rec, 3_001);
        let snap1 = core.snapshot();
        drop(core);
        let mut core = Core::restore(&p, config.clone(), &snap1).expect("restore checkpoint 1");
        core.run(&mut rec, 7_003);
        let snap2 = core.snapshot();
        drop(core);
        let mut core = Core::restore(&p, config.clone(), &snap2).expect("restore checkpoint 2");
        let summary = core.run(&mut rec, 2_000_000);

        assert_eq!(summary, full_summary);
        assert_eq!(*core.stats(), *full.stats());
        assert_eq!(rec.records.len(), full_rec.records.len());
        for (i, (got, want)) in rec.records.iter().zip(&full_rec.records).enumerate() {
            assert_eq!(got, want, "cycle {i} diverges after restore");
        }
    }

    #[test]
    fn snapshot_is_deterministic_and_restore_validates() {
        let p = stress_program();
        let mut a = Core::new(&p, CoreConfig::default(), 7);
        a.run(&mut (), 5_000);
        let snap = a.snapshot();
        let mut b = Core::new(&p, CoreConfig::default(), 7);
        b.run(&mut (), 5_000);
        assert_eq!(snap, b.snapshot(), "same state must serialize identically");

        // A snapshot taken under another core shape must be rejected.
        assert!(Core::restore(&p, CoreConfig::small_2wide(), &snap).is_err());
        // A snapshot of another program must be rejected.
        let other = loop_program(
            |b, blk| {
                b.push(blk, Instr::int_alu(Some(Reg::int(1)), [None, None]));
            },
            100,
        );
        assert!(Core::restore(&other, CoreConfig::default(), &snap).is_err());
        // Truncation anywhere is detected, never a panic.
        for cut in (0..snap.len()).step_by(snap.len() / 23 + 1) {
            assert!(Core::restore(&p, CoreConfig::default(), &snap[..cut]).is_err());
        }
        assert!(Core::restore(&p, CoreConfig::default(), &snap[..snap.len() - 1]).is_err());
        // Trailing garbage is detected.
        let mut extended = snap.clone();
        extended.push(0);
        assert!(Core::restore(&p, CoreConfig::default(), &extended).is_err());
    }
}
