//! Front-end branch prediction: per-branch local-history predictors, a
//! perfect BTB, and a return-address stack.
//!
//! The paper's BOOM uses a 28 KB TAGE predictor. We substitute a
//! local-history predictor — per static branch, an 8-bit history of recent
//! directions indexes a table of 2-bit saturating counters. Like TAGE, it
//! learns loops and short repeating direction patterns essentially
//! perfectly after warm-up, while data-dependent (Bernoulli) branches stay
//! hard — which is the qualitative behaviour the evaluation depends on.
//! Jump/call targets are assumed BTB-resident (perfect); return targets
//! come from the RAS and go stale across exception handlers and deep
//! call chains.

use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::InstrAddr;

const HISTORY_BITS: u32 = 8;
const TABLE_SIZE: usize = 1 << HISTORY_BITS;
/// Initial counter value: weakly taken.
const WEAK_TAKEN: u8 = 2;

/// Per-branch local-history predictor plus a return-address stack.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Per-static-instruction pattern tables, allocated on first use.
    tables: Vec<Option<Box<[u8; TABLE_SIZE]>>>,
    /// Per-static-instruction direction history.
    history: Vec<u8>,
    ras: Vec<InstrAddr>,
    ras_capacity: usize,
    predictions: u64,
    mispredictions: u64,
}

impl Predictor {
    /// Creates a predictor sized for `num_static_instrs` instructions.
    #[must_use]
    pub fn new(num_static_instrs: usize) -> Self {
        Predictor {
            tables: vec![None; num_static_instrs],
            history: vec![0; num_static_instrs],
            ras: Vec::new(),
            ras_capacity: 32,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the direction of the branch at static index `idx` and trains
    /// on the actual outcome. Returns the predicted direction.
    pub fn predict_and_train(&mut self, idx: usize, actual_taken: bool) -> bool {
        let table = self.tables[idx].get_or_insert_with(|| Box::new([WEAK_TAKEN; TABLE_SIZE]));
        let h = self.history[idx] as usize;
        let counter = &mut table[h];
        let predicted = *counter >= WEAK_TAKEN;
        if actual_taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history[idx] = (self.history[idx] << 1) | u8::from(actual_taken);
        self.predictions += 1;
        if predicted != actual_taken {
            self.mispredictions += 1;
        }
        predicted
    }

    /// Pushes a return address on a call.
    pub fn push_return(&mut self, addr: InstrAddr) {
        if self.ras.len() == self.ras_capacity {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pops the predicted return target on a return, if the stack is
    /// non-empty.
    pub fn pop_return(&mut self) -> Option<InstrAddr> {
        self.ras.pop()
    }

    /// Records a return misprediction (kept separate so callers decide what
    /// counts).
    pub fn record_ras_mispredict(&mut self) {
        self.mispredictions += 1;
    }

    /// Direction predictions made so far.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredictions recorded so far.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Serializes the pattern tables, histories, RAS, and counters for a
    /// checkpoint.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_len(out, self.tables.len());
        for table in &self.tables {
            match table {
                None => snap::put_u8(out, 0),
                Some(t) => {
                    snap::put_u8(out, 1);
                    out.extend_from_slice(&t[..]);
                }
            }
        }
        for &h in &self.history {
            snap::put_u8(out, h);
        }
        snap::put_len(out, self.ras.len());
        for &addr in &self.ras {
            snap::put_u64(out, addr.raw());
        }
        snap::put_u64(out, self.predictions);
        snap::put_u64(out, self.mispredictions);
    }

    /// Restores a predictor captured by [`Predictor::snapshot_into`], sized
    /// for `num_static_instrs` instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is damaged or was captured for
    /// a program of a different size.
    pub fn restore(num_static_instrs: usize, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        if n != num_static_instrs {
            return Err(SnapError::Malformed("predictor sized for another program"));
        }
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(match r.u8()? {
                0 => None,
                1 => {
                    let mut t = Box::new([0u8; TABLE_SIZE]);
                    for c in t.iter_mut() {
                        let v = r.u8()?;
                        if v > 3 {
                            return Err(SnapError::Malformed("saturating counter"));
                        }
                        *c = v;
                    }
                    Some(t)
                }
                _ => return Err(SnapError::Malformed("pattern table tag")),
            });
        }
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push(r.u8()?);
        }
        let ras_capacity = 32;
        let n_ras = r.len_of(8)?;
        if n_ras > ras_capacity {
            return Err(SnapError::Malformed("RAS deeper than capacity"));
        }
        let mut ras = Vec::with_capacity(n_ras);
        for _ in 0..n_ras {
            ras.push(InstrAddr::new(r.u64()?));
        }
        Ok(Predictor {
            tables,
            history,
            ras,
            ras_capacity,
            predictions: r.u64()?,
            mispredictions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Predictor, idx: usize, dirs: impl IntoIterator<Item = bool>) -> u64 {
        let mut wrong = 0;
        for d in dirs {
            if p.predict_and_train(idx, d) != d {
                wrong += 1;
            }
        }
        wrong
    }

    #[test]
    fn short_loop_is_learned_perfectly() {
        // A 6-iteration loop (5 taken, 1 not-taken) fits in 8 bits of
        // history: after warm-up the exit is predicted too.
        let mut p = Predictor::new(1);
        let pattern: Vec<bool> = std::iter::repeat_n([true, true, true, true, true, false], 60)
            .flatten()
            .collect();
        let warmup = run(&mut p, 0, pattern[..60].iter().copied());
        let steady = run(&mut p, 0, pattern[60..].iter().copied());
        assert!(warmup > 0, "cold predictor must mispredict at first");
        assert_eq!(steady, 0, "periodic pattern must be learned");
    }

    #[test]
    fn long_loop_mispredicts_once_per_exit() {
        // 40 taken + 1 not-taken exceeds the history length: each exit
        // mispredicts (as with any finite-history predictor).
        let mut p = Predictor::new(1);
        let mut wrong = 0;
        for _ in 0..20 {
            wrong += run(&mut p, 0, std::iter::repeat_n(true, 40));
            wrong += run(&mut p, 0, std::iter::once(false));
        }
        assert!(
            wrong >= 19,
            "long-loop exits stay mispredicted, got {wrong}"
        );
        assert!(wrong <= 45);
    }

    #[test]
    fn irregular_pattern_is_learned() {
        let mut p = Predictor::new(1);
        let pattern = [true, false, true, true, false, true, true];
        let dirs: Vec<bool> = std::iter::repeat_n(pattern, 80).flatten().collect();
        let _warmup = run(&mut p, 0, dirs[..pattern.len() * 40].iter().copied());
        let steady = run(&mut p, 0, dirs[pattern.len() * 40..].iter().copied());
        assert_eq!(steady, 0, "period-7 pattern fits in 8-bit history");
    }

    #[test]
    fn random_branch_stays_hard() {
        // A pseudo-random sequence cannot be predicted reliably.
        let mut p = Predictor::new(1);
        let mut x = 0x12345678u64;
        let dirs: Vec<bool> = (0..4000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 62) & 1 == 1
            })
            .collect();
        let wrong = run(&mut p, 0, dirs[2000..].iter().copied());
        assert!(
            wrong > 400,
            "random directions must mispredict often, got {wrong}/2000"
        );
    }

    #[test]
    fn branches_do_not_alias() {
        let mut p = Predictor::new(2);
        // Branch 0 always taken, branch 1 always not-taken, interleaved.
        for _ in 0..100 {
            p.predict_and_train(0, true);
            p.predict_and_train(1, false);
        }
        assert!(p.predict_and_train(0, true));
        assert!(!p.predict_and_train(1, false));
    }

    #[test]
    fn ras_is_lifo() {
        let mut p = Predictor::new(0);
        p.push_return(InstrAddr::new(0x10));
        p.push_return(InstrAddr::new(0x20));
        assert_eq!(p.pop_return(), Some(InstrAddr::new(0x20)));
        assert_eq!(p.pop_return(), Some(InstrAddr::new(0x10)));
        assert_eq!(p.pop_return(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut p = Predictor::new(0);
        for i in 0..40u64 {
            p.push_return(InstrAddr::new(i));
        }
        let mut popped = 0;
        while p.pop_return().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 32);
    }

    #[test]
    fn snapshot_roundtrips_learned_state() {
        let mut p = Predictor::new(3);
        for _ in 0..50 {
            p.predict_and_train(0, true);
            p.predict_and_train(2, false);
        }
        p.push_return(InstrAddr::new(0x40));
        let mut buf = Vec::new();
        p.snapshot_into(&mut buf);
        let mut r = SnapReader::new(&buf);
        let mut restored = Predictor::restore(3, &mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.predictions(), p.predictions());
        assert_eq!(restored.mispredictions(), p.mispredictions());
        // Learned behaviour carries over.
        assert!(restored.predict_and_train(0, true));
        assert!(!restored.predict_and_train(2, false));
        assert_eq!(restored.pop_return(), Some(InstrAddr::new(0x40)));
        // A snapshot for the wrong program size must not restore.
        assert!(Predictor::restore(4, &mut SnapReader::new(&buf)).is_err());
    }

    #[test]
    fn stats_count() {
        let mut p = Predictor::new(1);
        p.predict_and_train(0, true);
        p.predict_and_train(0, true);
        assert_eq!(p.predictions(), 2);
    }
}
