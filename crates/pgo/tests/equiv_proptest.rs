//! Property: every rewrite the PGO subsystem can produce — the full staged
//! pass under random thresholds, and raw editor relayouts with branch
//! inversions — preserves the architectural instruction stream of random
//! multi-block, multi-function programs.

use proptest::prelude::*;
use tip_isa::{
    BranchBehavior, Instr, InstrKind, MemBehavior, Program, ProgramBuilder, ProgramEditor, Reg,
};
use tip_pgo::{check_equivalence, PgoConfig, PgoPass};

/// Deterministic helper RNG for deriving permutations from one proptest u64.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A random program with several blocks per function, a callee function,
/// forward and backward branches across all behaviour classes, flushes and
/// fences in loop bodies, and dependent ALU pairs. Every block carries at
/// least one architecturally observable instruction so equivalence streams
/// make progress even through infinite loops.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..6,                                // blocks in main
        proptest::collection::vec(0u8..8, 8..32), // instruction codes
        proptest::collection::vec(0u8..5, 1..6),  // branch behaviour codes
        0u32..12,                                 // loop iterations
        1u64..100_000,                            // working set
        proptest::bool::ANY,                      // include a callee?
    )
        .prop_map(|(nblocks, codes, bcodes, iters, ws, with_callee)| {
            let mut b = ProgramBuilder::named("prop-pgo");
            let main = b.function("main");
            let blocks: Vec<_> = (0..nblocks).map(|_| b.block(main)).collect();
            let exit = b.block(main);

            let callee = with_callee.then(|| {
                let f = b.function("aux");
                let body = b.block(f);
                b.push(body, Instr::int_alu(Some(Reg::int(30)), [None, None]));
                let tail = b.block(f);
                b.push(tail, Instr::ret());
                f
            });

            let mut code_at = 0usize;
            let mut next_code = || {
                let c = codes[code_at % codes.len()];
                code_at += 1;
                c
            };
            for (bi, &block) in blocks.iter().enumerate() {
                // Anchor observable, plus a dependent pair fusion can try.
                let r = Reg::int(1 + (bi % 10) as u8);
                b.push(block, Instr::int_alu(Some(r), [None, None]));
                b.push(
                    block,
                    Instr::int_alu(Some(Reg::int(11 + (bi % 10) as u8)), [Some(r), None]),
                );
                for _ in 0..(next_code() % 4) {
                    let instr = match next_code() {
                        0 => Instr::int_alu(Some(Reg::int(25)), [None, None]),
                        1 => Instr::csr_flush(),
                        2 => Instr::fence(),
                        3 => Instr::load(
                            Some(Reg::int(26)),
                            None,
                            MemBehavior::Stride {
                                base: 0x1000,
                                stride: 8,
                                footprint: ws,
                            },
                        ),
                        4 => Instr::store(
                            None,
                            Some(Reg::int(26)),
                            MemBehavior::RandomIn {
                                base: 0x8000,
                                footprint: ws.max(8),
                            },
                        ),
                        _ => Instr::nop(),
                    };
                    b.push(block, instr);
                }
                // Calls are terminators: a call-ended block falls through to
                // the next block on return.
                if let (Some(f), 0) = (callee, bi) {
                    b.push(block, Instr::call(f));
                    continue;
                }
                // Branch somewhere: forward to a later block, backward to
                // self (loop), or fall through by ending plainly.
                let bc = bcodes[bi % bcodes.len()];
                let behavior = match bc {
                    0 => BranchBehavior::Loop { taken_iters: iters },
                    1 => BranchBehavior::Bernoulli {
                        taken_prob: 0.5 + (f64::from(iters) / 64.0),
                    },
                    2 => BranchBehavior::Pattern {
                        pattern: vec![true, false, iters % 2 == 0],
                    },
                    3 => BranchBehavior::AlwaysTaken,
                    _ => BranchBehavior::NeverTaken,
                };
                let backward = matches!(behavior, BranchBehavior::Loop { .. });
                let target = if backward {
                    block
                } else {
                    *blocks.get(bi + 2).unwrap_or(&exit)
                };
                if bc != 4 || backward {
                    b.push(block, Instr::branch(target, behavior));
                }
            }
            b.push(exit, Instr::int_alu(Some(Reg::int(29)), [None, None]));
            b.push(exit, Instr::halt());
            b.build().expect("structurally valid by construction")
        })
}

const CAP: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The staged pass, under arbitrary thresholds and an arbitrary share
    /// attribution, never changes what the program computes.
    #[test]
    fn pgo_pass_preserves_semantics(
        program in arb_program(),
        raw_shares in proptest::collection::vec(0.0f64..1.0, 64),
        flush_t in 0.0f64..0.2,
        fuse_t in 0.0f64..0.1,
        margin in 0.0f64..0.2,
        cold_t in 0.0f64..0.01,
        stages in 1u8..32,
        seed in 0u64..50,
    ) {
        let total: f64 = (0..program.len()).map(|i| raw_shares[i % 64]).sum();
        let shares: Vec<f64> = (0..program.len())
            .map(|i| raw_shares[i % 64] / total.max(1e-12))
            .collect();
        let config = PgoConfig {
            flush_share_threshold: flush_t,
            fuse_block_share_threshold: fuse_t,
            reorder_margin: margin,
            cold_share_threshold: cold_t,
            hoist_dominating_copy: stages & 16 != 0,
            hoist: stages & 1 != 0,
            fuse: stages & 2 != 0,
            reorder: stages & 4 != 0,
            split: stages & 8 != 0,
        };
        let result = PgoPass::new(config).apply_with_shares(&program, &shares).unwrap();
        let check = check_equivalence(&program, &result.program, &result.provenance, seed, CAP);
        prop_assert!(
            check.is_ok(),
            "pass broke semantics: {:?}\nactions: {:?}",
            check,
            result.actions
        );
    }

    /// Raw editor rewrites — a random block permutation (entry fixed) plus
    /// inversion of every analytically invertible branch — are equivalent,
    /// including all trampoline-repair paths.
    #[test]
    fn random_relayout_preserves_semantics(
        program in arb_program(),
        perm_seed in 1u64..10_000,
        seed in 0u64..50,
    ) {
        let mut editor = ProgramEditor::new(&program);
        let mut rng = XorShift(perm_seed);
        for func in program.functions() {
            let mut keys = editor.block_keys(func.id()).unwrap();
            // Fisher–Yates over keys[1..]: the entry block must stay first.
            for i in (2..keys.len()).rev() {
                let j = 1 + (rng.next() as usize) % i;
                keys.swap(i, j);
            }
            editor.set_block_order(func.id(), &keys).unwrap();
        }
        for block in program.blocks() {
            let last = &program.instrs()[block.instr_range().end - 1];
            let invertible = last.kind() == InstrKind::Branch
                && last.branch_behavior().is_some_and(|bb| bb.inverted().is_some());
            if invertible && rng.next().is_multiple_of(2) {
                editor.invert_branch(ProgramEditor::key_of(block.id())).unwrap();
            }
        }
        let (rewritten, provenance) = editor.finish().unwrap();
        let check = check_equivalence(&program, &rewritten, &provenance, seed, CAP);
        prop_assert!(check.is_ok(), "relayout broke semantics: {:?}", check);
    }
}
