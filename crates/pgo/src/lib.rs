//! Profile-guided optimization: closing the paper's profile → transform →
//! measure loop.
//!
//! The imagick case study of *TIP: Time-Proportional Instruction Profiling*
//! (§6) uses a TIP profile to find a CSR-flush hot spot, fixes it by hand,
//! and measures the speedup. This crate generalizes that workflow into an
//! automated pass, so the claim "time-proportional profiles guide
//! optimization better than skid-prone ones" can be measured instead of
//! argued:
//!
//! - [`Analysis`] consumes a finished instruction-granularity [`Profile`]
//!   (from *any* profiler in the bank) plus the workload [`Program`] CFG and
//!   ranks offenders — hottest flush/fence instructions, stall-dominated
//!   blocks, hot taken edges that are not fall-throughs — attributing each
//!   back to its `FunctionId`/`BlockId`/`InstrIdx`;
//! - [`transform`] holds mechanical, semantics-preserving `Program →
//!   Program` rewrites built on [`tip_isa::ProgramEditor`]: flush hoisting,
//!   hot-path block reordering, superinstruction-style fusion of dependent
//!   ALU pairs, and hot/cold block splitting;
//! - [`PgoPass`] sequences the rewrites, re-attributing the guiding profile
//!   onto each intermediate program through the accumulated
//!   [`tip_isa::Provenance`];
//! - [`check_equivalence`] proves a rewrite observationally equivalent: the
//!   transformed program retires the identical architectural
//!   instruction/result stream (aligned through provenance) and halts the
//!   same way.
//!
//! The closed-loop driver that profiles a workload under every profiler,
//! applies this pass per profile, and re-simulates lives in `tip-bench`
//! (`tip-pgo` binary).
//!
//! [`Profile`]: tip_core::Profile
//! [`Program`]: tip_isa::Program

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod equiv;
mod pass;
pub mod transform;

pub use analysis::{Analysis, Offender};
pub use equiv::{check_equivalence, EquivError};
pub use pass::{PgoConfig, PgoError, PgoPass, PgoResult};
pub use transform::Rewrite;
