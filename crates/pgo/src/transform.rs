//! Mechanical, semantics-preserving `Program → Program` rewrites.
//!
//! Every pass takes the current program, an [`Analysis`] of the guiding
//! profile re-attributed onto it, and the [`PgoConfig`] thresholds; it
//! returns `Ok(None)` when nothing qualifies, or the rewritten program with
//! its [`Provenance`] and a human-readable action log. All structural
//! book-keeping (fall-through repair, trampolines, behaviour keys) is done
//! by [`ProgramEditor`]; these passes only decide *what* to rewrite.

use crate::analysis::Analysis;
use crate::pass::PgoConfig;
use tip_isa::{
    BlockId, EditError, FunctionId, Instr, InstrIdx, InstrKind, Program, ProgramEditor, Provenance,
    Reg,
};

/// The output of one applied rewrite pass.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// The rewritten, validated program.
    pub program: Program,
    /// Maps the rewritten program's instructions back to the input's.
    pub provenance: Provenance,
    /// One line per transformation applied, for reports.
    pub actions: Vec<String>,
}

/// Hoists hot pipeline-flushing instructions (CSR accesses, fences) out of
/// the code they dominate: every flush/fence whose attributed share reaches
/// the threshold is replaced *in place* by a `nop` — keeping every other
/// instruction at its exact address, so the hot path's fetch alignment and
/// cache-line layout are untouched (the same property the paper's
/// source-level imagick fix has) — and a single dominating flush is placed
/// in a fresh preheader block prepended to the entry function, where it
/// executes once and keeps the "CSR state is established" semantics. The
/// preheader copy is emitted only under
/// [`PgoConfig::hoist_dominating_copy`]; by default the flushes are elided
/// outright, which is sound here because the modeled flush instructions
/// are architecturally inert (see that flag's docs).
///
/// # Errors
///
/// Propagates [`EditError`] if re-assembly fails (cannot happen for valid
/// inputs).
pub fn hoist_flushes(
    program: &Program,
    analysis: &Analysis,
    cfg: &PgoConfig,
) -> Result<Option<Rewrite>, EditError> {
    let sites = analysis.hot_flushes(program, cfg.flush_share_threshold);
    if sites.is_empty() {
        return Ok(None);
    }

    let mut editor = ProgramEditor::new(program);
    let mut actions = Vec::new();
    for &(idx, share) in &sites {
        let block = program.block_of(idx);
        let pos = idx.index() - program.block(block).instr_range().start;
        let key = ProgramEditor::key_of(block);
        editor.remove_instr(key, pos)?;
        editor.insert_instr(key, pos, Instr::nop())?;
        actions.push(format!(
            "hoist {}@{}<{}> (share {:.1}%)",
            program.addr_of(idx),
            program.function(program.function_of(idx)).name(),
            program.instr(idx).kind(),
            share * 100.0
        ));
    }
    // Under the conservative flag, one dominating copy in a preheader of
    // the entry function keeps the CSR state established; the preheader
    // runs once, outside any loop through the old entry block.
    if cfg.hoist_dominating_copy {
        let preheader = editor.prepend_block(program.entry())?;
        editor.insert_instr(preheader, 0, Instr::csr_flush())?;
        actions.push("dominating flush copy in entry preheader".to_owned());
    }

    let (rewritten, provenance) = editor.finish()?;
    Ok(Some(Rewrite {
        program: rewritten,
        provenance,
        actions,
    }))
}

/// Fuses adjacent dependent integer-ALU pairs in hot blocks into a single
/// superinstruction: `a; b` where `b` reads `a`'s destination and nothing
/// else in the program does. The fused instruction writes `b`'s destination
/// and reads the union of the pair's external sources, halving the ROB/issue
/// occupancy of the hot dependence chain.
///
/// # Errors
///
/// Propagates [`EditError`] if re-assembly fails.
pub fn fuse_hot_alu_pairs(
    program: &Program,
    analysis: &Analysis,
    cfg: &PgoConfig,
) -> Result<Option<Rewrite>, EditError> {
    // Readers of each register across the whole program: a pair is fusable
    // only if the intermediate register has exactly one reader (`b`).
    let mut readers: std::collections::HashMap<Reg, usize> = std::collections::HashMap::new();
    for instr in program.instrs() {
        for src in instr.srcs().into_iter().flatten() {
            *readers.entry(src).or_insert(0) += 1;
        }
    }

    let mut fusions: Vec<(BlockId, usize, Instr, InstrIdx, InstrIdx)> = Vec::new();
    for (block, share) in analysis.hot_blocks(program, cfg.fuse_block_share_threshold) {
        let range = program.block(block).instr_range();
        let mut i = range.start;
        while i + 1 < range.end {
            let a = &program.instrs()[i];
            let b = &program.instrs()[i + 1];
            let fusable = a.kind() == InstrKind::IntAlu
                && b.kind() == InstrKind::IntAlu
                && a.dst().is_some_and(|d| {
                    b.srcs().contains(&Some(d)) && readers.get(&d).copied().unwrap_or(0) == 1
                });
            if fusable {
                let d = a.dst().expect("checked");
                // External sources: a's, plus b's minus the fused-away dep.
                let mut srcs: Vec<Reg> = a.srcs().into_iter().flatten().collect();
                for s in b.srcs().into_iter().flatten() {
                    if s != d && !srcs.contains(&s) {
                        srcs.push(s);
                    }
                }
                if srcs.len() <= 2 {
                    let mut sig = [None, None];
                    for (slot, s) in sig.iter_mut().zip(srcs) {
                        *slot = Some(s);
                    }
                    let fused = Instr::int_alu(b.dst(), sig);
                    fusions.push((
                        block,
                        i - range.start,
                        fused,
                        InstrIdx::new(i as u32),
                        InstrIdx::new(i as u32 + 1),
                    ));
                    i += 2; // pairs must not overlap
                    continue;
                }
            }
            i += 1;
        }
        // `share` only gates which blocks are scanned.
        let _ = share;
    }
    if fusions.is_empty() {
        return Ok(None);
    }

    let mut editor = ProgramEditor::new(program);
    let mut actions = Vec::new();
    // Apply within each block in descending position order.
    fusions.sort_by_key(|f| std::cmp::Reverse((f.0, f.1)));
    for (block, pos, fused, ia, ib) in fusions {
        editor.fuse_adjacent(ProgramEditor::key_of(block), pos, fused)?;
        actions.push(format!(
            "fuse {}+{}@{} (block share {:.1}%)",
            program.addr_of(ia),
            program.addr_of(ib),
            program.function(program.function_of(ia)).name(),
            analysis.block_share(block) * 100.0
        ));
    }
    let (rewritten, provenance) = editor.finish()?;
    Ok(Some(Rewrite {
        program: rewritten,
        provenance,
        actions,
    }))
}

/// Relays out each function so hot taken edges become fall-throughs: for
/// every branch whose taken target out-weighs its fall-through successor
/// (by the configured margin) *and* whose direction behaviour is
/// analytically invertible, the target is placed as the layout successor
/// and the branch inverted. Non-invertible branches are left in place —
/// relayout through a trampoline would trade a taken branch for a jump and
/// gain nothing.
///
/// # Errors
///
/// Propagates [`EditError`] if re-assembly fails.
pub fn reorder_hot_paths(
    program: &Program,
    analysis: &Analysis,
    cfg: &PgoConfig,
) -> Result<Option<Rewrite>, EditError> {
    let mut editor = ProgramEditor::new(program);
    let mut actions = Vec::new();
    let mut inversions: Vec<BlockId> = Vec::new();

    for func in program.functions() {
        let ids: Vec<BlockId> = func
            .block_range()
            .map(|bi| program.blocks()[bi].id())
            .collect();
        if ids.len() < 3 {
            continue;
        }
        // Greedy chain layout from the entry: follow the fall-through by
        // default; divert to the taken target when it is hotter by the
        // margin, unplaced, forward, and the branch can be inverted.
        let in_func = |id: BlockId| ids.contains(&id);
        let mut placed: Vec<BlockId> = Vec::with_capacity(ids.len());
        let mut planned: Vec<BlockId> = Vec::new();
        let mut cursor = ids[0];
        placed.push(cursor);
        loop {
            let last = &program.instrs()[program.block(cursor).instr_range().end - 1];
            let ft = match last.kind() {
                InstrKind::Jump | InstrKind::Ret | InstrKind::Halt => None,
                _ => program
                    .blocks()
                    .get(cursor.index() + 1)
                    .map(tip_isa::BasicBlock::id)
                    .filter(|&id| in_func(id)),
            };
            let taken = (last.kind() == InstrKind::Branch)
                .then(|| last.taken_target())
                .flatten();
            let invertible = last
                .branch_behavior()
                .is_some_and(|b| b.inverted().is_some());

            let mut next = None;
            if let (Some(t), Some(f)) = (taken, ft) {
                let divert = invertible
                    && !placed.contains(&t)
                    && analysis.block_share(t) >= analysis.block_share(f) + cfg.reorder_margin;
                if divert {
                    planned.push(cursor);
                    next = Some(t);
                }
            }
            if next.is_none() {
                next = ft.filter(|f| !placed.contains(f));
            }
            if next.is_none() {
                // Chain ended; continue from the hottest unplaced block.
                next = ids
                    .iter()
                    .filter(|id| !placed.contains(id))
                    .max_by(|a, b| {
                        analysis
                            .block_share(**a)
                            .total_cmp(&analysis.block_share(**b))
                            .then(b.cmp(a))
                    })
                    .copied();
            }
            match next {
                Some(n) => {
                    placed.push(n);
                    cursor = n;
                }
                None => break,
            }
        }

        if placed != ids {
            let order: Vec<_> = placed.iter().map(|&id| ProgramEditor::key_of(id)).collect();
            editor.set_block_order(func.id(), &order)?;
            actions.push(format!(
                "reorder {} ({} blocks, {} branch inversions)",
                func.name(),
                ids.len(),
                planned.len()
            ));
            inversions.extend(planned);
        }
    }
    if actions.is_empty() {
        return Ok(None);
    }
    for block in inversions {
        editor.invert_branch(ProgramEditor::key_of(block))?;
    }
    let (rewritten, provenance) = editor.finish()?;
    Ok(Some(Rewrite {
        program: rewritten,
        provenance,
        actions,
    }))
}

/// Sinks cold blocks to the end of their function, keeping the hot path
/// dense in the fetch stream. A block is sunk only when its share is below
/// the cold threshold and no *hot* block falls through into it (sinking
/// such a block would insert a trampoline into the hot path).
///
/// # Errors
///
/// Propagates [`EditError`] if re-assembly fails.
pub fn split_hot_cold(
    program: &Program,
    analysis: &Analysis,
    cfg: &PgoConfig,
) -> Result<Option<Rewrite>, EditError> {
    let mut editor = ProgramEditor::new(program);
    let mut actions = Vec::new();

    for func in program.functions() {
        let ids: Vec<BlockId> = func
            .block_range()
            .map(|bi| program.blocks()[bi].id())
            .collect();
        if ids.len() < 4 {
            continue;
        }
        let is_cold = |id: BlockId| analysis.block_share(id) < cfg.cold_share_threshold;
        // Fall-through predecessors: block i-1 if it can fall into i.
        let hot_ft_pred = |id: BlockId| {
            id.index()
                .checked_sub(1)
                .map(|pi| &program.blocks()[pi])
                .filter(|p| p.function() == func.id())
                .is_some_and(|p| {
                    let last = &program.instrs()[p.instr_range().end - 1];
                    !matches!(
                        last.kind(),
                        InstrKind::Jump | InstrKind::Ret | InstrKind::Halt
                    ) && !is_cold(p.id())
                })
        };
        let (hot, cold): (Vec<BlockId>, Vec<BlockId>) = ids[1..]
            .iter()
            .partition(|&&id| !is_cold(id) || hot_ft_pred(id));
        if cold.is_empty() {
            continue;
        }
        let mut order = vec![ids[0]];
        order.extend(hot);
        order.extend(cold.iter().copied());
        if order == ids {
            continue;
        }
        let keys: Vec<_> = order.iter().map(|&id| ProgramEditor::key_of(id)).collect();
        editor.set_block_order(func.id(), &keys)?;
        actions.push(format!(
            "split {} ({} cold of {} blocks sunk)",
            func.name(),
            cold.len(),
            ids.len()
        ));
    }
    if actions.is_empty() {
        return Ok(None);
    }
    let (rewritten, provenance) = editor.finish()?;
    Ok(Some(Rewrite {
        program: rewritten,
        provenance,
        actions,
    }))
}

/// The transform stages in application order, as `(name, function)` pairs —
/// shared by [`crate::PgoPass`] and anything enumerating the pass pipeline.
pub type PassFn = fn(&Program, &Analysis, &PgoConfig) -> Result<Option<Rewrite>, EditError>;

/// Returns the enabled pipeline stages for `cfg`, in application order.
#[must_use]
pub fn pipeline(cfg: &PgoConfig) -> Vec<(&'static str, PassFn)> {
    let mut stages: Vec<(&'static str, PassFn)> = Vec::new();
    if cfg.hoist {
        stages.push(("hoist-flushes", hoist_flushes as PassFn));
    }
    if cfg.fuse {
        stages.push(("fuse-alu-pairs", fuse_hot_alu_pairs as PassFn));
    }
    if cfg.reorder {
        stages.push(("reorder-hot-paths", reorder_hot_paths as PassFn));
    }
    if cfg.split {
        stages.push(("split-hot-cold", split_hot_cold as PassFn));
    }
    stages
}

// FunctionId is used in doc position only through Program::function calls;
// silence the unused-import lint path cleanly by referencing the type.
const _: fn(FunctionId) = |_| {};
