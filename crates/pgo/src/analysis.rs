//! Offender ranking: from a per-instruction profile to attributed rewrite
//! opportunities.

use tip_isa::{BlockId, FunctionId, InstrIdx, InstrKind, Program, SymbolId};

/// Per-instruction time shares aggregated up the symbol hierarchy, plus the
/// offender queries the transform passes are guided by.
///
/// Built from whatever profiler's profile is guiding the pass — the whole
/// point of the closed loop is that a skid-prone profile (Software, NCI)
/// attributes flush time to innocent neighbours, so its `Analysis` ranks the
/// wrong offenders and the pass under-fires.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-instruction share of total time, in `[0, 1]`.
    shares: Vec<f64>,
    /// Per-block share (sum of member instructions).
    block_shares: Vec<f64>,
    /// Per-function share.
    func_shares: Vec<f64>,
}

/// One ranked rewrite opportunity, attributed back to the program symbols it
/// concerns.
#[derive(Debug, Clone, PartialEq)]
pub enum Offender {
    /// A pipeline-flushing instruction (CSR access or fence) carrying a
    /// significant time share — the hoisting candidate.
    FlushSite {
        /// The flush/fence instruction.
        idx: InstrIdx,
        /// Its containing block.
        block: BlockId,
        /// Its containing function.
        func: FunctionId,
        /// Share of total time attributed to it.
        share: f64,
    },
    /// A block absorbing a significant time share — the stall/compute hot
    /// spot fusion and splitting key off.
    HotBlock {
        /// The block.
        block: BlockId,
        /// Its containing function.
        func: FunctionId,
        /// Share of total time attributed to its instructions.
        share: f64,
    },
    /// A hot branch whose taken target out-weighs its fall-through — the
    /// relayout candidate (make the hot successor the fall-through).
    HotTakenEdge {
        /// Block ending in the branch.
        from: BlockId,
        /// The branch's taken target.
        to: BlockId,
        /// The containing function.
        func: FunctionId,
        /// Share of total time attributed to the target block.
        share: f64,
    },
}

impl Offender {
    /// The share of total time this offender accounts for.
    #[must_use]
    pub fn share(&self) -> f64 {
        match self {
            Offender::FlushSite { share, .. }
            | Offender::HotBlock { share, .. }
            | Offender::HotTakenEdge { share, .. } => *share,
        }
    }

    /// Human-readable attribution, e.g.
    /// `flush 0x10038@ceil<csr> 23.1%`.
    #[must_use]
    pub fn describe(&self, program: &Program) -> String {
        match self {
            Offender::FlushSite {
                idx, func, share, ..
            } => {
                format!(
                    "flush {}@{}<{}> {:.1}%",
                    program.addr_of(*idx),
                    program.function(*func).name(),
                    program.instr(*idx).kind(),
                    share * 100.0
                )
            }
            Offender::HotBlock { block, func, share } => format!(
                "hot-block {}.bb{} {:.1}%",
                program.function(*func).name(),
                block.index(),
                share * 100.0
            ),
            Offender::HotTakenEdge {
                from,
                to,
                func,
                share,
            } => format!(
                "hot-edge {}.bb{}->bb{} {:.1}%",
                program.function(*func).name(),
                from.index(),
                to.index(),
                share * 100.0
            ),
        }
    }
}

impl Analysis {
    /// Builds the analysis from per-instruction time shares (`shares[i]` is
    /// instruction `i`'s fraction of total time).
    ///
    /// # Panics
    ///
    /// Panics if `shares` does not have one entry per instruction.
    #[must_use]
    pub fn new(program: &Program, shares: Vec<f64>) -> Self {
        assert_eq!(
            shares.len(),
            program.len(),
            "one share per static instruction"
        );
        let mut block_shares = vec![0.0; program.blocks().len()];
        let mut func_shares = vec![0.0; program.functions().len()];
        for (i, &s) in shares.iter().enumerate() {
            let idx = InstrIdx::new(i as u32);
            block_shares[program.block_of(idx).index()] += s;
            func_shares[program.function_of(idx).index()] += s;
        }
        Analysis {
            shares,
            block_shares,
            func_shares,
        }
    }

    /// Builds the analysis from an instruction-granularity [`Profile`]
    /// (symbol `i` is instruction `i`).
    ///
    /// [`Profile`]: tip_core::Profile
    ///
    /// # Panics
    ///
    /// Panics if the profile is not at instruction granularity for this
    /// program.
    #[must_use]
    pub fn from_profile(program: &Program, profile: &tip_core::Profile) -> Self {
        assert_eq!(
            profile.granularity(),
            tip_isa::Granularity::Instruction,
            "pgo analysis needs an instruction-granularity profile"
        );
        let shares = (0..program.len())
            .map(|i| profile.share(SymbolId(i as u32)))
            .collect();
        Analysis::new(program, shares)
    }

    /// Instruction `idx`'s share of total time.
    #[must_use]
    pub fn instr_share(&self, idx: InstrIdx) -> f64 {
        self.shares[idx.index()]
    }

    /// Block `id`'s share of total time.
    #[must_use]
    pub fn block_share(&self, id: BlockId) -> f64 {
        self.block_shares[id.index()]
    }

    /// Function `id`'s share of total time.
    #[must_use]
    pub fn func_share(&self, id: FunctionId) -> f64 {
        self.func_shares[id.index()]
    }

    /// Flush/fence instructions with share at least `threshold`, hottest
    /// first.
    #[must_use]
    pub fn hot_flushes(&self, program: &Program, threshold: f64) -> Vec<(InstrIdx, f64)> {
        let mut out: Vec<(InstrIdx, f64)> = program
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, instr)| matches!(instr.kind(), InstrKind::CsrFlush | InstrKind::Fence))
            .map(|(i, _)| (InstrIdx::new(i as u32), self.shares[i]))
            .filter(|&(_, s)| s >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Blocks with share at least `threshold`, hottest first.
    #[must_use]
    pub fn hot_blocks(&self, program: &Program, threshold: f64) -> Vec<(BlockId, f64)> {
        let mut out: Vec<(BlockId, f64)> = program
            .blocks()
            .iter()
            .map(|b| (b.id(), self.block_shares[b.id().index()]))
            .filter(|&(_, s)| s >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Branches whose taken-target block out-weighs their fall-through
    /// successor by at least `margin` (and is not already the fall-through),
    /// hottest target first. These are the edges hot-path reordering turns
    /// into fall-throughs.
    #[must_use]
    pub fn hot_taken_edges(&self, program: &Program, margin: f64) -> Vec<Offender> {
        let mut out = Vec::new();
        for block in program.blocks() {
            let last = &program.instrs()[block.instr_range().end - 1];
            if last.kind() != InstrKind::Branch {
                continue;
            }
            let Some(target) = last.taken_target() else {
                continue;
            };
            // The fall-through successor is positional: the next block
            // (validation guarantees one exists for branch-ended blocks).
            let Some(ft_block) = program.blocks().get(block.id().index() + 1) else {
                continue;
            };
            let ft = ft_block.id();
            if target == ft {
                continue;
            }
            let target_share = self.block_shares[target.index()];
            let ft_share = self.block_shares[ft.index()];
            if target_share >= ft_share + margin {
                out.push(Offender::HotTakenEdge {
                    from: block.id(),
                    to: target,
                    func: block.function(),
                    share: target_share,
                });
            }
        }
        out.sort_by(|a, b| b.share().total_cmp(&a.share()));
        out
    }

    /// The top `limit` offenders across all classes, hottest first — the
    /// report the closed-loop driver prints before transforming.
    #[must_use]
    pub fn ranked_offenders(&self, program: &Program, limit: usize) -> Vec<Offender> {
        let mut out: Vec<Offender> = Vec::new();
        for (idx, share) in self.hot_flushes(program, 1e-6) {
            out.push(Offender::FlushSite {
                idx,
                block: program.block_of(idx),
                func: program.function_of(idx),
                share,
            });
        }
        for (block, share) in self.hot_blocks(program, 1e-6) {
            out.push(Offender::HotBlock {
                block,
                func: program.block(block).function(),
                share,
            });
        }
        out.extend(self.hot_taken_edges(program, 1e-6));
        out.sort_by(|a, b| b.share().total_cmp(&a.share()));
        out.truncate(limit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::{BranchBehavior, Instr, ProgramBuilder, Reg};

    fn flushy_loop() -> Program {
        let mut b = ProgramBuilder::named("flushy");
        let main = b.function("main");
        let body = b.block(main);
        b.push(body, Instr::csr_flush());
        b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            body,
            Instr::branch(body, BranchBehavior::Loop { taken_iters: 100 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    #[test]
    fn flush_ranking_and_aggregation() {
        let p = flushy_loop();
        // The flush owns 70% of time, the alu 20%, the branch 10%.
        let a = Analysis::new(&p, vec![0.7, 0.2, 0.1, 0.0]);
        let flushes = a.hot_flushes(&p, 0.01);
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].0, InstrIdx::new(0));
        assert!(a.block_share(p.block_of(InstrIdx::new(0))) > 0.99);
        assert!(a.func_share(p.entry()) > 0.99);

        let top = a.ranked_offenders(&p, 3);
        assert!(matches!(top[0], Offender::HotBlock { .. }));
        // The loop back-edge (share 1.0) outranks the flush site (0.7).
        assert!(matches!(top[1], Offender::HotTakenEdge { .. }));
        assert!(matches!(top[2], Offender::FlushSite { .. }));
        assert!(!top[2].describe(&p).is_empty());
    }

    #[test]
    fn skid_hides_the_flush() {
        let p = flushy_loop();
        // An NCI-like profile attributes the flush's time to the *next*
        // committing instruction: the alu absorbs it all.
        let a = Analysis::new(&p, vec![0.01, 0.89, 0.1, 0.0]);
        assert!(a.hot_flushes(&p, 0.05).is_empty());
    }
}
