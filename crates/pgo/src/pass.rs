//! The staged PGO pass: rewrite pipeline with profile re-attribution.

use crate::analysis::Analysis;
use crate::transform;
use tip_isa::{EditError, Granularity, Program, Provenance, SymbolId};

/// Thresholds and stage toggles for [`PgoPass`].
///
/// Shares are fractions of total time in `[0, 1]`; the defaults are tuned so
/// a time-proportional profile of the imagick workload fires the flush hoist
/// while a skid-prone profile of the same run does not.
#[derive(Debug, Clone)]
pub struct PgoConfig {
    /// Minimum share for a flush/fence instruction to be hoisted.
    pub flush_share_threshold: f64,
    /// Minimum block share for ALU-pair fusion to scan the block.
    pub fuse_block_share_threshold: f64,
    /// How much hotter a taken target must be than the fall-through before
    /// hot-path reordering diverts to it.
    pub reorder_margin: f64,
    /// Maximum share for a block to count as cold for hot/cold splitting.
    pub cold_share_threshold: f64,
    /// When hoisting flushes, also place one dominating flush copy in a
    /// preheader block prepended to the entry function.
    ///
    /// The modeled `csr` / `fence` instructions are architecturally inert
    /// (no operands, no results — they only serialize the pipeline), so
    /// plain in-place elision is semantics-preserving and is the default;
    /// it mirrors the paper's source fix, whose point was precisely that
    /// imagick's status-flag accesses were unnecessary. Enable this for the
    /// conservative reading where CSR state must still be established once:
    /// it costs one extra block at the program's lowest addresses, which
    /// shifts every later instruction by one slot and perturbs fetch
    /// alignment.
    pub hoist_dominating_copy: bool,
    /// Enable flush hoisting.
    pub hoist: bool,
    /// Enable ALU-pair fusion.
    pub fuse: bool,
    /// Enable hot-path block reordering.
    pub reorder: bool,
    /// Enable hot/cold block splitting.
    pub split: bool,
}

impl Default for PgoConfig {
    fn default() -> Self {
        PgoConfig {
            flush_share_threshold: 0.01,
            fuse_block_share_threshold: 0.005,
            reorder_margin: 0.01,
            cold_share_threshold: 1e-4,
            hoist_dominating_copy: false,
            hoist: true,
            fuse: true,
            reorder: true,
            split: true,
        }
    }
}

/// Why [`PgoPass::apply`] refused or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PgoError {
    /// The guiding profile is not at instruction granularity.
    WrongGranularity(Granularity),
    /// The profile's symbol count does not match the program's instruction
    /// count — it was taken over a different program (or a different layout
    /// of this one).
    LengthMismatch {
        /// Instructions in the program being optimized.
        program: usize,
        /// Symbols in the guiding profile.
        profile: usize,
    },
    /// A rewrite stage failed to re-assemble the program.
    Edit(EditError),
}

impl std::fmt::Display for PgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgoError::WrongGranularity(g) => {
                write!(f, "pgo needs an instruction-granularity profile, got {g:?}")
            }
            PgoError::LengthMismatch { program, profile } => write!(
                f,
                "profile has {profile} symbols but the program has {program} instructions"
            ),
            PgoError::Edit(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for PgoError {}

impl From<EditError> for PgoError {
    fn from(e: EditError) -> Self {
        PgoError::Edit(e)
    }
}

/// The outcome of a full pass pipeline run.
#[derive(Debug, Clone)]
pub struct PgoResult {
    /// The optimized program (equal to the input if nothing fired).
    pub program: Program,
    /// Maps the optimized program's instructions back to the input's.
    pub provenance: Provenance,
    /// One `[stage] action` line per transformation applied.
    pub actions: Vec<String>,
}

impl PgoResult {
    /// Whether any rewrite actually fired.
    #[must_use]
    pub fn changed(&self) -> bool {
        !self.actions.is_empty()
    }
}

/// The profile-guided rewrite pipeline.
///
/// Stages run in a fixed order (hoist → fuse → reorder → split); after each
/// stage that fires, the guiding profile's per-instruction weights are folded
/// through the stage's [`Provenance`] so the next stage sees shares
/// attributed onto the *current* program, not the original layout.
#[derive(Debug, Clone, Default)]
pub struct PgoPass {
    config: PgoConfig,
}

impl PgoPass {
    /// Creates a pass with the given configuration.
    #[must_use]
    pub fn new(config: PgoConfig) -> Self {
        PgoPass { config }
    }

    /// The pass configuration.
    #[must_use]
    pub fn config(&self) -> &PgoConfig {
        &self.config
    }

    /// Runs the pipeline guided by an instruction-granularity profile of
    /// `program`.
    ///
    /// # Errors
    ///
    /// [`PgoError::WrongGranularity`] / [`PgoError::LengthMismatch`] if the
    /// profile does not describe `program` per-instruction;
    /// [`PgoError::Edit`] if a rewrite fails to re-assemble.
    pub fn apply(
        &self,
        program: &Program,
        profile: &tip_core::Profile,
    ) -> Result<PgoResult, PgoError> {
        if profile.granularity() != Granularity::Instruction {
            return Err(PgoError::WrongGranularity(profile.granularity()));
        }
        if profile.weights().len() != program.len() {
            return Err(PgoError::LengthMismatch {
                program: program.len(),
                profile: profile.weights().len(),
            });
        }
        let shares: Vec<f64> = (0..program.len())
            .map(|i| profile.share(SymbolId(i as u32)))
            .collect();
        self.apply_with_shares(program, &shares)
    }

    /// Runs the pipeline guided by raw per-instruction time shares
    /// (`shares[i]` is instruction `i`'s fraction of total time).
    ///
    /// # Errors
    ///
    /// [`PgoError::LengthMismatch`] if `shares` is not one entry per
    /// instruction; [`PgoError::Edit`] if a rewrite fails to re-assemble.
    pub fn apply_with_shares(
        &self,
        program: &Program,
        shares: &[f64],
    ) -> Result<PgoResult, PgoError> {
        if shares.len() != program.len() {
            return Err(PgoError::LengthMismatch {
                program: program.len(),
                profile: shares.len(),
            });
        }
        let mut current = program.clone();
        let mut prov = Provenance::identity(program.len());
        let mut actions = Vec::new();
        for (name, stage) in transform::pipeline(&self.config) {
            let analysis = Analysis::new(&current, prov.fold_weights(shares));
            if let Some(rw) = stage(&current, &analysis, &self.config)? {
                prov = Provenance::compose(&prov, &rw.provenance);
                current = rw.program;
                actions.extend(rw.actions.into_iter().map(|a| format!("[{name}] {a}")));
            }
        }
        Ok(PgoResult {
            program: current,
            provenance: prov,
            actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_equivalence;
    use tip_isa::{BranchBehavior, Instr, ProgramBuilder, Reg};

    /// A hot loop carrying a flush, a fusable dependent ALU pair, and a cold
    /// error block — every stage has something to do.
    fn rich_program() -> Program {
        let mut b = ProgramBuilder::named("rich");
        let main = b.function("main");
        let body = b.block(main);
        let cold = b.block(main);
        let exit = b.block(main);
        b.push(body, Instr::csr_flush());
        b.push(
            body,
            Instr::int_alu(Some(Reg::int(1)), [Some(Reg::int(2)), None]),
        );
        b.push(
            body,
            Instr::int_alu(Some(Reg::int(3)), [Some(Reg::int(1)), None]),
        );
        b.push(
            body,
            Instr::branch(body, BranchBehavior::Loop { taken_iters: 50 }),
        );
        b.push(cold, Instr::int_alu(Some(Reg::int(4)), [None, None]));
        b.push(cold, Instr::jump(exit));
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    #[test]
    fn full_pipeline_fires_and_preserves_semantics() {
        let p = rich_program();
        // A time-proportional attribution: the flush dominates.
        let mut shares = vec![0.0; p.len()];
        shares[0] = 0.6; // csr flush
        shares[1] = 0.15;
        shares[2] = 0.15;
        shares[3] = 0.1; // branch
        let result = PgoPass::default()
            .apply_with_shares(&p, &shares)
            .expect("pass runs");
        assert!(result.changed());
        assert!(
            result
                .actions
                .iter()
                .any(|a| a.starts_with("[hoist-flushes]")),
            "{:?}",
            result.actions
        );
        assert!(
            result
                .actions
                .iter()
                .any(|a| a.starts_with("[fuse-alu-pairs]")),
            "{:?}",
            result.actions
        );
        for seed in [1, 7, 99] {
            check_equivalence(&p, &result.program, &result.provenance, seed, 100_000)
                .expect("rewrites preserve the architectural stream");
        }
    }

    #[test]
    fn skid_profile_underfires() {
        let p = rich_program();
        // NCI-style skid: the flush's time lands on the next instruction.
        let mut shares = vec![0.0; p.len()];
        shares[0] = 0.005;
        shares[1] = 0.755;
        shares[2] = 0.14;
        shares[3] = 0.1;
        let result = PgoPass::default()
            .apply_with_shares(&p, &shares)
            .expect("pass runs");
        assert!(
            !result
                .actions
                .iter()
                .any(|a| a.starts_with("[hoist-flushes]")),
            "skid attribution must hide the flush: {:?}",
            result.actions
        );
    }

    #[test]
    fn length_mismatch_is_typed() {
        let p = rich_program();
        let err = PgoPass::default().apply_with_shares(&p, &[0.5]);
        assert!(matches!(err, Err(PgoError::LengthMismatch { .. })));
    }
}
