//! Observational equivalence: does a rewritten program retire the same
//! architectural work as the original?
//!
//! The two programs are executed in lockstep (same seed — behaviour keys
//! make branch directions and effective addresses replay identically for
//! moved code) and reduced to a stream of *observable records*:
//!
//! - layout-only kinds (`Jump`, `Nop`, `CsrFlush`, `Fence`) are dropped —
//!   rewrites are allowed to add, remove, and move them;
//! - `Branch` is dropped too: hot-path reordering legitimately inverts a
//!   branch's polarity, so its taken bit is not an architectural observable
//!   (the *consequences* — which instructions execute next — still are);
//! - everything else (`IntAlu`, muls/divs, FP, `Load`, `Store`, `Call`,
//!   `Ret`, `Halt`) becomes one record of `(original InstrIdx, effective
//!   address)`, with the rewritten side mapped back through its
//!   [`Provenance`]: a moved instruction yields its single origin plus its
//!   own effective address, a fused pair expands to its origins in order,
//!   and inserted instructions (zero origins) are skipped.
//!
//! Equivalence holds when the two record streams are identical up to the
//! record cap (streams may be unbounded: loops with `Bernoulli` exits run
//! until the cap).

use tip_isa::{Executor, InstrIdx, InstrKind, Program, Provenance};

/// Why two programs were found inequivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The streams disagree at observable record `at` (0-based).
    Mismatch {
        /// Index of the first differing record.
        at: u64,
        /// What differed, e.g. `original i12 @0x40, rewritten i12 @0x48`.
        detail: String,
    },
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::Mismatch { at, detail } => {
                write!(f, "streams diverge at observable record {at}: {detail}")
            }
        }
    }
}

impl std::error::Error for EquivError {}

/// One architectural observable: an execution of original instruction
/// `origin`, touching `mem` if it is a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Obs {
    origin: InstrIdx,
    mem: Option<u64>,
}

fn observable(kind: InstrKind) -> bool {
    !matches!(
        kind,
        InstrKind::Jump
            | InstrKind::Nop
            | InstrKind::CsrFlush
            | InstrKind::Fence
            | InstrKind::Branch
    )
}

/// Observable-record stream of the original program: identity origins.
struct OrigStream<'p> {
    exec: Executor<'p>,
}

impl Iterator for OrigStream<'_> {
    type Item = Obs;

    fn next(&mut self) -> Option<Obs> {
        self.exec.by_ref().find_map(|d| {
            observable(d.kind).then_some(Obs {
                origin: d.idx,
                mem: d.mem_addr,
            })
        })
    }
}

/// Observable-record stream of the rewritten program: origins through the
/// provenance map, fused instructions expanded in origin order.
struct RewrittenStream<'p> {
    exec: Executor<'p>,
    provenance: &'p Provenance,
    pending: std::collections::VecDeque<Obs>,
}

impl Iterator for RewrittenStream<'_> {
    type Item = Obs;

    fn next(&mut self) -> Option<Obs> {
        loop {
            if let Some(obs) = self.pending.pop_front() {
                return Some(obs);
            }
            let d = self.exec.next()?;
            if !observable(d.kind) {
                continue;
            }
            let origins = self.provenance.origins(d.idx);
            match origins {
                [] => continue, // inserted instruction: no architectural claim
                [one] => {
                    return Some(Obs {
                        origin: *one,
                        mem: d.mem_addr,
                    })
                }
                many => {
                    // A fused instruction stands for several originals; none
                    // of the fusable kinds touch memory.
                    self.pending
                        .extend(many.iter().map(|&origin| Obs { origin, mem: None }));
                }
            }
        }
    }
}

/// Checks that `rewritten` (with `provenance` mapping it back to `original`)
/// retires the identical architectural record stream as `original` under
/// `seed`, comparing up to `max_records` observables per side.
///
/// Both streams ending together — or both still running at the cap — is
/// equivalence; any record mismatch or one-sided termination is not.
///
/// # Errors
///
/// [`EquivError::Mismatch`] describing the first divergence.
pub fn check_equivalence(
    original: &Program,
    rewritten: &Program,
    provenance: &Provenance,
    seed: u64,
    max_records: u64,
) -> Result<(), EquivError> {
    let mut orig = OrigStream {
        exec: Executor::new(original, seed),
    };
    let mut rew = RewrittenStream {
        exec: Executor::new(rewritten, seed),
        provenance,
        pending: std::collections::VecDeque::new(),
    };
    for at in 0..max_records {
        match (orig.next(), rew.next()) {
            (None, None) => return Ok(()),
            (Some(a), Some(b)) if a == b => {}
            (Some(a), Some(b)) => {
                return Err(EquivError::Mismatch {
                    at,
                    detail: format!(
                        "original i{}@{:?}, rewritten claims i{}@{:?}",
                        a.origin.index(),
                        a.mem,
                        b.origin.index(),
                        b.mem
                    ),
                })
            }
            (Some(a), None) => {
                return Err(EquivError::Mismatch {
                    at,
                    detail: format!(
                        "rewritten halted early; original still at i{}",
                        a.origin.index()
                    ),
                })
            }
            (None, Some(b)) => {
                return Err(EquivError::Mismatch {
                    at,
                    detail: format!(
                        "original halted early; rewritten still claims i{}",
                        b.origin.index()
                    ),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_isa::{BranchBehavior, Instr, ProgramBuilder, ProgramEditor, Reg};

    fn two_block_loop() -> Program {
        let mut b = ProgramBuilder::named("loopy");
        let main = b.function("main");
        let body = b.block(main);
        b.push(body, Instr::csr_flush());
        b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            body,
            Instr::branch(body, BranchBehavior::Loop { taken_iters: 10 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    #[test]
    fn identity_is_equivalent() {
        let p = two_block_loop();
        let prov = Provenance::identity(p.len());
        check_equivalence(&p, &p, &prov, 7, 10_000).expect("identical programs");
    }

    #[test]
    fn hoisted_flush_is_equivalent() {
        let p = two_block_loop();
        let mut e = ProgramEditor::new(&p);
        let body = ProgramEditor::key_of(p.block_of(InstrIdx::new(0)));
        e.remove_instr(body, 0).expect("remove flush");
        e.insert_instr(body, 0, Instr::csr_flush()).expect("insert");
        let (rewritten, prov) = e.finish().expect("finish");
        check_equivalence(&p, &rewritten, &prov, 7, 10_000).expect("flush moves are invisible");
    }

    #[test]
    fn dropping_real_work_is_caught() {
        let p = two_block_loop();
        let mut e = ProgramEditor::new(&p);
        let body = ProgramEditor::key_of(p.block_of(InstrIdx::new(0)));
        // Deleting the ALU changes the architectural stream.
        e.remove_instr(body, 1).expect("remove alu");
        let (rewritten, prov) = e.finish().expect("finish");
        let err = check_equivalence(&p, &rewritten, &prov, 7, 10_000);
        assert!(matches!(err, Err(EquivError::Mismatch { .. })), "{err:?}");
    }
}
