//! End-to-end: a real simulation's trace round-trips bit-exactly, and
//! profilers evaluated from the replayed trace produce identical results to
//! online evaluation — the paper's out-of-band methodology.

use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig, CycleRecord, TraceSink};
use tip_trace::{TraceReader, TraceWriter};
use tip_workloads::{benchmark, SuiteScale};

#[derive(Default)]
struct Collect(Vec<CycleRecord>);
impl TraceSink for Collect {
    fn on_cycle(&mut self, r: &CycleRecord) {
        self.0.push(r.clone());
    }
}

#[test]
fn real_trace_round_trips_exactly() {
    let bench = benchmark("imagick", SuiteScale::Test);
    let mut buf = Vec::new();
    let mut collect = Collect::default();
    {
        let mut writer = TraceWriter::new(&mut buf);
        let mut both = (&mut writer, &mut collect);
        let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
        core.run(&mut both, 100_000_000);
        writer.flush().expect("flush");
    }
    let decoded: Vec<CycleRecord> = TraceReader::new(buf.as_slice())
        .collect::<Result<_, _>>()
        .expect("decode");
    assert_eq!(decoded, collect.0);
}

#[test]
fn out_of_band_profiling_matches_online() {
    let bench = benchmark("povray", SuiteScale::Test);
    let profilers = [ProfilerId::Tip, ProfilerId::Nci, ProfilerId::Lci];
    let sampler = SamplerConfig::periodic(101);

    // Online: bank attached to the core.
    let mut online = ProfilerBank::new(&bench.program, sampler, &profilers);
    let mut buf = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut buf);
        let mut both = (&mut writer, &mut online);
        let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
        core.run(&mut both, 100_000_000);
        writer.flush().expect("flush");
    }
    let online = online.finish();

    // Out of band: bank fed from the decoded trace.
    let mut offline = ProfilerBank::new(&bench.program, sampler, &profilers);
    TraceReader::new(buf.as_slice())
        .replay_into(&mut offline)
        .expect("replay");
    let offline = offline.finish();

    assert_eq!(online.total_cycles, offline.total_cycles);
    for id in profilers {
        for g in [Granularity::Instruction, Granularity::Function] {
            let a = online.error_of(&bench.program, id, g);
            let b = offline.error_of(&bench.program, id, g);
            assert!(
                (a - b).abs() < 1e-12,
                "{id} at {g}: online {a} vs offline {b}"
            );
        }
    }
}

#[test]
fn trace_data_rate_matches_the_papers_argument() {
    // The encoded stream runs at tens of bytes per cycle; at 3.2 GHz that
    // is tens of GB/s — the reason Oracle-style tracing is impractical and
    // TIP samples instead.
    let bench = benchmark("x264", SuiteScale::Test);
    let mut buf = Vec::new();
    let mut writer = TraceWriter::new(&mut buf);
    let mut core = Core::new(&bench.program, CoreConfig::default(), 7);
    core.run(&mut writer, 100_000_000);
    writer.flush().expect("flush");

    let bpc = writer.bytes_per_cycle();
    assert!(
        bpc > 6.0,
        "even compacted, the trace is heavy: {bpc:.1} B/cycle"
    );
    let gb_per_s = bpc * 3.2; // at 3.2 GHz
    assert!(
        gb_per_s > 20.0,
        "{gb_per_s:.1} GB/s: same order as the paper's 179 GB/s argument"
    );
}
