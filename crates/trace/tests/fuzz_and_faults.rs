//! Robustness: the decoder must never panic, whatever the bytes, and every
//! [`FaultPlan`] corruption mode must round-trip into a structured report
//! rather than a crash.

use proptest::prelude::*;
use tip_core::{ProfilerBank, ProfilerId, SamplerConfig};
use tip_isa::Granularity;
use tip_ooo::{Core, CoreConfig, CycleRecord, TraceSink};
use tip_trace::{decode_record, Fault, FaultPlan, TraceReader, TraceWriter};
use tip_workloads::{benchmark, SuiteScale};

#[derive(Default)]
struct Collect(Vec<CycleRecord>);
impl TraceSink for Collect {
    fn on_cycle(&mut self, r: &CycleRecord) {
        self.0.push(r.clone());
    }
}

/// A small but real encoded trace (deliberately tiny chunks so damage
/// isolates to a minority of the stream).
fn encoded_trace(chunk_bytes: usize) -> (Vec<u8>, u64) {
    let bench = benchmark("exchange2", SuiteScale::Test);
    let mut writer = TraceWriter::with_chunk_size(Vec::new(), chunk_bytes);
    let mut core = Core::new(&bench.program, CoreConfig::default(), 3);
    let summary = core.run(&mut writer, 100_000_000);
    writer.flush().expect("flush");
    (writer.into_inner().expect("in-memory"), summary.cycles)
}

proptest! {
    /// The stream decoder survives completely arbitrary input: any mix of
    /// garbage magic, headers, and payload yields `Ok` records or a typed
    /// error, never a panic or out-of-bounds access.
    #[test]
    fn reader_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(0u32..256, 0usize..2048),
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = TraceReader::new(bytes.as_slice()).collect::<Result<Vec<_>, _>>();
        let mut sink = Collect::default();
        let _ = TraceReader::new(bytes.as_slice()).replay_recovering(&mut sink);
    }

    /// The record decoder itself (below the framing layer) is panic-free on
    /// arbitrary bytes too — `KINDS[code]`-style indexing and mask handling
    /// must bounds-check, not crash.
    #[test]
    fn record_decoder_never_panics_on_arbitrary_bytes(
        raw in proptest::collection::vec(0u32..256, 0usize..256),
        cycle in 0u64..1_000_000,
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let mut slice = bytes.as_slice();
        let _ = decode_record(&mut slice, cycle);
    }

    /// A real trace damaged by a random seeded fault plan still replays
    /// without panicking, and the report never claims more records than
    /// were written.
    #[test]
    fn damaged_real_trace_reports_instead_of_panicking(
        seed in 0u64..64,
        bits in 1u32..128,
    ) {
        let (mut bytes, cycles) = encoded_trace(2048);
        FaultPlan::new(seed, vec![Fault::FlipBits { bits }]).apply_bytes(&mut bytes);
        let mut sink = Collect::default();
        if let Ok(report) = TraceReader::new(bytes.as_slice()).replay_recovering(&mut sink) {
            prop_assert!(report.records <= cycles);
            prop_assert_eq!(report.records as usize, sink.0.len());
            if let Some(last) = report.last_cycle {
                prop_assert!(last < cycles);
            }
        }
    }
}

/// Byte-level corruption modes: each must produce a structured recovery
/// report with sane invariants.
#[test]
fn every_byte_fault_mode_round_trips_to_a_report() {
    let (clean, cycles) = encoded_trace(2048);
    let modes = [
        Fault::FlipBits { bits: 24 },
        Fault::CorruptRun { len: 300 },
        Fault::Truncate { keep_fraction: 0.6 },
    ];
    for fault in modes {
        let mut bytes = clean.clone();
        FaultPlan::new(99, vec![fault]).apply_bytes(&mut bytes);
        let mut sink = Collect::default();
        let report = TraceReader::new(bytes.as_slice())
            .replay_recovering(&mut sink)
            .unwrap_or_else(|e| panic!("{fault:?}: header unexpectedly destroyed: {e}"));
        assert!(report.records <= cycles, "{fault:?}");
        assert_eq!(report.records as usize, sink.0.len(), "{fault:?}");
        assert!(!report.is_clean(), "{fault:?}: damage must be reported");
        // Replayed cycles are strictly increasing — skipping a chunk must
        // never double-deliver or reorder.
        assert!(
            sink.0.windows(2).all(|w| w[0].cycle < w[1].cycle),
            "{fault:?}: cycle order broken"
        );
        if let Fault::Truncate { .. } = fault {
            assert!(report.truncated, "truncation must be flagged");
        }
    }
}

/// Record-level corruption modes: profile evaluation over a faulty stream
/// still yields finite, bounded errors (graceful degradation, no NaN).
#[test]
fn every_record_fault_mode_keeps_profile_errors_finite() {
    let bench = benchmark("imagick", SuiteScale::Test);
    let profilers = [ProfilerId::Tip, ProfilerId::Nci];
    let modes = [
        Fault::DropCycles { one_in: 40 },
        Fault::FlipCommitFlags { one_in: 40 },
    ];
    for fault in modes {
        let plan = FaultPlan::new(5, vec![fault]);
        let bank = ProfilerBank::new(&bench.program, SamplerConfig::periodic(149), &profilers);
        let mut sink = plan.wrap_sink(bank);
        let mut core = Core::new(&bench.program, CoreConfig::default(), 2);
        core.run(&mut sink, 100_000_000);
        assert!(
            sink.dropped() + sink.flipped() > 0,
            "{fault:?}: fault armed"
        );
        let result = sink.into_inner().finish();
        for p in profilers {
            for g in [Granularity::Instruction, Granularity::Function] {
                let err = result.error_of(&bench.program, p, g);
                assert!(
                    err.is_finite() && (0.0..=1.0).contains(&err),
                    "{fault:?}: {p:?}/{g:?} error {err} out of bounds"
                );
            }
        }
    }
}

/// Dropped cycles survive the full encode→decode round trip: the written
/// trace holds exactly the records the faulty sink passed through.
#[test]
fn dropped_cycles_round_trip_through_the_writer() {
    let bench = benchmark("exchange2", SuiteScale::Test);
    let plan = FaultPlan::new(6, vec![Fault::DropCycles { one_in: 10 }]);
    let mut sink = plan.wrap_sink(TraceWriter::with_chunk_size(Vec::new(), 2048));
    let mut core = Core::new(&bench.program, CoreConfig::default(), 4);
    let summary = core.run(&mut sink, 100_000_000);
    let dropped = sink.dropped();
    assert!(dropped > 0);
    let mut writer = sink.into_inner();
    writer.flush().expect("flush");
    let bytes = writer.into_inner().expect("in-memory");
    let decoded: Vec<CycleRecord> = TraceReader::new(bytes.as_slice())
        .collect::<Result<_, _>>()
        .expect("gaps in cycle numbering are legal, the stream itself is intact");
    assert_eq!(decoded.len() as u64, summary.cycles - dropped);
}
