//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes a reproducible set of faults to inject into a
//! trace pipeline, at two levels:
//!
//! - **record-level** faults ([`Fault::DropCycles`],
//!   [`Fault::FlipCommitFlags`]) perturb [`CycleRecord`]s in flight, between
//!   the core and whatever sink consumes them — apply them by wrapping the
//!   sink in a [`FaultySink`];
//! - **byte-level** faults ([`Fault::FlipBits`], [`Fault::CorruptRun`],
//!   [`Fault::Truncate`]) damage an encoded stream in place — apply them to
//!   a byte buffer with [`FaultPlan::apply_bytes`].
//!
//! [`Fault::ForcePanic`] is a marker interpreted by the experiment-campaign
//! layer (it makes a workload panic mid-run); the trace layer ignores it.
//! **Snapshot-level** faults ([`Fault::StaleSnapshotHeader`], plus the
//! byte-level ones) damage an encoded `TIPS` checkpoint — apply them with
//! [`FaultPlan::apply_snapshot`] to verify that restore rejects the damage.
//!
//! Everything is seeded: the same plan over the same input injects the same
//! faults, so chaos tests are reproducible failures, not flakes.

use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};
use tip_ooo::{CycleRecord, TraceSink};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Byte-level: flip `bits` randomly chosen bits anywhere in the stream.
    FlipBits {
        /// Number of bits to flip.
        bits: u32,
    },
    /// Byte-level: overwrite `len` consecutive bytes at a random offset
    /// with random garbage.
    CorruptRun {
        /// Length of the damaged run.
        len: u32,
    },
    /// Byte-level: cut the stream down to `keep_fraction` of its length
    /// (clamped to `[0, 1]`).
    Truncate {
        /// Fraction of the stream to keep.
        keep_fraction: f64,
    },
    /// Record-level: silently drop roughly one in `one_in` cycles before
    /// they reach the sink.
    DropCycles {
        /// Mean dropping period (`0` and `1` drop every cycle).
        one_in: u32,
    },
    /// Record-level: toggle a commit flag on roughly one in `one_in`
    /// records — a committing bank stops committing, a valid idle bank
    /// starts, or the committed count is clipped.
    FlipCommitFlags {
        /// Mean flipping period (`0` and `1` hit every cycle).
        one_in: u32,
    },
    /// Campaign-level marker: force the workload to panic mid-run. Ignored
    /// by the trace layer; interpreted by `tip-bench`'s campaign runner.
    ForcePanic,
    /// Snapshot-level: overwrite a `TIPS` checkpoint's version field with an
    /// unsupported value, simulating a stale snapshot left behind by an
    /// older (or newer) build. Applied by [`FaultPlan::apply_snapshot`];
    /// [`FaultPlan::apply_bytes`] ignores it.
    StaleSnapshotHeader,
    /// Wire-level: silently drop roughly one in `one_in` forwarded chunks.
    /// Interpreted by `tip-serve`'s chaosnet proxy; ignored here.
    DropChunks {
        /// Mean dropping period (`0` and `1` drop every chunk).
        one_in: u32,
    },
    /// Wire-level: delay roughly one in `one_in` forwarded chunks by `ms`
    /// milliseconds. Interpreted by the chaosnet proxy; ignored here.
    DelayChunks {
        /// Mean delay period (`0` and `1` delay every chunk).
        one_in: u32,
        /// Delay per hit, milliseconds.
        ms: u32,
    },
    /// Wire-level: corrupt one byte in roughly one in `one_in` forwarded
    /// chunks (a wire bit-flip the CRC framing must catch). Interpreted by
    /// the chaosnet proxy; ignored here.
    CorruptChunks {
        /// Mean corruption period (`0` and `1` hit every chunk).
        one_in: u32,
    },
    /// Wire-level: forward in pieces of at most `max` bytes (slow-loris
    /// style partial writes splitting frames across reads). Interpreted by
    /// the chaosnet proxy; ignored here.
    SplitChunks {
        /// Largest forwarded piece (`0` behaves as `1`).
        max: u32,
    },
    /// Wire-level: hard-drop the connection after roughly `after_bytes`
    /// forwarded bytes — a mid-stream disconnect, truncating whatever frame
    /// is in flight. Interpreted by the chaosnet proxy; ignored here.
    Disconnect {
        /// Bytes forwarded before the cut.
        after_bytes: u64,
    },
    /// Wire-level: half-close the faulted direction after roughly
    /// `after_bytes` forwarded bytes, leaving the opposite direction open.
    /// Interpreted by the chaosnet proxy; ignored here.
    HalfClose {
        /// Bytes forwarded before the half-close.
        after_bytes: u64,
    },
}

impl Fault {
    /// Whether this fault acts on a live wire (chaosnet proxy) rather than
    /// on buffered bytes, records, or snapshots.
    #[must_use]
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            Fault::DropChunks { .. }
                | Fault::DelayChunks { .. }
                | Fault::CorruptChunks { .. }
                | Fault::SplitChunks { .. }
                | Fault::Disconnect { .. }
                | Fault::HalfClose { .. }
        )
    }
}

/// A reproducible set of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all randomness the plan uses.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting `faults` with randomness derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, faults: Vec<Fault>) -> Self {
        FaultPlan { seed, faults }
    }

    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Whether the plan asks the campaign layer to force a panic.
    #[must_use]
    pub fn forces_panic(&self) -> bool {
        self.faults.contains(&Fault::ForcePanic)
    }

    /// Applies the plan's byte-level faults to `bytes` in place.
    ///
    /// Record-level and campaign-level faults are ignored here.
    pub fn apply_bytes(&self, bytes: &mut Vec<u8>) {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xb17e_5eed);
        for fault in &self.faults {
            match *fault {
                Fault::FlipBits { bits } => {
                    for _ in 0..bits {
                        if bytes.is_empty() {
                            break;
                        }
                        let at = rng.random_range(0..bytes.len());
                        bytes[at] ^= 1 << rng.random_range(0u32..8);
                    }
                }
                Fault::CorruptRun { len } => {
                    if bytes.is_empty() {
                        continue;
                    }
                    let at = rng.random_range(0..bytes.len());
                    let end = (at + len as usize).min(bytes.len());
                    for b in &mut bytes[at..end] {
                        *b = (rng.next_u64() & 0xff) as u8;
                    }
                }
                Fault::Truncate { keep_fraction } => {
                    let keep = keep_fraction.clamp(0.0, 1.0);
                    let new_len = (bytes.len() as f64 * keep) as usize;
                    bytes.truncate(new_len);
                }
                Fault::DropCycles { .. }
                | Fault::FlipCommitFlags { .. }
                | Fault::ForcePanic
                | Fault::StaleSnapshotHeader
                | Fault::DropChunks { .. }
                | Fault::DelayChunks { .. }
                | Fault::CorruptChunks { .. }
                | Fault::SplitChunks { .. }
                | Fault::Disconnect { .. }
                | Fault::HalfClose { .. } => {}
            }
        }
    }

    /// Applies the plan's snapshot-corruption faults to an encoded `TIPS`
    /// checkpoint in place: the byte-level faults of
    /// [`apply_bytes`](Self::apply_bytes) plus
    /// [`Fault::StaleSnapshotHeader`].
    pub fn apply_snapshot(&self, bytes: &mut Vec<u8>) {
        self.apply_bytes(bytes);
        if self.faults.contains(&Fault::StaleSnapshotHeader) && bytes.len() >= 6 {
            // The version field sits at bytes 4..6 of the container header.
            bytes[4..6].copy_from_slice(&u16::MAX.to_le_bytes());
        }
    }

    /// Wraps `inner` so the plan's record-level faults perturb every cycle
    /// on its way through.
    pub fn wrap_sink<S: TraceSink>(&self, inner: S) -> FaultySink<S> {
        FaultySink {
            inner,
            rng: SmallRng::seed_from_u64(self.seed ^ 0x5111_c0de),
            drop_one_in: self.faults.iter().find_map(|f| match f {
                Fault::DropCycles { one_in } => Some((*one_in).max(1)),
                _ => None,
            }),
            flip_one_in: self.faults.iter().find_map(|f| match f {
                Fault::FlipCommitFlags { one_in } => Some((*one_in).max(1)),
                _ => None,
            }),
            dropped: 0,
            flipped: 0,
        }
    }
}

/// A [`TraceSink`] adaptor injecting a [`FaultPlan`]'s record-level faults.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    rng: SmallRng,
    drop_one_in: Option<u32>,
    flip_one_in: Option<u32>,
    dropped: u64,
    flipped: u64,
}

impl<S> FaultySink<S> {
    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Cycles silently dropped so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records whose commit flags were perturbed so far.
    #[must_use]
    pub fn flipped(&self) -> u64 {
        self.flipped
    }
}

impl<S: TraceSink> TraceSink for FaultySink<S> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        if let Some(n) = self.drop_one_in {
            if self.rng.random_range(0..n) == 0 {
                self.dropped += 1;
                return;
            }
        }
        if let Some(n) = self.flip_one_in {
            if self.rng.random_range(0..n) == 0 {
                let mut mutated = record.clone();
                self.flipped += 1;
                match self.rng.random_range(0u32..3) {
                    // A committing bank stops committing.
                    0 => {
                        if let Some(bank) = mutated.banks.iter_mut().find(|b| b.committing) {
                            bank.committing = false;
                        }
                    }
                    // A valid idle bank claims to commit.
                    1 => {
                        if let Some(bank) =
                            mutated.banks.iter_mut().find(|b| b.valid && !b.committing)
                        {
                            bank.committing = true;
                        }
                    }
                    // The committed count is clipped. The clipped entries stay
                    // in the array as dead storage — `n_committed` alone
                    // bounds what any consumer (or equality) can observe.
                    _ => {
                        if mutated.n_committed > 0 {
                            let clip =
                                self.rng.random_range(0..u32::from(mutated.n_committed)) as u8;
                            mutated.n_committed = clip;
                        }
                    }
                }
                self.inner.on_cycle(&mutated);
                return;
            }
        }
        self.inner.on_cycle(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let plan = FaultPlan::new(42, vec![Fault::FlipBits { bits: 8 }]);
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        plan.apply_bytes(&mut a);
        plan.apply_bytes(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, vec![0u8; 256], "bits actually flipped");
    }

    #[test]
    fn truncate_shortens() {
        let plan = FaultPlan::new(1, vec![Fault::Truncate { keep_fraction: 0.5 }]);
        let mut data = vec![7u8; 100];
        plan.apply_bytes(&mut data);
        assert_eq!(data.len(), 50);
    }

    #[test]
    fn corrupt_run_stays_in_bounds() {
        let plan = FaultPlan::new(2, vec![Fault::CorruptRun { len: 1_000 }]);
        let mut data = vec![0u8; 64];
        plan.apply_bytes(&mut data);
        assert_eq!(data.len(), 64);
    }

    #[test]
    fn empty_buffers_survive_all_byte_faults() {
        let plan = FaultPlan::new(
            3,
            vec![
                Fault::FlipBits { bits: 10 },
                Fault::CorruptRun { len: 10 },
                Fault::Truncate { keep_fraction: 0.5 },
            ],
        );
        let mut data = Vec::new();
        plan.apply_bytes(&mut data);
        assert!(data.is_empty());
    }

    #[test]
    fn dropping_sink_drops() {
        struct Count(u64);
        impl TraceSink for Count {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let plan = FaultPlan::new(4, vec![Fault::DropCycles { one_in: 2 }]);
        let mut sink = plan.wrap_sink(Count(0));
        for c in 0..1_000 {
            sink.on_cycle(&CycleRecord::empty(c));
        }
        assert!(sink.dropped() > 250, "dropped {}", sink.dropped());
        assert_eq!(sink.inner().0 + sink.dropped(), 1_000);
    }

    #[test]
    fn flipping_sink_preserves_record_validity() {
        // Mutated records must stay encodable and decodable: the flip
        // mutations respect the codec's structural invariants.
        use crate::codec::{decode_record, encode_record};
        struct Check;
        impl TraceSink for Check {
            fn on_cycle(&mut self, r: &CycleRecord) {
                let mut buf = Vec::new();
                encode_record(r, &mut buf).expect("encodable");
                let back = decode_record(&mut buf.as_slice(), r.cycle)
                    .expect("decodable")
                    .expect("present");
                assert_eq!(&back, r);
            }
        }
        use tip_isa::{InstrAddr, InstrIdx, InstrKind};
        use tip_ooo::{BankView, CommitView};
        let plan = FaultPlan::new(5, vec![Fault::FlipCommitFlags { one_in: 1 }]);
        let mut sink = plan.wrap_sink(Check);
        for c in 0..200 {
            let mut r = CycleRecord::empty(c);
            let idx = InstrIdx::new(c as u32);
            let addr = InstrAddr::new(tip_isa::TEXT_BASE + tip_isa::INSTR_BYTES * c);
            r.n_committed = 2;
            for slot in 0..2 {
                r.committed[slot] = CommitView {
                    addr,
                    idx,
                    kind: InstrKind::IntAlu,
                    mispredicted: false,
                    flush: false,
                };
                r.banks[slot] = BankView {
                    valid: true,
                    committing: slot == 0,
                    addr,
                    idx,
                    kind: InstrKind::IntAlu,
                };
            }
            sink.on_cycle(&r);
        }
        assert!(sink.flipped() > 0);
    }

    #[test]
    fn wire_faults_are_wire_level_only() {
        let plan = FaultPlan::new(
            9,
            vec![
                Fault::DropChunks { one_in: 2 },
                Fault::DelayChunks { one_in: 2, ms: 5 },
                Fault::CorruptChunks { one_in: 2 },
                Fault::SplitChunks { max: 3 },
                Fault::Disconnect { after_bytes: 10 },
                Fault::HalfClose { after_bytes: 10 },
            ],
        );
        assert!(plan.faults.iter().all(Fault::is_wire));
        assert!(!Fault::ForcePanic.is_wire());
        assert!(!Fault::FlipBits { bits: 1 }.is_wire());
        let mut data = vec![1u8; 32];
        plan.apply_bytes(&mut data);
        assert_eq!(data, vec![1u8; 32], "byte layer ignores wire faults");
        let mut snap = vec![1u8; 32];
        plan.apply_snapshot(&mut snap);
        assert_eq!(snap, vec![1u8; 32], "snapshot layer ignores wire faults");
    }

    #[test]
    fn force_panic_is_campaign_level_only() {
        let plan = FaultPlan::new(6, vec![Fault::ForcePanic]);
        assert!(plan.forces_panic());
        let mut data = vec![1u8; 16];
        plan.apply_bytes(&mut data);
        assert_eq!(data, vec![1u8; 16], "trace layer ignores it");
        assert!(!FaultPlan::none().forces_panic());
    }
}
