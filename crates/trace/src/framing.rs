//! Stream framing: magic/version header and CRC-protected chunks.
//!
//! The record encoding ([`crate::codec`]) is a dense bit-packed format with
//! no redundancy: a single flipped bit silently changes decoded history, and
//! a truncated file just looks like a shorter run. Long FireSim-style
//! campaigns cannot afford either failure mode, so the on-disk stream wraps
//! records in an integrity layer:
//!
//! ```text
//! header : magic "TIPT" (4) | version u16 LE | flags u16 LE | reserved u32 LE
//! chunk* : payload_len u32 LE | n_records u32 LE | first_cycle u64 LE |
//!          crc32 u32 LE | payload (record frames)
//! ```
//!
//! The CRC-32 (IEEE) covers the first 16 header bytes *and* the payload, so
//! damage to the length, record-count, or cycle fields is detected just like
//! damage to the records themselves.
//!
//! A reader can therefore tell three situations apart that the raw encoding
//! conflates: a stream that simply ends (clean end exactly at a chunk
//! boundary), one whose tail was cut off (`Truncated`, reporting the last
//! cycle protected by an intact chunk), and one whose bytes were damaged in
//! place (`Corrupt`, reporting the chunk's byte offset). Because every chunk
//! header carries its payload length and starting cycle, replay can skip a
//! damaged chunk and resume from the next intact one.

use std::io::{self, Read};

/// Stream magic: identifies a framed TIP trace.
pub const MAGIC: [u8; 4] = *b"TIPT";

/// Current stream format version.
pub const VERSION: u16 = 1;

/// Size of the stream header in bytes.
pub const HEADER_LEN: usize = 12;

/// Size of each chunk header in bytes.
pub const CHUNK_HEADER_LEN: usize = 20;

/// Default uncompressed payload size at which the writer seals a chunk.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Upper bound accepted for a chunk payload; larger declared lengths are
/// treated as corruption rather than honoured (guards against attempting a
/// multi-gigabyte allocation from a damaged length field).
pub const MAX_CHUNK_BYTES: usize = 16 * 1024 * 1024;

/// The CRC-32 (IEEE 802.3) of `a` followed by `b`, without concatenating.
#[must_use]
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    !crc32_update(crc32_update(!0, a), b)
}

/// The CRC-32 (IEEE 802.3) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// Lookup tables for slice-by-8 CRC computation, built on first use.
///
/// `TABLES[0]` is the classic per-byte table for the reflected IEEE
/// polynomial (0xEDB88320); `TABLES[k][i]` extends it by `k` extra zero
/// bytes, which is what lets the hot loop fold eight input bytes into the
/// running CRC with eight independent table lookups instead of eight
/// serial per-byte steps. Trace writing checksums every sealed chunk, so
/// this sits directly on the simulator's trace-throughput path.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i as usize] = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let t = crc_tables();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    crc
}

/// Encodes the stream header.
#[must_use]
pub fn encode_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    // flags (6..8) and reserved (8..12) are zero in version 1.
    h
}

/// One chunk's header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Number of record frames in the payload.
    pub n_records: u32,
    /// Cycle number of the first record in the payload.
    pub first_cycle: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl ChunkHeader {
    /// Encodes the header into its wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; CHUNK_HEADER_LEN] {
        let mut h = [0u8; CHUNK_HEADER_LEN];
        h[0..4].copy_from_slice(&self.payload_len.to_le_bytes());
        h[4..8].copy_from_slice(&self.n_records.to_le_bytes());
        h[8..16].copy_from_slice(&self.first_cycle.to_le_bytes());
        h[16..20].copy_from_slice(&self.crc.to_le_bytes());
        h
    }

    /// The header bytes covered by the chunk CRC (everything except the CRC
    /// field itself).
    #[must_use]
    pub fn protected_prefix(&self) -> [u8; CHUNK_HEADER_LEN - 4] {
        let mut p = [0u8; CHUNK_HEADER_LEN - 4];
        p[0..4].copy_from_slice(&self.payload_len.to_le_bytes());
        p[4..8].copy_from_slice(&self.n_records.to_le_bytes());
        p[8..16].copy_from_slice(&self.first_cycle.to_le_bytes());
        p
    }

    /// Decodes a header from its wire form.
    #[must_use]
    pub fn decode(bytes: &[u8; CHUNK_HEADER_LEN]) -> Self {
        ChunkHeader {
            payload_len: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            n_records: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            first_cycle: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            crc: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
        }
    }
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean end (zero bytes
/// read) from a mid-item truncation.
///
/// # Errors
///
/// Propagates reader errors.
pub fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Outcome of [`read_exact_or_eof`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// The stream ended before the first byte.
    CleanEof,
    /// The stream ended partway through.
    Truncated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn sliced_crc_matches_bytewise_reference_at_every_length() {
        // Bytewise reference using only the first table: the slice-by-8
        // fold must agree on every length (exercising the 8-byte body and
        // each possible remainder) and across the pair-split entry point.
        fn reference(data: &[u8]) -> u32 {
            let t = &crc_tables()[0];
            let mut crc = !0u32;
            for &b in data {
                crc = t[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
            }
            !crc
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len={len}");
        }
        for split in [0, 1, 7, 8, 9, 64, 256] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_pair(a, b), reference(&data), "split={split}");
        }
    }

    #[test]
    fn chunk_header_round_trips() {
        let h = ChunkHeader {
            payload_len: 123,
            n_records: 7,
            first_cycle: 99_999,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(ChunkHeader::decode(&h.encode()), h);
    }

    #[test]
    fn header_is_well_formed() {
        let h = encode_header();
        assert_eq!(&h[0..4], b"TIPT");
        assert_eq!(u16::from_le_bytes([h[4], h[5]]), VERSION);
    }

    #[test]
    fn read_exact_or_eof_distinguishes_cases() {
        let mut buf = [0u8; 4];
        let mut full: &[u8] = &[1, 2, 3, 4, 5];
        assert_eq!(
            read_exact_or_eof(&mut full, &mut buf).expect("read"),
            ReadOutcome::Full
        );
        let mut empty: &[u8] = &[];
        assert_eq!(
            read_exact_or_eof(&mut empty, &mut buf).expect("read"),
            ReadOutcome::CleanEof
        );
        let mut short: &[u8] = &[1, 2];
        assert_eq!(
            read_exact_or_eof(&mut short, &mut buf).expect("read"),
            ReadOutcome::Truncated
        );
    }
}
