//! Streaming trace reader.

use crate::codec::{decode_record, DecodeError};
use std::io::{BufReader, Read};
use tip_ooo::{CycleRecord, TraceSink};

/// Decodes a trace stream back into [`CycleRecord`]s, assigning consecutive
/// cycle numbers from 0.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    next_cycle: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader over `input`.
    pub fn new(input: R) -> Self {
        TraceReader {
            input: BufReader::new(input),
            next_cycle: 0,
            done: false,
        }
    }

    /// Replays the whole stream into `sink` (out-of-band profiler
    /// evaluation). Returns the number of records replayed.
    ///
    /// # Errors
    ///
    /// Returns the first decode error.
    pub fn replay_into(mut self, sink: &mut impl TraceSink) -> Result<u64, DecodeError> {
        let mut n = 0;
        for record in &mut self {
            sink.on_cycle(&record?);
            n += 1;
        }
        Ok(n)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<CycleRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match decode_record(&mut self.input, self.next_cycle) {
            Ok(Some(record)) => {
                self.next_cycle += 1;
                Some(Ok(record))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    #[test]
    fn round_trips_a_synthetic_stream() {
        let mut buf = Vec::new();
        let originals: Vec<CycleRecord> = (0..32).map(CycleRecord::empty).collect();
        {
            let mut w = TraceWriter::new(&mut buf);
            for r in &originals {
                w.on_cycle(r);
            }
            w.flush().expect("flush");
        }
        let decoded: Vec<CycleRecord> = TraceReader::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .expect("decode");
        assert_eq!(decoded, originals);
    }

    #[test]
    fn replay_feeds_a_sink() {
        struct Counter(u64);
        impl TraceSink for Counter {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            for c in 0..7 {
                w.on_cycle(&CycleRecord::empty(c));
            }
            w.flush().expect("flush");
        }
        let mut counter = Counter(0);
        let n = TraceReader::new(buf.as_slice())
            .replay_into(&mut counter)
            .expect("replay");
        assert_eq!(n, 7);
        assert_eq!(counter.0, 7);
    }
}
