//! Streaming trace reader with corruption detection and recovery.

use crate::codec::{decode_record, DecodeError};
use crate::framing::{
    crc32_pair, read_exact_or_eof, ChunkHeader, ReadOutcome, CHUNK_HEADER_LEN, HEADER_LEN, MAGIC,
    MAX_CHUNK_BYTES, VERSION,
};
use std::io::{BufReader, Read};
use tip_ooo::{CycleRecord, TraceSink};

/// What happened while loading the next chunk.
enum ChunkLoad {
    /// A verified chunk is ready for decoding.
    Loaded,
    /// The stream ended cleanly at a chunk boundary.
    CleanEnd,
    /// The chunk at `offset` failed its CRC; the stream position is past it,
    /// so replay can resume at the next chunk.
    CorruptSkippable(u64),
    /// The chunk header declared a structurally impossible payload length
    /// (zero, or over [`MAX_CHUNK_BYTES`]). A zero-length chunk carries no
    /// payload, so the stream stays aligned and replay can skip it; an
    /// over-cap length leaves the position of the next chunk unknown.
    BadLength {
        /// The declared payload length.
        len: u32,
        /// Whether the stream is still aligned on the next chunk boundary.
        skippable: bool,
    },
    /// The stream ended mid-chunk.
    TruncatedTail,
}

/// Outcome of a lossy, fault-tolerant replay
/// (see [`TraceReader::replay_recovering`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records delivered to the sink.
    pub records: u64,
    /// Cycle number of the last delivered record.
    pub last_cycle: Option<u64>,
    /// Chunks skipped because their CRC (or their content) was bad.
    pub skipped_chunks: u64,
    /// Whether the stream ended mid-chunk (tail cut off).
    pub truncated: bool,
    /// Whether replay stopped early because the framing itself was
    /// destroyed and the next chunk could not be located.
    pub unrecoverable: bool,
}

impl ReplayReport {
    /// Whether the stream replayed completely, with nothing skipped or
    /// missing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.skipped_chunks == 0 && !self.truncated && !self.unrecoverable
    }
}

/// Decodes a framed trace stream back into [`CycleRecord`]s.
///
/// The stream must begin with the TIP trace header (see [`crate::framing`]);
/// records are read chunk by chunk, and each chunk's CRC is verified before
/// any of its records are yielded. Iteration yields
/// [`DecodeError::Corrupt`] for in-place damage (with the chunk's byte
/// offset) and [`DecodeError::Truncated`] for a cut-off tail (with the last
/// cycle still covered by an intact chunk). [`replay_recovering`]
/// (TraceReader::replay_recovering) instead skips damaged chunks and resumes
/// from the next intact one.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    /// Bytes consumed from the stream so far.
    offset: u64,
    header_checked: bool,
    /// Verified payload of the current chunk.
    chunk: Vec<u8>,
    chunk_pos: usize,
    /// Stream offset of the current chunk's header.
    chunk_offset: u64,
    records_left: u32,
    next_cycle: u64,
    /// Last cycle covered by a CRC-verified chunk.
    last_good_cycle: Option<u64>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader over `input`.
    pub fn new(input: R) -> Self {
        TraceReader {
            input: BufReader::new(input),
            offset: 0,
            header_checked: false,
            chunk: Vec::new(),
            chunk_pos: 0,
            chunk_offset: 0,
            records_left: 0,
            next_cycle: 0,
            last_good_cycle: None,
            done: false,
        }
    }

    /// Validates the stream header (idempotent).
    fn check_header(&mut self) -> Result<(), DecodeError> {
        if self.header_checked {
            return Ok(());
        }
        let mut header = [0u8; HEADER_LEN];
        match read_exact_or_eof(&mut self.input, &mut header)? {
            ReadOutcome::Full => {}
            ReadOutcome::CleanEof | ReadOutcome::Truncated => {
                return Err(DecodeError::Truncated {
                    last_good_cycle: None,
                });
            }
        }
        self.offset += HEADER_LEN as u64;
        let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        self.header_checked = true;
        Ok(())
    }

    /// Reads and verifies the next chunk into `self.chunk`.
    fn load_chunk(&mut self) -> Result<ChunkLoad, DecodeError> {
        let mut raw = [0u8; CHUNK_HEADER_LEN];
        match read_exact_or_eof(&mut self.input, &mut raw)? {
            ReadOutcome::CleanEof => return Ok(ChunkLoad::CleanEnd),
            ReadOutcome::Truncated => return Ok(ChunkLoad::TruncatedTail),
            ReadOutcome::Full => {}
        }
        let chunk_offset = self.offset;
        self.offset += CHUNK_HEADER_LEN as u64;
        let header = ChunkHeader::decode(&raw);
        if header.payload_len as usize > MAX_CHUNK_BYTES {
            return Ok(ChunkLoad::BadLength {
                len: header.payload_len,
                skippable: false,
            });
        }
        if header.payload_len == 0 {
            // The writer never seals an empty chunk, so a zero-length
            // header is hostile or damaged input. No payload follows,
            // which means the stream is still aligned: recovery can
            // resume at the next chunk header.
            return Ok(ChunkLoad::BadLength {
                len: 0,
                skippable: true,
            });
        }
        self.chunk.clear();
        self.chunk.resize(header.payload_len as usize, 0);
        match read_exact_or_eof(&mut self.input, &mut self.chunk)? {
            ReadOutcome::Full => {}
            ReadOutcome::CleanEof | ReadOutcome::Truncated => {
                self.chunk.clear();
                return Ok(ChunkLoad::TruncatedTail);
            }
        }
        self.offset += u64::from(header.payload_len);
        if crc32_pair(&header.protected_prefix(), &self.chunk) != header.crc {
            self.chunk.clear();
            return Ok(ChunkLoad::CorruptSkippable(chunk_offset));
        }
        self.chunk_pos = 0;
        self.chunk_offset = chunk_offset;
        self.records_left = header.n_records;
        self.next_cycle = header.first_cycle;
        if header.n_records > 0 {
            self.last_good_cycle = Some(header.first_cycle + u64::from(header.n_records) - 1);
        }
        Ok(ChunkLoad::Loaded)
    }

    /// Decodes the next record of the current chunk, or `Ok(None)` when the
    /// chunk is exactly exhausted.
    fn decode_from_chunk(&mut self) -> Result<Option<CycleRecord>, DecodeError> {
        if self.records_left == 0 {
            if self.chunk_pos != self.chunk.len() {
                return Err(DecodeError::Corrupt {
                    offset: self.chunk_offset,
                });
            }
            return Ok(None);
        }
        let mut slice = &self.chunk[self.chunk_pos..];
        let before = slice.len();
        let decoded = decode_record(&mut slice, self.next_cycle)?;
        self.chunk_pos += before - slice.len();
        match decoded {
            Some(record) => {
                self.records_left -= 1;
                self.next_cycle += 1;
                Ok(Some(record))
            }
            // The CRC-valid payload ended although the header promised more
            // records: the chunk itself is inconsistent.
            None => Err(DecodeError::Corrupt {
                offset: self.chunk_offset,
            }),
        }
    }

    /// Replays the whole stream into `sink` (out-of-band profiler
    /// evaluation). Returns the number of records replayed.
    ///
    /// # Errors
    ///
    /// Returns the first decode error (strict: corruption and truncation
    /// both abort the replay).
    pub fn replay_into(mut self, sink: &mut impl TraceSink) -> Result<u64, DecodeError> {
        let mut n = 0;
        for record in &mut self {
            sink.on_cycle(&record?);
            n += 1;
        }
        Ok(n)
    }

    /// Replays as much of the stream as can be trusted, skipping damaged
    /// chunks and resuming from the next intact one.
    ///
    /// Corrupt chunks are counted in the returned [`ReplayReport`] rather
    /// than aborting the replay; a truncated tail ends the replay and is
    /// flagged. Only an unusable stream header is a hard error.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`], [`DecodeError::UnsupportedVersion`], or
    /// [`DecodeError::Truncated`] (header shorter than
    /// [`HEADER_LEN`](crate::framing::HEADER_LEN) bytes), plus any I/O error
    /// from the underlying reader.
    pub fn replay_recovering(
        mut self,
        sink: &mut impl TraceSink,
    ) -> Result<ReplayReport, DecodeError> {
        self.check_header()?;
        let mut report = ReplayReport::default();
        'chunks: loop {
            match self.load_chunk() {
                Ok(ChunkLoad::Loaded) => {}
                Ok(ChunkLoad::CleanEnd) => break,
                Ok(ChunkLoad::CorruptSkippable(_))
                | Ok(ChunkLoad::BadLength {
                    skippable: true, ..
                }) => {
                    report.skipped_chunks += 1;
                    continue;
                }
                Ok(ChunkLoad::BadLength {
                    skippable: false, ..
                }) => {
                    report.skipped_chunks += 1;
                    report.unrecoverable = true;
                    break;
                }
                Ok(ChunkLoad::TruncatedTail) => {
                    report.truncated = true;
                    break;
                }
                Err(e) => return Err(e),
            }
            loop {
                match self.decode_from_chunk() {
                    Ok(Some(record)) => {
                        report.records += 1;
                        report.last_cycle = Some(record.cycle);
                        sink.on_cycle(&record);
                    }
                    Ok(None) => break,
                    // A CRC-valid chunk whose content still fails to decode:
                    // skip the remainder of this chunk and resume.
                    Err(_) => {
                        report.skipped_chunks += 1;
                        continue 'chunks;
                    }
                }
            }
        }
        Ok(report)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<CycleRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Err(e) = self.check_header() {
            self.done = true;
            return Some(Err(e));
        }
        loop {
            match self.decode_from_chunk() {
                Ok(Some(record)) => return Some(Ok(record)),
                Ok(None) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            match self.load_chunk() {
                Ok(ChunkLoad::Loaded) => {}
                Ok(ChunkLoad::CleanEnd) => {
                    self.done = true;
                    return None;
                }
                Ok(ChunkLoad::CorruptSkippable(offset)) => {
                    self.done = true;
                    return Some(Err(DecodeError::Corrupt { offset }));
                }
                Ok(ChunkLoad::BadLength { len, .. }) => {
                    self.done = true;
                    return Some(Err(DecodeError::BadLength {
                        len,
                        cap: MAX_CHUNK_BYTES as u32,
                    }));
                }
                Ok(ChunkLoad::TruncatedTail) => {
                    self.done = true;
                    return Some(Err(DecodeError::Truncated {
                        last_good_cycle: self.last_good_cycle,
                    }));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn stream_of(n: u64, chunk_bytes: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::with_chunk_size(&mut buf, chunk_bytes);
        for c in 0..n {
            w.on_cycle(&CycleRecord::empty(c));
        }
        w.flush().expect("flush");
        drop(w);
        buf
    }

    #[test]
    fn round_trips_a_synthetic_stream() {
        let buf = stream_of(32, 64 * 1024);
        let decoded: Vec<CycleRecord> = TraceReader::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .expect("decode");
        assert_eq!(decoded.len(), 32);
        for (c, r) in decoded.iter().enumerate() {
            assert_eq!(r.cycle, c as u64);
        }
    }

    #[test]
    fn replay_feeds_a_sink() {
        struct Counter(u64);
        impl TraceSink for Counter {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let buf = stream_of(7, 64 * 1024);
        let mut counter = Counter(0);
        let n = TraceReader::new(buf.as_slice())
            .replay_into(&mut counter)
            .expect("replay");
        assert_eq!(n, 7);
        assert_eq!(counter.0, 7);
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut buf = stream_of(4, 64 * 1024);
        buf[0] = b'X';
        let err = TraceReader::new(buf.as_slice())
            .next()
            .expect("one item")
            .expect_err("bad magic");
        assert!(matches!(err, DecodeError::BadMagic(_)), "{err:?}");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = stream_of(4, 64 * 1024);
        buf[4] = 0xff;
        let err = TraceReader::new(buf.as_slice())
            .next()
            .expect("one item")
            .expect_err("version");
        assert!(matches!(err, DecodeError::UnsupportedVersion(_)), "{err:?}");
    }

    #[test]
    fn bit_flip_is_corruption_with_an_offset() {
        let buf = stream_of(100, 128);
        // Damage a payload byte in the middle of the stream.
        let victim = buf.len() / 2;
        let mut bad = buf.clone();
        bad[victim] ^= 0x40;
        let err = TraceReader::new(bad.as_slice())
            .collect::<Result<Vec<_>, _>>()
            .expect_err("corrupt");
        match err {
            DecodeError::Corrupt { offset } => {
                assert!(offset as usize <= victim, "offset {offset} past damage");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_reports_last_good_cycle() {
        let buf = stream_of(100, 128);
        let cut = buf.len() - 10;
        let err = TraceReader::new(&buf[..cut])
            .collect::<Result<Vec<_>, _>>()
            .expect_err("truncated");
        match err {
            DecodeError::Truncated { last_good_cycle } => {
                let last = last_good_cycle.expect("some chunks intact");
                assert!(last < 100);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn recovery_skips_damage_and_resumes() {
        struct Collect(Vec<u64>);
        impl TraceSink for Collect {
            fn on_cycle(&mut self, r: &CycleRecord) {
                self.0.push(r.cycle);
            }
        }
        let buf = stream_of(200, 128);
        let mut bad = buf.clone();
        let victim = bad.len() / 2;
        bad[victim] ^= 0x01;

        let mut sink = Collect(Vec::new());
        let report = TraceReader::new(bad.as_slice())
            .replay_recovering(&mut sink)
            .expect("header fine");
        assert_eq!(report.skipped_chunks, 1);
        assert!(!report.truncated && !report.unrecoverable);
        assert!(report.records < 200);
        // Replay resumed after the bad chunk: the final cycles are present.
        assert_eq!(sink.0.last().copied(), Some(199));
        assert_eq!(report.last_cycle, Some(199));
        // Cycle numbering stays faithful across the gap.
        assert!(sink.0.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recovery_reports_truncation() {
        let buf = stream_of(200, 128);
        let report = TraceReader::new(&buf[..buf.len() - 7])
            .replay_recovering(&mut ())
            .expect("header fine");
        assert!(report.truncated);
        assert!(report.records < 200);
        assert!(!report.is_clean());
    }

    #[test]
    fn zero_length_chunk_is_bad_length_and_skippable() {
        // Splice a zero-length chunk (CRC even made valid, so only the
        // length rule can reject it) right after the stream header.
        let buf = stream_of(40, 128);
        let mut zero = ChunkHeader {
            payload_len: 0,
            n_records: 0,
            first_cycle: 0,
            crc: 0,
        };
        zero.crc = crc32_pair(&zero.protected_prefix(), &[]);
        let mut spliced = buf[..HEADER_LEN].to_vec();
        spliced.extend_from_slice(&zero.encode());
        spliced.extend_from_slice(&buf[HEADER_LEN..]);

        // Strict iteration: the distinct typed error, not Corrupt.
        let err = TraceReader::new(spliced.as_slice())
            .collect::<Result<Vec<_>, _>>()
            .expect_err("zero-length frame");
        match err {
            DecodeError::BadLength { len: 0, cap } => {
                assert_eq!(cap as usize, MAX_CHUNK_BYTES);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }

        // Recovery: no payload follows, so the stream is still aligned —
        // the frame is skipped and every record still replays.
        struct Count(u64);
        impl TraceSink for Count {
            fn on_cycle(&mut self, _r: &CycleRecord) {
                self.0 += 1;
            }
        }
        let mut sink = Count(0);
        let report = TraceReader::new(spliced.as_slice())
            .replay_recovering(&mut sink)
            .expect("header fine");
        assert_eq!(report.skipped_chunks, 1);
        assert!(!report.unrecoverable && !report.truncated);
        assert_eq!(sink.0, 40, "no record lost to the zero-length frame");
    }

    #[test]
    fn over_cap_chunk_is_bad_length_and_unrecoverable() {
        let buf = stream_of(40, 128);
        let mut bad = buf.clone();
        let absurd = (MAX_CHUNK_BYTES as u32 + 1).to_le_bytes();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&absurd);

        let err = TraceReader::new(bad.as_slice())
            .collect::<Result<Vec<_>, _>>()
            .expect_err("over-cap frame");
        match err {
            DecodeError::BadLength { len, cap } => {
                assert_eq!(len as usize, MAX_CHUNK_BYTES + 1);
                assert_eq!(cap as usize, MAX_CHUNK_BYTES);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }

        // The next chunk boundary is unknowable, so recovery must stop and
        // say so rather than guess.
        let report = TraceReader::new(bad.as_slice())
            .replay_recovering(&mut ())
            .expect("header fine");
        assert!(report.unrecoverable);
        assert_eq!(report.records, 0);
    }

    #[test]
    fn recovery_on_clean_stream_is_clean() {
        let buf = stream_of(64, 128);
        let report = TraceReader::new(buf.as_slice())
            .replay_recovering(&mut ())
            .expect("clean");
        assert!(report.is_clean());
        assert_eq!(report.records, 64);
        assert_eq!(report.last_cycle, Some(63));
    }
}
