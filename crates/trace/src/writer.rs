//! Streaming trace writer.

use crate::codec::encode_record;
use std::io::{self, BufWriter, Write};
use tip_ooo::{CycleRecord, TraceSink};

/// A [`TraceSink`] that encodes every record into a byte stream.
///
/// Writes are buffered; call [`flush`](TraceWriter::flush) (or drop the
/// writer) when the run finishes. Encoding errors are sticky: the first one
/// is stored and surfaced by `flush`, since `TraceSink::on_cycle` cannot
/// fail.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: BufWriter<W>,
    records: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        TraceWriter {
            out: BufWriter::new(out),
            records: 0,
            bytes: 0,
            error: None,
        }
    }

    /// Records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded bytes so far (before any I/O buffering).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean encoded bytes per cycle — the figure that makes Oracle-style
    /// tracing impractical (Section 3.2).
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.bytes as f64 / self.records as f64
        }
    }

    /// Flushes buffered data and surfaces any deferred encoding error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while encoding or flushing.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any deferred encoding error or flush failure.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        if self.error.is_some() {
            return;
        }
        let mut frame = Vec::with_capacity(64);
        if let Err(e) = encode_record(record, &mut frame) {
            self.error = Some(e);
            return;
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        if let Err(e) = self.out.write_all(&frame) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_records_and_bytes() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            for c in 0..10 {
                w.on_cycle(&CycleRecord::empty(c));
            }
            assert_eq!(w.records(), 10);
            assert!(w.bytes() >= 10 * 6, "each empty frame is at least 6 bytes");
            assert!(w.bytes_per_cycle() >= 6.0);
            w.flush().expect("flush ok");
        }
        assert!(!buf.is_empty());
    }

    #[test]
    fn write_errors_are_sticky_and_surfaced() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // A tiny buffer capacity forces the failure through quickly; the
        // default BufWriter hides it until flush, which is also fine.
        let mut w = TraceWriter::new(FailingWriter);
        for c in 0..100_000 {
            w.on_cycle(&CycleRecord::empty(c));
        }
        assert!(w.flush().is_err());
    }
}
