//! Streaming trace writer with integrity framing.

use crate::codec::encode_record_into;
use crate::framing::{
    crc32_pair, encode_header, ChunkHeader, CHUNK_HEADER_LEN, DEFAULT_CHUNK_BYTES, HEADER_LEN,
};
use crate::snapshot::TracePos;
use std::io::{self, BufWriter, Write};
use tip_ooo::{CycleRecord, TraceSink};

/// A [`TraceSink`] that encodes every record into a framed byte stream.
///
/// The stream starts with a magic/version header and carries records in
/// CRC-32-protected chunks (see [`crate::framing`]), so a reader can detect
/// in-place corruption and distinguish it from a truncated tail. Chunks are
/// sealed when their payload reaches the configured size and on
/// [`flush`](TraceWriter::flush).
///
/// Writes are buffered; call [`flush`](TraceWriter::flush) (or drop the
/// writer) when the run finishes. Encoding errors are sticky: the first one
/// is stored and surfaced by `flush`, since `TraceSink::on_cycle` cannot
/// fail.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: BufWriter<W>,
    chunk: Vec<u8>,
    chunk_bytes: usize,
    chunk_first_cycle: u64,
    chunk_records: u32,
    header_written: bool,
    records: u64,
    bytes: u64,
    framed_bytes: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `out` with the default chunk size.
    pub fn new(out: W) -> Self {
        Self::with_chunk_size(out, DEFAULT_CHUNK_BYTES)
    }

    /// Creates a writer sealing chunks at `chunk_bytes` of payload.
    ///
    /// Smaller chunks bound the data lost to a damaged or truncated region
    /// at the cost of more framing overhead (20 bytes per chunk).
    pub fn with_chunk_size(out: W, chunk_bytes: usize) -> Self {
        TraceWriter {
            out: BufWriter::new(out),
            chunk: Vec::with_capacity(chunk_bytes.min(DEFAULT_CHUNK_BYTES) + 64),
            chunk_bytes: chunk_bytes.max(1),
            chunk_first_cycle: 0,
            chunk_records: 0,
            header_written: false,
            records: 0,
            bytes: 0,
            framed_bytes: 0,
            error: None,
        }
    }

    /// Creates a writer that continues a stream previously written up to
    /// `pos` — the resume half of a checkpoint.
    ///
    /// The caller must have truncated the underlying file to exactly
    /// `pos.framed_bytes` (the end of the last sealed chunk) and positioned
    /// `out` there; the magic/version header is *not* rewritten, and the
    /// writer's record/byte counters continue from the checkpoint so the
    /// resumed stream is indistinguishable from an uninterrupted one.
    pub fn resume(out: W, pos: TracePos) -> Self {
        Self::resume_with_chunk_size(out, DEFAULT_CHUNK_BYTES, pos)
    }

    /// [`resume`](Self::resume) with an explicit chunk size.
    pub fn resume_with_chunk_size(out: W, chunk_bytes: usize, pos: TracePos) -> Self {
        let mut w = Self::with_chunk_size(out, chunk_bytes);
        w.header_written = true;
        w.records = pos.records;
        w.bytes = pos.payload_bytes;
        w.framed_bytes = pos.framed_bytes;
        w
    }

    /// Records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded record bytes so far (excluding framing, before I/O
    /// buffering).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean encoded bytes per cycle — the figure that makes Oracle-style
    /// tracing impractical (Section 3.2).
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.bytes as f64 / self.records as f64
        }
    }

    /// The stream's resume position: counters plus the exact framed length
    /// written so far.
    ///
    /// Only meaningful after [`flush`](Self::flush) — an open (unsealed)
    /// chunk's records are not yet framed and would be lost by a resume from
    /// this position.
    #[must_use]
    pub fn position(&self) -> TracePos {
        TracePos {
            framed_bytes: self.framed_bytes,
            records: self.records,
            payload_bytes: self.bytes,
        }
    }

    fn write_header_once(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.out.write_all(&encode_header())?;
            self.header_written = true;
            self.framed_bytes += HEADER_LEN as u64;
        }
        Ok(())
    }

    fn seal_chunk(&mut self) -> io::Result<()> {
        self.write_header_once()?;
        if self.chunk.is_empty() {
            return Ok(());
        }
        let mut header = ChunkHeader {
            payload_len: self.chunk.len() as u32,
            n_records: self.chunk_records,
            first_cycle: self.chunk_first_cycle,
            crc: 0,
        };
        header.crc = crc32_pair(&header.protected_prefix(), &self.chunk);
        self.out.write_all(&header.encode())?;
        self.out.write_all(&self.chunk)?;
        self.framed_bytes += (CHUNK_HEADER_LEN + self.chunk.len()) as u64;
        self.chunk.clear();
        self.chunk_records = 0;
        Ok(())
    }

    /// Seals the open chunk, flushes buffered data, and surfaces any
    /// deferred encoding error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while encoding or flushing.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.seal_chunk()?;
        self.out.flush()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any deferred encoding error or flush failure.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush()?;
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn on_cycle(&mut self, record: &CycleRecord) {
        if self.error.is_some() {
            return;
        }
        if self.chunk.is_empty() {
            self.chunk_first_cycle = record.cycle;
        }
        let before = self.chunk.len();
        // Infallible append straight into the chunk buffer: no per-record
        // `io::Result` plumbing, no intermediate frame buffer. I/O (and its
        // error handling) happens once per sealed chunk.
        encode_record_into(record, &mut self.chunk);
        self.bytes += (self.chunk.len() - before) as u64;
        self.records += 1;
        self.chunk_records += 1;
        if self.chunk.len() >= self.chunk_bytes {
            if let Err(e) = self.seal_chunk() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{CHUNK_HEADER_LEN, HEADER_LEN, MAGIC};

    #[test]
    fn counts_records_and_bytes() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            for c in 0..10 {
                w.on_cycle(&CycleRecord::empty(c));
            }
            assert_eq!(w.records(), 10);
            assert!(w.bytes() >= 10 * 6, "each empty frame is at least 6 bytes");
            assert!(w.bytes_per_cycle() >= 6.0);
            w.flush().expect("flush ok");
        }
        assert!(buf.len() >= HEADER_LEN + CHUNK_HEADER_LEN + 10 * 6);
        assert_eq!(&buf[0..4], &MAGIC);
    }

    #[test]
    fn empty_stream_still_carries_a_header() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf);
            w.flush().expect("flush ok");
        }
        assert_eq!(buf.len(), HEADER_LEN);
    }

    #[test]
    fn small_chunk_size_splits_the_stream() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::with_chunk_size(&mut buf, 16);
            for c in 0..50 {
                w.on_cycle(&CycleRecord::empty(c));
            }
            w.flush().expect("flush ok");
        }
        // With a 16-byte target and ~6-byte frames every chunk holds very
        // few records, so many chunk headers must appear.
        assert!(
            buf.len() > HEADER_LEN + 10 * CHUNK_HEADER_LEN,
            "expected many chunks, got {} bytes",
            buf.len()
        );
    }

    #[test]
    fn position_tracks_the_exact_framed_length() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::with_chunk_size(&mut buf, 64);
        for c in 0..37 {
            w.on_cycle(&CycleRecord::empty(c));
        }
        w.flush().expect("flush ok");
        let pos = w.position();
        drop(w);
        assert_eq!(pos.framed_bytes, buf.len() as u64);
        assert_eq!(pos.records, 37);
    }

    #[test]
    fn resumed_stream_is_indistinguishable_from_uninterrupted() {
        use crate::reader::TraceReader;

        // First half, checkpointed at cycle 50.
        let mut file = Vec::new();
        let mut w = TraceWriter::with_chunk_size(&mut file, 64);
        for c in 0..50 {
            w.on_cycle(&CycleRecord::empty(c));
        }
        w.flush().expect("flush ok");
        let pos = w.position();
        drop(w);
        assert_eq!(
            pos.framed_bytes,
            file.len() as u64,
            "flush sealed everything"
        );

        // Crash: a torn partial write past the checkpoint, then resume —
        // truncate to the recorded offset and append the second half.
        file.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
        file.truncate(pos.framed_bytes as usize);
        let mut tail = Vec::new();
        let mut w = TraceWriter::resume_with_chunk_size(&mut tail, 64, pos);
        for c in 50..100 {
            w.on_cycle(&CycleRecord::empty(c));
        }
        w.flush().expect("flush ok");
        assert_eq!(w.records(), 100, "counters continue across the resume");
        let resumed_framed = w.position().framed_bytes;
        drop(w);
        assert_eq!(resumed_framed, (file.len() + tail.len()) as u64);
        file.extend_from_slice(&tail);

        let decoded: Vec<CycleRecord> = TraceReader::new(file.as_slice())
            .collect::<Result<_, _>>()
            .expect("whole resumed stream decodes");
        assert_eq!(decoded.len(), 100);
        for (c, r) in decoded.iter().enumerate() {
            assert_eq!(r.cycle, c as u64);
        }
    }

    #[test]
    fn write_errors_are_sticky_and_surfaced() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(FailingWriter);
        for c in 0..100_000 {
            w.on_cycle(&CycleRecord::empty(c));
        }
        assert!(w.flush().is_err());
    }
}
