//! The binary record encoding.
//!
//! Each [`CycleRecord`] becomes one variable-length frame. Instruction
//! addresses are never stored — they are derivable from instruction indices
//! (`TEXT_BASE + 4*idx`), which is exactly the compression a real trace
//! implementation would apply. Cycle numbers are implicit (records are
//! consecutive); the reader reconstructs them from the stream position.
//!
//! Frame layout:
//!
//! ```text
//! presence : u8   bit0 head, bit1 exception, bit2 next_to_dispatch,
//!                 bit3 next_to_fetch, bit4 dispatch-wrong-path,
//!                 bit5 head-executed
//! n_commit : u8   committed count (low nibble) | oldest_bank (high nibble)
//! rob_len  : u16
//! committed: n_commit x { idx: u32, kind+flags: u8 }
//! banks    : valid_mask: u8, committing_mask: u8,
//!            per valid bank { idx: u32, kind: u8 }
//! head     : { idx: u32, kind: u8 }            (if present)
//! exception: { idx: u32 }                      (if present)
//! dispatch : { idx: u32 }                      (if present)
//! fetch    : { idx: u32 }                      (if present)
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use tip_isa::{InstrAddr, InstrIdx, InstrKind};
use tip_ooo::{BankView, CommitView, CycleRecord, HeadView, MAX_COMMIT};

/// All instruction kinds, indexable by their wire code.
const KINDS: [InstrKind; 16] = [
    InstrKind::IntAlu,
    InstrKind::IntMul,
    InstrKind::IntDiv,
    InstrKind::FpAlu,
    InstrKind::FpMul,
    InstrKind::FpDiv,
    InstrKind::Load,
    InstrKind::Store,
    InstrKind::Branch,
    InstrKind::Jump,
    InstrKind::Call,
    InstrKind::Ret,
    InstrKind::CsrFlush,
    InstrKind::Fence,
    InstrKind::Nop,
    InstrKind::Halt,
];

fn kind_code(kind: InstrKind) -> u8 {
    KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("every kind has a code") as u8
}

fn kind_from_code(code: u8) -> Result<InstrKind, DecodeError> {
    KINDS
        .get(code as usize)
        .copied()
        .ok_or(DecodeError::BadKind(code))
}

fn addr_of(idx: InstrIdx) -> InstrAddr {
    InstrAddr::new(tip_isa::TEXT_BASE + tip_isa::INSTR_BYTES * u64::from(idx.raw()))
}

/// Errors produced when decoding a trace stream.
#[derive(Debug)]
pub enum DecodeError {
    /// The underlying reader failed.
    Io(io::Error),
    /// An instruction-kind code outside the wire table.
    BadKind(u8),
    /// A frame was malformed (inconsistent counts, masks, or flags).
    Malformed(&'static str),
    /// The stream does not start with the trace magic — not a framed TIP
    /// trace (or the header itself was damaged).
    BadMagic([u8; 4]),
    /// The stream is a framed TIP trace of a version this reader does not
    /// understand.
    UnsupportedVersion(u16),
    /// The bytes at `offset` were damaged in place: a chunk whose CRC does
    /// not match its payload, or an undecodable frame inside a chunk.
    Corrupt {
        /// Byte offset of the damaged chunk's header within the stream.
        offset: u64,
    },
    /// The stream ends mid-chunk — the tail was cut off. Everything up to
    /// and including `last_good_cycle` was protected by intact chunks.
    Truncated {
        /// Cycle number of the last record covered by an intact chunk, or
        /// `None` if no complete chunk survived.
        last_good_cycle: Option<u64>,
    },
    /// A frame declared a structurally impossible payload length: zero (a
    /// frame that carries nothing is never written by any TIP encoder and,
    /// on a network stream, lets a peer spin the receiver for free) or
    /// larger than the receiver's cap. Distinct from [`Self::Corrupt`] so a
    /// server can answer with a typed `Malformed` reply — a zero-length
    /// frame leaves the stream aligned on the next frame boundary, so the
    /// receiver can keep going without desyncing.
    BadLength {
        /// The declared payload length.
        len: u32,
        /// The receiver's accepted maximum.
        cap: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "trace read failed: {e}"),
            DecodeError::BadKind(c) => write!(f, "invalid instruction-kind code {c}"),
            DecodeError::Malformed(what) => write!(f, "malformed trace frame: {what}"),
            DecodeError::BadMagic(m) => {
                write!(f, "not a TIP trace: bad magic {m:02x?}")
            }
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            DecodeError::Corrupt { offset } => {
                write!(f, "trace corrupt at byte offset {offset} (CRC mismatch)")
            }
            DecodeError::Truncated { last_good_cycle } => match last_good_cycle {
                Some(c) => write!(f, "trace truncated: last intact chunk ends at cycle {c}"),
                None => write!(f, "trace truncated before the first complete chunk"),
            },
            DecodeError::BadLength { len, cap } => {
                write!(f, "frame length {len} outside the accepted range 1..={cap}")
            }
        }
    }
}

impl Error for DecodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Encodes one record into `out`. The cycle number is not stored (records
/// are consecutive).
///
/// # Errors
///
/// Propagates writer errors.
pub fn encode_record(record: &CycleRecord, out: &mut impl Write) -> io::Result<()> {
    let mut buf = Vec::with_capacity(MAX_FRAME_BYTES);
    encode_record_into(record, &mut buf);
    out.write_all(&buf)
}

/// Upper bound on one encoded frame, from the layout above with every
/// optional field present and all [`MAX_COMMIT`] commit and bank slots full.
pub const MAX_FRAME_BYTES: usize = 4 + MAX_COMMIT * 5 + 2 + MAX_COMMIT * 5 + 5 + 4 + 4 + 4;

/// Encodes one record directly into a byte buffer — the hot path the trace
/// writer batches records through.
///
/// Byte-for-byte identical to [`encode_record`] (which delegates here), but
/// infallible: appending to a `Vec` cannot fail, so the per-cycle encode
/// carries no `io::Result` plumbing and the writer amortises I/O error
/// handling to once per sealed chunk.
pub fn encode_record_into(record: &CycleRecord, out: &mut Vec<u8>) {
    out.reserve(MAX_FRAME_BYTES);
    let mut presence = 0u8;
    if record.head.is_some() {
        presence |= 1;
    }
    if record.exception.is_some() {
        presence |= 2;
    }
    if record.next_to_dispatch.is_some() {
        presence |= 4;
    }
    if record.next_to_fetch.is_some() {
        presence |= 8;
    }
    if matches!(record.next_to_dispatch, Some((_, _, true))) {
        presence |= 16;
    }
    if record.head.as_ref().is_some_and(|h| h.executed) {
        presence |= 32;
    }
    out.push(presence);
    out.push(record.n_committed | (record.oldest_bank << 4));
    out.extend_from_slice(&(record.rob_len as u16).to_le_bytes());

    for c in record.committed_iter() {
        out.extend_from_slice(&c.idx.raw().to_le_bytes());
        let flags = kind_code(c.kind) | u8::from(c.mispredicted) << 4 | u8::from(c.flush) << 5;
        out.push(flags);
    }

    let mut valid_mask = 0u8;
    let mut committing_mask = 0u8;
    for (i, b) in record.banks.iter().enumerate() {
        if b.valid {
            valid_mask |= 1 << i;
        }
        if b.committing {
            committing_mask |= 1 << i;
        }
    }
    out.push(valid_mask);
    out.push(committing_mask);
    for b in record.banks.iter().filter(|b| b.valid) {
        out.extend_from_slice(&b.idx.raw().to_le_bytes());
        out.push(kind_code(b.kind));
    }

    if let Some(h) = &record.head {
        out.extend_from_slice(&h.idx.raw().to_le_bytes());
        out.push(kind_code(h.kind));
    }
    if let Some((_, idx)) = record.exception {
        out.extend_from_slice(&idx.raw().to_le_bytes());
    }
    if let Some((_, idx, _)) = record.next_to_dispatch {
        out.extend_from_slice(&idx.raw().to_le_bytes());
    }
    if let Some((_, idx)) = record.next_to_fetch {
        out.extend_from_slice(&idx.raw().to_le_bytes());
    }
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_idx(r: &mut impl Read) -> io::Result<InstrIdx> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(InstrIdx::new(u32::from_le_bytes(b)))
}

/// Decodes one record from `input`, assigning it `cycle`. Returns
/// `Ok(None)` at clean end-of-stream.
///
/// # Errors
///
/// Returns [`DecodeError`] on I/O failure or malformed frames.
pub fn decode_record(
    input: &mut impl Read,
    cycle: u64,
) -> Result<Option<CycleRecord>, DecodeError> {
    let presence = match read_u8(input) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if presence & 0xc0 != 0 {
        return Err(DecodeError::Malformed("reserved presence bits set"));
    }
    if presence & 32 != 0 && presence & 1 == 0 {
        return Err(DecodeError::Malformed("head-executed flag without a head"));
    }
    if presence & 16 != 0 && presence & 4 == 0 {
        return Err(DecodeError::Malformed(
            "dispatch-wrong-path flag without a dispatch entry",
        ));
    }
    let counts = read_u8(input)?;
    let n_committed = counts & 0x0f;
    let oldest_bank = counts >> 4;
    if usize::from(n_committed) > MAX_COMMIT || usize::from(oldest_bank) >= MAX_COMMIT {
        return Err(DecodeError::Malformed("commit count or bank out of range"));
    }
    let rob_len = read_u16(input)?;

    let mut record = CycleRecord::empty(cycle);
    record.n_committed = n_committed;
    record.oldest_bank = oldest_bank;
    record.rob_len = u32::from(rob_len);

    for i in 0..usize::from(n_committed) {
        let idx = read_idx(input)?;
        let flags = read_u8(input)?;
        record.committed[i] = CommitView {
            addr: addr_of(idx),
            idx,
            kind: kind_from_code(flags & 0x0f)?,
            mispredicted: flags & 16 != 0,
            flush: flags & 32 != 0,
        };
    }

    let valid_mask = read_u8(input)?;
    let committing_mask = read_u8(input)?;
    if valid_mask >> MAX_COMMIT != 0 {
        return Err(DecodeError::Malformed(
            "valid mask has bits beyond MAX_COMMIT",
        ));
    }
    if committing_mask & !valid_mask != 0 {
        return Err(DecodeError::Malformed("committing bank that is not valid"));
    }
    for i in 0..MAX_COMMIT {
        if valid_mask & (1 << i) != 0 {
            let idx = read_idx(input)?;
            let kind = kind_from_code(read_u8(input)?)?;
            record.banks[i] = BankView {
                valid: true,
                committing: committing_mask & (1 << i) != 0,
                addr: addr_of(idx),
                idx,
                kind,
            };
        }
    }

    if presence & 1 != 0 {
        let idx = read_idx(input)?;
        let kind = kind_from_code(read_u8(input)?)?;
        record.head = Some(HeadView {
            addr: addr_of(idx),
            idx,
            kind,
            executed: presence & 32 != 0,
        });
    }
    if presence & 2 != 0 {
        let idx = read_idx(input)?;
        record.exception = Some((addr_of(idx), idx));
    }
    if presence & 4 != 0 {
        let idx = read_idx(input)?;
        record.next_to_dispatch = Some((addr_of(idx), idx, presence & 16 != 0));
    }
    if presence & 8 != 0 {
        let idx = read_idx(input)?;
        record.next_to_fetch = Some((addr_of(idx), idx));
    }
    Ok(Some(record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for (i, &k) in KINDS.iter().enumerate() {
            assert_eq!(kind_code(k), i as u8);
            assert_eq!(kind_from_code(i as u8).expect("valid code"), k);
        }
        assert!(kind_from_code(16).is_err());
    }

    #[test]
    fn empty_record_round_trips() {
        let r = CycleRecord::empty(5);
        let mut buf = Vec::new();
        encode_record(&r, &mut buf).expect("encode");
        let back = decode_record(&mut buf.as_slice(), 5)
            .expect("decode")
            .expect("present");
        assert_eq!(back, r);
    }

    #[test]
    fn rich_record_round_trips() {
        let mut r = CycleRecord::empty(9);
        let idx = InstrIdx::new(7);
        r.committed[0] = CommitView {
            addr: addr_of(idx),
            idx,
            kind: InstrKind::Branch,
            mispredicted: true,
            flush: false,
        };
        r.n_committed = 1;
        r.oldest_bank = 2;
        r.rob_len = 17;
        r.banks[2] = BankView {
            valid: true,
            committing: true,
            addr: addr_of(idx),
            idx,
            kind: InstrKind::Branch,
        };
        r.head = Some(HeadView {
            addr: addr_of(InstrIdx::new(8)),
            idx: InstrIdx::new(8),
            kind: InstrKind::Load,
            executed: true,
        });
        r.exception = Some((addr_of(InstrIdx::new(9)), InstrIdx::new(9)));
        r.next_to_dispatch = Some((addr_of(InstrIdx::new(10)), InstrIdx::new(10), true));
        r.next_to_fetch = Some((addr_of(InstrIdx::new(11)), InstrIdx::new(11)));

        let mut buf = Vec::new();
        encode_record(&r, &mut buf).expect("encode");
        let back = decode_record(&mut buf.as_slice(), 9)
            .expect("decode")
            .expect("present");
        assert_eq!(back, r);
    }

    #[test]
    fn infallible_encode_is_byte_identical_and_bounded() {
        // `encode_record_into` is the hot path; `encode_record` delegates to
        // it, but pin the equivalence (and the frame-size bound) explicitly
        // so a future divergence fails here, not in a trace diff.
        let mut rich = CycleRecord::empty(3);
        let idx = InstrIdx::new(12);
        for i in 0..MAX_COMMIT {
            rich.committed[i] = CommitView {
                addr: addr_of(idx),
                idx,
                kind: InstrKind::Load,
                mispredicted: i == 1,
                flush: false,
            };
            rich.banks[i] = BankView {
                valid: true,
                committing: true,
                addr: addr_of(idx),
                idx,
                kind: InstrKind::Load,
            };
        }
        rich.n_committed = MAX_COMMIT as u8;
        rich.head = Some(HeadView {
            addr: addr_of(idx),
            idx,
            kind: InstrKind::Store,
            executed: true,
        });
        rich.exception = Some((addr_of(idx), idx));
        rich.next_to_dispatch = Some((addr_of(idx), idx, true));
        rich.next_to_fetch = Some((addr_of(idx), idx));

        for r in [CycleRecord::empty(0), rich] {
            let mut via_write = Vec::new();
            encode_record(&r, &mut via_write).expect("encode");
            let mut via_push = Vec::new();
            encode_record_into(&r, &mut via_push);
            assert_eq!(via_write, via_push);
            assert!(via_push.len() <= MAX_FRAME_BYTES);
        }
    }

    #[test]
    fn end_of_stream_is_clean() {
        let empty: &[u8] = &[];
        assert!(decode_record(&mut &*empty, 0).expect("clean EOF").is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let r = CycleRecord::empty(0);
        let mut buf = Vec::new();
        encode_record(&r, &mut buf).expect("encode");
        buf.pop();
        assert!(decode_record(&mut buf.as_slice(), 0).is_err());
    }
}
