//! Commit-stage trace serialization.
//!
//! The paper's methodology streams the per-cycle commit-stage state out of
//! FireSim and evaluates all profilers *out of band*, on CPUs processing the
//! trace in lock-step with the FPGA. This crate provides the equivalent:
//! [`TraceWriter`] is a [`TraceSink`](tip_ooo::TraceSink) that encodes every
//! [`CycleRecord`](tip_ooo::CycleRecord) into a compact binary stream, and [`TraceReader`] decodes
//! it back so profilers can be (re-)evaluated without re-simulating.
//!
//! It also makes the paper's headline data-rate argument concrete: even this
//! compacted encoding runs at tens of bytes per cycle — hence Oracle-style
//! full tracing needs ~179 GB/s on a 3.2 GHz core, which is why TIP samples
//! instead (Section 3.2).
//!
//! # Example
//!
//! ```
//! use tip_isa::{ProgramBuilder, Instr, BranchBehavior};
//! use tip_ooo::{Core, CoreConfig};
//! use tip_trace::{TraceReader, TraceWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::named("demo");
//! let main = b.function("main");
//! let body = b.block(main);
//! b.push(body, Instr::int_alu(None, [None, None]));
//! b.push(body, Instr::branch(body, BranchBehavior::Loop { taken_iters: 50 }));
//! let exit = b.block(main);
//! b.push(exit, Instr::halt());
//! let program = b.build()?;
//!
//! let mut core = Core::new(&program, CoreConfig::default(), 1);
//! let mut writer = TraceWriter::new(Vec::new());
//! let summary = core.run(&mut writer, 100_000);
//! writer.flush()?;
//!
//! let buf = writer.into_inner()?;
//! let records: Vec<_> = TraceReader::new(buf.as_slice()).collect::<Result<_, _>>()?;
//! assert_eq!(records.len() as u64, summary.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
pub mod fault;
pub mod framing;
mod reader;
pub mod snapshot;
mod writer;

/// The crate's unified error type: every failure while decoding a trace
/// stream *or* a `TIPS` snapshot is one of these classified variants.
pub use codec::DecodeError as TraceError;
pub use codec::{decode_record, encode_record, encode_record_into, DecodeError, MAX_FRAME_BYTES};
pub use fault::{Fault, FaultPlan, FaultySink};
pub use reader::{ReplayReport, TraceReader};
pub use snapshot::{
    read_snapshot, write_snapshot, Snapshot, TracePos, SECTION_CORE, SECTION_PROFILERS,
    SECTION_TRACE_POS, SNAP_MAGIC, SNAP_VERSION,
};
pub use writer::TraceWriter;
