//! The `TIPS` snapshot container: a versioned, CRC-framed checkpoint file.
//!
//! A checkpoint captures every stateful layer of a run mid-flight — the
//! core's architectural and microarchitectural state, the profiler bank's
//! accumulators and sampler RNG, and the trace writer's resume position —
//! so a killed campaign can restore and produce a bit-identical commit-trace
//! suffix. The container reuses the trace stream's framing machinery
//! ([`crate::framing`]): the same 12-byte header shape (magic `TIPS` instead
//! of `TIPT`) and the same CRC-32-protected chunk header guarding the whole
//! payload, so damage to a snapshot is *detected and classified*, never
//! silently restored.
//!
//! ```text
//! header : magic "TIPS" (4) | version u16 LE | flags u16 LE | reserved u32 LE
//! frame  : payload_len u32 LE | n_sections u32 LE | cycle u64 LE | crc32 u32 LE
//! payload: section* = tag u8 | len u32 LE | bytes
//! ```
//!
//! The frame is a [`ChunkHeader`] whose `n_records` field carries the section
//! count and whose `first_cycle` carries the checkpoint cycle, so the CRC
//! protects the counts and the cycle exactly like a trace chunk's.
//!
//! Section payloads are opaque here: the core and profiler sections are the
//! `tip-ooo`/`tip-core` snapshot codecs' bytes, validated on restore by those
//! crates; [`TracePos`] (the trace writer's resume position) is defined in
//! this crate. Readers must tolerate unknown tags — they are skipped, which
//! is what lets a later version add sections without breaking version 1.

use crate::codec::DecodeError;
use crate::framing::{crc32_pair, ChunkHeader, CHUNK_HEADER_LEN, HEADER_LEN, MAX_CHUNK_BYTES};
use tip_isa::snap::SnapError;

/// Snapshot magic: identifies a framed TIP checkpoint.
pub const SNAP_MAGIC: [u8; 4] = *b"TIPS";

/// Current snapshot format version.
pub const SNAP_VERSION: u16 = 1;

/// Section tag: the OoO core's full state (`tip_ooo::Core::snapshot`).
pub const SECTION_CORE: u8 = 1;

/// Section tag: the profiler bank's state
/// (`tip_core::ProfilerBank::snapshot`).
pub const SECTION_PROFILERS: u8 = 2;

/// Section tag: the trace writer's resume position ([`TracePos`]).
pub const SECTION_TRACE_POS: u8 = 3;

impl From<SnapError> for DecodeError {
    fn from(e: SnapError) -> Self {
        match e {
            SnapError::UnexpectedEof => DecodeError::Malformed("snapshot state ends early"),
            SnapError::Malformed(what) => DecodeError::Malformed(what),
        }
    }
}

/// The trace writer's resume position, stored under [`SECTION_TRACE_POS`].
///
/// `framed_bytes` is the exact length of the trace file at checkpoint time
/// (header plus every sealed chunk); a resumed run truncates the file to
/// this offset and appends. The counters restore the writer's statistics so
/// `records()` and `bytes_per_cycle()` stay faithful across the resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePos {
    /// Bytes of the framed stream written so far (file truncation point).
    pub framed_bytes: u64,
    /// Records written so far.
    pub records: u64,
    /// Encoded record payload bytes so far (excluding framing).
    pub payload_bytes: u64,
}

impl TracePos {
    /// Encoded size of a trace position section.
    pub const ENCODED_LEN: usize = 24;

    /// Encodes the position into its section payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.framed_bytes.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.payload_bytes.to_le_bytes());
        out
    }

    /// Decodes a position from its section payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Malformed`] when the section is not exactly
    /// [`Self::ENCODED_LEN`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(DecodeError::Malformed("trace position section length"));
        }
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        Ok(TracePos {
            framed_bytes: word(0),
            records: word(8),
            payload_bytes: word(16),
        })
    }
}

/// A decoded, CRC-verified snapshot container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The simulated cycle at which the checkpoint was taken.
    pub cycle: u64,
    sections: Vec<(u8, Vec<u8>)>,
}

impl Snapshot {
    /// The first section with the given tag, if present.
    #[must_use]
    pub fn section(&self, tag: u8) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, data)| data.as_slice())
    }

    /// All sections, in file order.
    #[must_use]
    pub fn sections(&self) -> &[(u8, Vec<u8>)] {
        &self.sections
    }
}

fn encode_snap_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&SNAP_MAGIC);
    h[4..6].copy_from_slice(&SNAP_VERSION.to_le_bytes());
    // flags (6..8) and reserved (8..12) are zero in version 1.
    h
}

/// Encodes a snapshot container: header, CRC frame, and tagged sections.
///
/// # Panics
///
/// Panics when the combined payload exceeds
/// [`MAX_CHUNK_BYTES`](crate::framing::MAX_CHUNK_BYTES) — real checkpoints
/// are far smaller; hitting the bound indicates a caller bug, not damage.
#[must_use]
pub fn write_snapshot(cycle: u64, sections: &[(u8, &[u8])]) -> Vec<u8> {
    let mut payload = Vec::new();
    for &(tag, data) in sections {
        payload.push(tag);
        payload.extend_from_slice(
            &(u32::try_from(data.len()).expect("section fits u32")).to_le_bytes(),
        );
        payload.extend_from_slice(data);
    }
    assert!(
        payload.len() <= MAX_CHUNK_BYTES,
        "snapshot payload exceeds the chunk bound"
    );
    let mut header = ChunkHeader {
        payload_len: payload.len() as u32,
        n_records: sections.len() as u32,
        first_cycle: cycle,
        crc: 0,
    };
    header.crc = crc32_pair(&header.protected_prefix(), &payload);
    let mut out = Vec::with_capacity(HEADER_LEN + CHUNK_HEADER_LEN + payload.len());
    out.extend_from_slice(&encode_snap_header());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(&payload);
    out
}

/// Decodes and verifies a snapshot container.
///
/// # Errors
///
/// Every damage mode maps to a classified [`DecodeError`], never a panic:
///
/// - [`DecodeError::BadMagic`] — not a `TIPS` snapshot (or the magic itself
///   was damaged);
/// - [`DecodeError::UnsupportedVersion`] — a snapshot from a different
///   format version (e.g. a stale file after an upgrade);
/// - [`DecodeError::Truncated`] — the file is shorter than its frame
///   declares (tail cut off mid-write);
/// - [`DecodeError::Corrupt`] — bytes damaged in place (CRC mismatch);
/// - [`DecodeError::BadLength`] — the frame declares a payload over the
///   chunk cap;
/// - [`DecodeError::Malformed`] — the frame verified but its section
///   structure is inconsistent (writer bug or crafted file).
pub fn read_snapshot(bytes: &[u8]) -> Result<Snapshot, DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            last_good_cycle: None,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != SNAP_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SNAP_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < CHUNK_HEADER_LEN {
        return Err(DecodeError::Truncated {
            last_good_cycle: None,
        });
    }
    let raw: [u8; CHUNK_HEADER_LEN] = rest[..CHUNK_HEADER_LEN].try_into().expect("20 bytes");
    let header = ChunkHeader::decode(&raw);
    if header.payload_len as usize > MAX_CHUNK_BYTES {
        // Same typed rejection as the trace and wire framing. Zero-length
        // stays legal here: a snapshot with no sections is a valid (if
        // degenerate) container, unlike a record chunk or a wire frame.
        return Err(DecodeError::BadLength {
            len: header.payload_len,
            cap: MAX_CHUNK_BYTES as u32,
        });
    }
    let payload = &rest[CHUNK_HEADER_LEN..];
    if payload.len() < header.payload_len as usize {
        return Err(DecodeError::Truncated {
            last_good_cycle: None,
        });
    }
    if payload.len() > header.payload_len as usize {
        return Err(DecodeError::Malformed(
            "trailing bytes after snapshot frame",
        ));
    }
    if crc32_pair(&header.protected_prefix(), payload) != header.crc {
        return Err(DecodeError::Corrupt {
            offset: HEADER_LEN as u64,
        });
    }
    let mut sections = Vec::with_capacity(header.n_records as usize);
    let mut pos = 0usize;
    for _ in 0..header.n_records {
        if payload.len() - pos < 5 {
            return Err(DecodeError::Malformed("snapshot section header"));
        }
        let tag = payload[pos];
        let len =
            u32::from_le_bytes(payload[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        pos += 5;
        if payload.len() - pos < len {
            return Err(DecodeError::Malformed("snapshot section length"));
        }
        sections.push((tag, payload[pos..pos + len].to_vec()));
        pos += len;
    }
    if pos != payload.len() {
        return Err(DecodeError::Malformed(
            "trailing bytes after snapshot sections",
        ));
    }
    Ok(Snapshot {
        cycle: header.first_cycle,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};

    fn sample_snapshot() -> Vec<u8> {
        let pos = TracePos {
            framed_bytes: 4_096,
            records: 123,
            payload_bytes: 2_000,
        };
        write_snapshot(
            77_001,
            &[
                (SECTION_CORE, b"core-state-bytes".as_slice()),
                (SECTION_PROFILERS, b"profiler-bank-bytes".as_slice()),
                (SECTION_TRACE_POS, pos.encode().as_slice()),
            ],
        )
    }

    #[test]
    fn round_trips_sections_and_cycle() {
        let bytes = sample_snapshot();
        let snap = read_snapshot(&bytes).expect("decode");
        assert_eq!(snap.cycle, 77_001);
        assert_eq!(snap.sections().len(), 3);
        assert_eq!(
            snap.section(SECTION_CORE),
            Some(b"core-state-bytes".as_slice())
        );
        assert_eq!(
            snap.section(SECTION_PROFILERS),
            Some(b"profiler-bank-bytes".as_slice())
        );
        let pos = TracePos::decode(snap.section(SECTION_TRACE_POS).expect("pos")).expect("decode");
        assert_eq!(
            pos,
            TracePos {
                framed_bytes: 4_096,
                records: 123,
                payload_bytes: 2_000,
            }
        );
        assert_eq!(
            snap.section(99),
            None,
            "unknown tag is absent, not an error"
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = write_snapshot(0, &[]);
        let snap = read_snapshot(&bytes).expect("decode");
        assert_eq!(snap.cycle, 0);
        assert!(snap.sections().is_empty());
    }

    #[test]
    fn bad_magic_is_classified() {
        let mut bytes = sample_snapshot();
        bytes[0] = b'X';
        assert!(matches!(
            read_snapshot(&bytes),
            Err(DecodeError::BadMagic(_))
        ));
        // A trace header is not a snapshot.
        bytes[0..4].copy_from_slice(&crate::framing::MAGIC);
        assert!(matches!(
            read_snapshot(&bytes),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn stale_version_is_classified() {
        let mut bytes = sample_snapshot();
        let plan = FaultPlan::new(9, vec![Fault::StaleSnapshotHeader]);
        plan.apply_snapshot(&mut bytes);
        assert!(matches!(
            read_snapshot(&bytes),
            Err(DecodeError::UnsupportedVersion(u16::MAX))
        ));
    }

    #[test]
    fn every_truncation_point_is_classified() {
        let bytes = sample_snapshot();
        for cut in 0..bytes.len() {
            let err = read_snapshot(&bytes[..cut]).expect_err("damaged");
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::Corrupt { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn payload_damage_is_corrupt() {
        let mut bytes = sample_snapshot();
        let victim = HEADER_LEN + CHUNK_HEADER_LEN + 3;
        bytes[victim] ^= 0x10;
        assert!(matches!(
            read_snapshot(&bytes),
            Err(DecodeError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut bytes = sample_snapshot();
        bytes.push(0xAA);
        assert!(matches!(
            read_snapshot(&bytes),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn random_bit_flips_never_yield_wrong_data() {
        // A flipped bit must either be detected or land in the unprotected
        // flags/reserved header bytes, which do not alter the decoded state.
        let pristine = read_snapshot(&sample_snapshot()).expect("decode");
        for seed in 0..64 {
            let mut bytes = sample_snapshot();
            let plan = FaultPlan::new(seed, vec![Fault::FlipBits { bits: 3 }]);
            plan.apply_snapshot(&mut bytes);
            if let Ok(snap) = read_snapshot(&bytes) {
                assert_eq!(snap, pristine, "seed {seed} silently altered the snapshot");
            }
        }
    }

    #[test]
    fn truncation_fault_is_classified() {
        for keep in [0.0, 0.2, 0.5, 0.9] {
            let mut bytes = sample_snapshot();
            let plan = FaultPlan::new(
                1,
                vec![Fault::Truncate {
                    keep_fraction: keep,
                }],
            );
            plan.apply_snapshot(&mut bytes);
            assert!(read_snapshot(&bytes).is_err(), "keep={keep} undetected");
        }
    }

    #[test]
    fn trace_pos_rejects_wrong_length() {
        assert!(matches!(
            TracePos::decode(&[0u8; 23]),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn snap_errors_convert() {
        assert!(matches!(
            DecodeError::from(SnapError::UnexpectedEof),
            DecodeError::Malformed(_)
        ));
        assert!(matches!(
            DecodeError::from(SnapError::Malformed("x")),
            DecodeError::Malformed("x")
        ));
    }
}
