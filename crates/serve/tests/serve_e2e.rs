//! End-to-end service tests: a real `tipd` engine behind a real TCP
//! socket, driven by the real client.
//!
//! The headline property mirrors the campaign suite's kill-and-resume
//! guarantee, lifted to the daemon: submit a job set over the wire with
//! `--jobs 2`, drain mid-campaign, restart with `--resume`, resubmit —
//! and the final `journal.txt`, `<bench>.result` files, and `failures.txt`
//! must be byte-identical to an uninterrupted *local* [`run_campaign`]
//! over the same job sequence. `metrics.txt` is host timing and excluded,
//! exactly as in `crates/bench/tests/parallel_kill_resume.rs`.

use std::collections::BTreeMap;
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use tip_bench::campaign::{run_campaign, CampaignConfig};
use tip_bench::executor::{Job, RunCtx, Runner, SpecRunner};
use tip_core::{ProfileDelta, ProfilerId};
use tip_isa::Granularity;
use tip_serve::{
    serve, serve_with_runner, Client, ClientError, Engine, EngineConfig, ErrorCode, JobSpec,
    JobState, QueryKind, ServerConfig,
};
use tip_workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

/// A fig08-style job subset: enough benches that a drain lands mid-queue
/// at 2 workers, small enough to keep the suite quick at `Test` scale.
const SUITE_LEN: usize = 6;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn spec_for(name: &str) -> JobSpec {
    let mut spec = JobSpec::new(name, SuiteScale::Test);
    // One profiler keeps each job fast; the local reference uses the same.
    spec.profilers = vec![ProfilerId::Tip];
    spec
}

fn wait_terminal(client: &Client, job: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let state = client.status(job).expect("status");
        if state.is_terminal() {
            return state;
        }
        assert!(Instant::now() < deadline, "job {job} never settled");
        thread::sleep(Duration::from_millis(10));
    }
}

/// The deterministic artifacts; `metrics.txt` is host timing and excluded.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("campaign dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".result") || name == "journal.txt" || name == "failures.txt"
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("artifact readable"),
            )
        })
        .collect()
}

fn done_lines(dir: &Path) -> Vec<String> {
    fs::read_to_string(dir.join("journal.txt"))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.strip_prefix("done ").map(str::to_owned))
        .collect()
}

#[test]
fn drained_daemon_resumes_to_byte_identical_artifacts() {
    let names = &BENCHMARK_NAMES[..SUITE_LEN];

    // Uninterrupted local reference: same benches, same order, same specs.
    let local_dir = tmp_dir("local");
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        out_dir: Some(local_dir.clone()),
        ..CampaignConfig::default()
    };
    let benches = names
        .iter()
        .map(|&n| benchmark(n, SuiteScale::Test))
        .collect();
    let outcome = run_campaign(benches, &config, SpecRunner);
    assert_eq!(outcome.completed.len(), SUITE_LEN);

    // Phase 1: a 2-worker daemon takes the same submissions over TCP and
    // is drained mid-campaign by a wire `Shutdown{drain: true}`.
    let srv_dir = tmp_dir("srv");
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 2;
    let handle = serve(&cfg).expect("bind");
    let addr = handle.addr().to_string();
    let client = Client::new(&addr);
    let mut ids = Vec::new();
    for &name in names {
        ids.push(client.submit(&spec_for(name)).expect("submit"));
    }
    assert_eq!(ids, (1..=SUITE_LEN as u64).collect::<Vec<_>>());

    // Let the campaign make some progress, streaming it, then pull the plug.
    let mut progress = Vec::new();
    let last = client.watch(ids[0], |s| progress.push(s)).expect("watch");
    assert_eq!(
        last,
        JobState::Done {
            ok: true,
            attempts: 1
        }
    );
    assert!(!progress.is_empty(), "watch streamed at least one frame");
    client.shutdown(true).expect("wire shutdown");
    handle.join();

    // The drain journalled a clean prefix of the submission order.
    let at_drain = done_lines(&srv_dir);
    assert!(!at_drain.is_empty(), "drain committed the in-flight work");
    assert_eq!(
        at_drain,
        names[..at_drain.len()]
            .iter()
            .map(|&n| n.to_owned())
            .collect::<Vec<_>>(),
        "journal covers a contiguous prefix of submission order"
    );

    // While down, the client's connect retry gives up with a typed error.
    let offline = Client::new(&addr).with_retry(2, Duration::from_millis(1));
    assert!(matches!(offline.stats(), Err(ClientError::Io(_))));

    // Phase 2: restart with --resume, resubmit the same suite; journalled
    // benchmarks are acknowledged without re-running, the rest execute.
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 2;
    cfg.resume = true;
    let handle = serve(&cfg).expect("rebind");
    let client = Client::new(&handle.addr().to_string());
    let mut ids = Vec::new();
    for &name in names {
        ids.push(client.submit(&spec_for(name)).expect("resubmit"));
    }
    for &id in &ids {
        let state = wait_terminal(&client, id);
        assert!(
            matches!(state, JobState::Done { ok: true, .. }),
            "job {id} ended {state:?}"
        );
    }
    // Resumed prefix reports attempts=0: acknowledged from the journal.
    if at_drain.len() < SUITE_LEN {
        assert_eq!(
            client.status(ids[0]).expect("status"),
            JobState::Done {
                ok: true,
                attempts: 0
            }
        );
    }

    // fetch-result returns the on-disk result file, byte for byte.
    let body = client.result(ids[0]).expect("result");
    let disk = fs::read(srv_dir.join(format!("{}.result", names[0]))).expect("result file");
    assert_eq!(body.into_bytes(), disk);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.done, SUITE_LEN as u32);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.workers, 2);
    handle.shutdown();

    // The headline: byte-identical deterministic artifacts, local vs wire,
    // including across the drain/restart/resume cycle.
    assert_eq!(done_lines(&srv_dir).len(), SUITE_LEN);
    assert_eq!(artifacts(&local_dir), artifacts(&srv_dir));

    let _ = fs::remove_dir_all(&local_dir);
    let _ = fs::remove_dir_all(&srv_dir);
}

/// The v4 streaming path end-to-end: wire `Query` frames answer from the
/// live aggregate *mid-campaign*, `watch` carries streamed simulated
/// cycles, and once every job settles the aggregate's merged units equal
/// the finished profiles of an uninterrupted local run exactly — the live
/// view converges to the truth, not an approximation of it.
#[test]
fn live_queries_answer_mid_campaign_and_converge_exactly() {
    const LIVE_LEN: usize = 3;
    let names = &BENCHMARK_NAMES[..LIVE_LEN];

    // Local reference for the finished profiles (same specs, same order).
    let local_dir = tmp_dir("live-local");
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        out_dir: Some(local_dir.clone()),
        ..CampaignConfig::default()
    };
    let benches = names
        .iter()
        .map(|&n| benchmark(n, SuiteScale::Test))
        .collect();
    let reference = run_campaign(benches, &config, SpecRunner);
    assert_eq!(reference.completed.len(), LIVE_LEN);

    // One worker plus a slowed runner: when job 1 finishes, jobs 2..N are
    // provably still queued — the queries below land mid-campaign.
    let srv_dir = tmp_dir("live-srv");
    let slow = |job: &Job, ctx: &RunCtx| {
        thread::sleep(Duration::from_millis(200));
        SpecRunner.run(job, ctx)
    };
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 1;
    let handle = serve_with_runner(&cfg, slow).expect("bind");
    let client = Client::new(&handle.addr().to_string());
    let mut ids = Vec::new();
    for &name in names {
        ids.push(client.submit(&spec_for(name)).expect("submit"));
    }

    // Watch job 1 to completion; the v4 stream reports the benchmark's
    // streamed simulated cycles (a final delta flush always lands before
    // the outcome commits, so the terminal frame carries them).
    let mut max_cycles = 0u64;
    let last = client
        .watch_live(ids[0], |_state, cycles| max_cycles = max_cycles.max(cycles))
        .expect("watch");
    assert!(matches!(last, JobState::Done { ok: true, .. }));
    assert!(max_cycles > 0, "watch carried streamed cycles");

    // Mid-campaign: the daemon still has queued work, yet the aggregate
    // already answers for the finished benchmark.
    let stats = client.stats().expect("stats");
    assert!(stats.done < LIVE_LEN as u32, "work still in flight");
    assert!(stats.deltas > 0, "stats counts delta flushes");
    assert!(stats.streamed > 0, "stats counts streamed benches");
    let rows = client
        .query(QueryKind::TopN, names[0], Some(ProfilerId::Tip), 5)
        .expect("mid-campaign query");
    assert!(!rows.is_empty(), "TopN answers mid-campaign");
    assert!(rows
        .iter()
        .all(|r| r.bench == names[0] && !r.label.is_empty()));
    assert!(rows[0].share > 0.0 && rows[0].share <= 1.0);

    for &id in &ids {
        let state = wait_terminal(&client, id);
        assert!(matches!(state, JobState::Done { ok: true, .. }));
    }

    // Settled: merged streamed units equal the local finished profiles
    // exactly, per profiler and Oracle.
    let view = handle.engine().live().view();
    assert_eq!(view.benches.len(), LIVE_LEN);
    for c in &reference.completed {
        let name = c.run.bench.name;
        let b = view.bench(name).expect("bench streamed");
        assert_eq!(b.settled, Some(true), "{name} settled");
        assert_eq!(b.cycles, c.run.run.summary.cycles, "{name} cycles");
        let finished =
            c.run
                .run
                .bank
                .profile_of(&c.run.bench.program, ProfilerId::Tip, Granularity::Function);
        assert_eq!(
            b.units(Some(ProfilerId::Tip)).expect("tip units"),
            ProfileDelta::quantize(&finished).as_slice(),
            "{name}: live units != finished profile"
        );
        let oracle = c
            .run
            .run
            .bank
            .oracle
            .profile(&c.run.bench.program, Granularity::Function);
        assert_eq!(
            b.oracle,
            ProfileDelta::quantize(&oracle),
            "{name}: Oracle live units != finished profile"
        );
    }

    // The other two query kinds answer over the wire too: cycle-stack
    // shares sum to 1, and the TIP error trajectory's last point equals
    // the settled error against the Oracle.
    let stack = client
        .query(QueryKind::CycleStack, names[0], None, 0)
        .expect("stack query");
    assert!(!stack.is_empty());
    let share_sum: f64 = stack.iter().map(|r| r.share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "stack shares sum to 1, got {share_sum}"
    );
    let traj = client
        .query(
            QueryKind::ErrorTrajectory,
            names[0],
            Some(ProfilerId::Tip),
            0,
        )
        .expect("trajectory query");
    assert!(!traj.is_empty(), "trajectory recorded");
    let want = view
        .bench(names[0])
        .expect("bench")
        .error_vs_oracle(ProfilerId::Tip)
        .expect("error defined");
    let got = traj.last().expect("last point").share;
    assert!(
        (got - want).abs() < 1e-12,
        "trajectory converges: {got} vs {want}"
    );

    handle.shutdown();
    let _ = fs::remove_dir_all(&local_dir);
    let _ = fs::remove_dir_all(&srv_dir);
}

#[test]
fn wire_errors_are_typed() {
    let dir = tmp_dir("errors");
    let cfg = ServerConfig::new(dir.clone());
    let handle = serve(&cfg).expect("bind");
    let client = Client::new(&handle.addr().to_string());

    assert!(matches!(
        client.submit(&JobSpec::new("nonesuch", SuiteScale::Test)),
        Err(ClientError::Server {
            code: ErrorCode::UnknownBench,
            ..
        })
    ));

    let mut spec = spec_for(BENCHMARK_NAMES[0]);
    spec.core = "cray-1".to_owned();
    assert!(matches!(
        client.submit(&spec),
        Err(ClientError::Server {
            code: ErrorCode::UnknownCore,
            ..
        })
    ));

    assert!(matches!(
        client.status(999),
        Err(ClientError::Server {
            code: ErrorCode::UnknownJob,
            ..
        })
    ));
    assert!(matches!(
        client.result(999),
        Err(ClientError::Server {
            code: ErrorCode::UnknownJob,
            ..
        })
    ));

    // A job that exists but has not finished is NotReady, not unknown.
    let id = client
        .submit(&spec_for(BENCHMARK_NAMES[0]))
        .expect("submit");
    match client.result(id) {
        Err(ClientError::Server {
            code: ErrorCode::NotReady,
            ..
        }) => {}
        Ok(_) => {} // lost the race: the job finished first — fine
        other => panic!("unexpected: {other:?}"),
    }
    let _ = wait_terminal(&client, id);

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn over_limit_connections_get_typed_busy_then_recover() {
    let dir = tmp_dir("busy");
    let mut cfg = ServerConfig::new(dir.clone());
    cfg.max_conns = 1;
    cfg.io_timeout = Duration::from_millis(300);
    let handle = serve(&cfg).expect("bind");
    let client = Client::new(&handle.addr().to_string()).with_retry(1, Duration::from_millis(1));

    // Hold the one allowed connection open and idle.
    let held = TcpStream::connect(handle.addr()).expect("hold connection");

    // Once the held connection is registered, every further connection is
    // refused with a typed Busy naming the limit.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.stats() {
            Err(ClientError::Busy { active, limit }) => {
                assert_eq!(limit, 1);
                assert!(active >= 1);
                break;
            }
            _ => {
                assert!(Instant::now() < deadline, "Busy never observed");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // Releasing the held connection frees the slot.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.stats() {
            Ok(stats) => {
                assert_eq!(stats.workers, 1);
                break;
            }
            _ => {
                assert!(Instant::now() < deadline, "server never recovered");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cancel_reaches_queued_jobs_only() {
    let dir = tmp_dir("cancel");
    // A runner slow enough that job 2 is deterministically still queued
    // when the cancel lands (1 worker, job 1 holds it for 300 ms).
    let slow = |job: &Job, ctx: &RunCtx| {
        thread::sleep(Duration::from_millis(300));
        SpecRunner.run(job, ctx)
    };
    let engine = Engine::start_with_runner(
        &EngineConfig {
            out_dir: dir.clone(),
            workers: 1,
            resume: false,
            lease: Duration::from_secs(300),
            live: None,
        },
        slow,
    );
    let first = engine
        .submit(&spec_for(BENCHMARK_NAMES[0]))
        .expect("submit");
    let second = engine
        .submit(&spec_for(BENCHMARK_NAMES[1]))
        .expect("submit");

    assert!(engine.cancel(second), "queued job is cancellable");
    assert!(!engine.cancel(second), "cancel is not repeatable");
    assert_eq!(engine.status(second), Some(JobState::Cancelled));
    assert!(
        engine.result(second).is_err(),
        "no result for a cancelled job"
    );

    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let state = engine.status(first).expect("known job");
        if state.is_terminal() {
            assert!(matches!(state, JobState::Done { ok: true, .. }));
            break;
        }
        assert!(Instant::now() < deadline, "job 1 never finished");
        thread::sleep(Duration::from_millis(10));
    }
    assert!(!engine.cancel(first), "a settled job is not cancellable");

    // Draining refuses new work with a typed error.
    engine.drain();
    assert_eq!(
        engine.submit(&spec_for(BENCHMARK_NAMES[2])),
        Err(tip_serve::SubmitError::Draining)
    );

    engine.shutdown();
    // The cancelled job left no journal entry or result file.
    assert_eq!(done_lines(&dir), vec![BENCHMARK_NAMES[0].to_owned()]);
    assert!(!dir.join(format!("{}.result", BENCHMARK_NAMES[1])).exists());
    let _ = fs::remove_dir_all(&dir);
}

/// The pgo submission path end to end: a `pgo: true` spec runs the
/// profile→transform→measure loop server-side and commits the *optimized*
/// program's run through the ordinary ledger formats — same file name,
/// same schema, measurably fewer cycles than the plain run of the same
/// benchmark committed by an identical daemon.
#[test]
fn pgo_jobs_commit_optimized_runs_through_the_ledger() {
    fn settle(engine: &Engine, job: u64) {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let state = engine.status(job).expect("known job");
            if state.is_terminal() {
                assert!(
                    matches!(state, JobState::Done { ok: true, .. }),
                    "{state:?}"
                );
                return;
            }
            assert!(Instant::now() < deadline, "job {job} never settled");
            thread::sleep(Duration::from_millis(10));
        }
    }
    fn cycles_of(dir: &Path) -> u64 {
        let body = fs::read_to_string(dir.join("imagick.result")).expect("result file");
        body.lines()
            .find_map(|l| l.strip_prefix("cycles="))
            .expect("cycles row")
            .parse()
            .expect("cycles parse")
    }

    let plain_dir = tmp_dir("pgo-plain");
    let engine = Engine::start(&EngineConfig::new(plain_dir.clone()));
    let job = engine.submit(&spec_for("imagick")).expect("submit plain");
    settle(&engine, job);
    engine.shutdown();
    let plain_cycles = cycles_of(&plain_dir);

    let opt_dir = tmp_dir("pgo-opt");
    let engine = Engine::start(&EngineConfig::new(opt_dir.clone()));
    let mut spec = spec_for("imagick");
    spec.pgo = true;
    let job = engine.submit(&spec).expect("submit pgo");
    settle(&engine, job);
    engine.shutdown();
    let pgo_cycles = cycles_of(&opt_dir);

    assert!(
        pgo_cycles < plain_cycles,
        "pgo job must commit the optimized run: {pgo_cycles} vs plain {plain_cycles}"
    );
    let _ = fs::remove_dir_all(&plain_dir);
    let _ = fs::remove_dir_all(&opt_dir);
}
