//! Chaos suite: every single-fault scenario the service claims to survive,
//! each asserted against the same oracle — the deterministic campaign
//! artifacts (`journal.txt`, `<bench>.result`, `failures.txt`) must be
//! byte-identical to an uninterrupted *local* [`run_campaign`] over the
//! same job sequence, and a job settled in the ledger must never have
//! executed twice (asserted via the per-bench `assignments` counter in
//! `metrics.txt` and the engine's stale-result counter).
//!
//! The six faults, one test each:
//!
//! 1. frame corruption on the wire (chaosnet `CorruptChunks`)
//! 2. connection drop mid-watch (chaosnet `Disconnect`)
//! 3. worker panic mid-job (a panic payload that escapes attempt isolation)
//! 4. lease expiry after a worker hang (slow runner outlives its lease)
//! 5. daemon SIGKILL + restart `--resume` (real `tipd` subprocess)
//! 6. Overloaded shed + client retry (queue-depth watermark)
//!
//! `metrics.txt` is host wall-clock timing and excluded from the byte
//! diff, exactly as in `crates/bench/tests/parallel_kill_resume.rs` — its
//! `assignments` column is instead asserted directly.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::panic;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tip_bench::campaign::{run_campaign, CampaignConfig};
use tip_bench::executor::{Job, RunCtx, Runner, SpecRunner};
use tip_core::ProfilerId;
use tip_serve::{
    chaos_proxy, serve, serve_with_runner, ChaosConfig, Client, Engine, EngineConfig, JobSpec,
    JobState, ServerConfig,
};
use tip_trace::fault::{Fault, FaultPlan};
use tip_workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

/// Enough benches that faults land mid-campaign; small enough to keep six
/// scenarios quick at `Test` scale.
const SUITE_LEN: usize = 5;

const DEADLINE: Duration = Duration::from_secs(300);

fn names() -> &'static [&'static str] {
    &BENCHMARK_NAMES[..SUITE_LEN]
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn spec_for(name: &str) -> JobSpec {
    let mut spec = JobSpec::new(name, SuiteScale::Test);
    spec.profilers = vec![ProfilerId::Tip];
    spec
}

/// The fault-free local oracle: same benches, same order, same specs.
fn reference_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(&format!("{tag}-ref"));
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        out_dir: Some(dir.clone()),
        ..CampaignConfig::default()
    };
    let benches = names()
        .iter()
        .map(|&n| benchmark(n, SuiteScale::Test))
        .collect();
    let outcome = run_campaign(benches, &config, SpecRunner);
    assert_eq!(outcome.completed.len(), SUITE_LEN, "oracle run is clean");
    dir
}

/// The deterministic artifacts; `metrics.txt` is host timing and excluded.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("campaign dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".result") || name == "journal.txt" || name == "failures.txt"
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("artifact readable"),
            )
        })
        .collect()
}

fn done_lines(dir: &Path) -> Vec<String> {
    fs::read_to_string(dir.join("journal.txt"))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.strip_prefix("done ").map(str::to_owned))
        .collect()
}

/// Per-bench `assignments` column of `metrics.txt` — how many workers each
/// job actually burned. "Never executed twice" means every bench the fault
/// did *not* touch shows 1, and a reassigned bench shows exactly 2.
fn assignments_by_bench(dir: &Path) -> BTreeMap<String, u32> {
    fs::read_to_string(dir.join("metrics.txt"))
        .expect("metrics.txt exists")
        .lines()
        .filter(|l| l.starts_with("bench="))
        .map(|l| {
            let mut name = String::new();
            let mut assignments = 0u32;
            for tok in l.split_whitespace() {
                if let Some(v) = tok.strip_prefix("bench=") {
                    name = v.to_owned();
                }
                if let Some(v) = tok.strip_prefix("assignments=") {
                    assignments = v.parse().expect("assignments count");
                }
            }
            (name, assignments)
        })
        .collect()
}

fn assert_identical(dir: &Path, reference: &Path) {
    assert_eq!(
        done_lines(dir).len(),
        SUITE_LEN,
        "journal covers the whole suite"
    );
    assert_eq!(
        artifacts(reference),
        artifacts(dir),
        "artifacts byte-identical to the fault-free local run"
    );
    let _ = fs::remove_dir_all(reference);
}

fn wait_engine_done(engine: &Engine, job: u64) -> JobState {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let state = engine.status(job).expect("known job");
        if state.is_terminal() {
            return state;
        }
        assert!(Instant::now() < deadline, "job {job} never settled");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Status polling that shrugs off wire damage: on a chaotic link a poll
/// may fail even after the client's own retries — only the deadline gives
/// up.
fn wait_wire_done(client: &Client, job: u64) -> JobState {
    let deadline = Instant::now() + DEADLINE;
    loop {
        if let Ok(state) = client.status(job) {
            if state.is_terminal() {
                return state;
            }
        }
        assert!(Instant::now() < deadline, "job {job} never settled");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Fault 1: every frame risks a flipped byte, in both directions. CRC
/// classification turns each hit into a typed refusal or a dead
/// connection; the client's retry + request-id dedup must still land
/// every submit exactly once.
#[test]
fn frame_corruption_retries_to_identical_artifacts() {
    let reference = reference_dir("corrupt");
    let srv_dir = tmp_dir("corrupt-srv");
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 2;
    let handle = serve(&cfg).expect("bind");

    let proxy = chaos_proxy(&ChaosConfig::new(
        &handle.addr().to_string(),
        FaultPlan::new(0xC0DE, vec![Fault::CorruptChunks { one_in: 6 }]),
    ))
    .expect("proxy bind");

    let client = Client::new(&proxy.addr().to_string())
        .with_retry(12, Duration::from_millis(5))
        .with_request_retries(12)
        .with_seed(1);
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("submit survives"));
    }
    // Dedup proof: retried submits never enqueued a duplicate.
    assert_eq!(ids, (1..=SUITE_LEN as u64).collect::<Vec<_>>());

    for &id in &ids {
        let state = wait_wire_done(&client, id);
        assert!(matches!(
            state,
            JobState::Done {
                ok: true,
                attempts: 1
            }
        ));
    }
    handle.shutdown();

    let stats = proxy.stats();
    assert!(
        stats.total().corrupted_chunks >= 1,
        "the fault actually fired"
    );
    proxy.shutdown();

    // No fault reached a worker: every bench ran on exactly one.
    assert!(assignments_by_bench(&srv_dir).values().all(|&a| a == 1));
    assert_identical(&srv_dir, &reference);
    let _ = fs::remove_dir_all(&srv_dir);
}

/// Fault 2: the watch connection is cut every 56 response bytes — just
/// over one v4 `Progress` frame (45 bytes with the streamed-cycles
/// tail), so at most one frame survives per connection. The client must
/// reconnect with `Watch{from_seq}` and resume the stream without
/// replaying or losing states.
#[test]
fn connection_drop_mid_watch_resumes_the_stream() {
    let reference = reference_dir("drop");
    let srv_dir = tmp_dir("drop-srv");
    // One worker and a 100 ms runner: the last job's watch provably spans
    // several progress frames.
    let slow = |job: &Job, ctx: &RunCtx| {
        thread::sleep(Duration::from_millis(100));
        SpecRunner.run(job, ctx)
    };
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 1;
    let handle = serve_with_runner(&cfg, slow).expect("bind");
    let direct = Client::new(&handle.addr().to_string());
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(direct.submit(&spec_for(name)).expect("submit"));
    }

    let mut chaos = ChaosConfig::new(
        &handle.addr().to_string(),
        FaultPlan::new(7, vec![Fault::Disconnect { after_bytes: 56 }]),
    );
    chaos.fault_upstream = false; // requests arrive; replies get cut
    let proxy = chaos_proxy(&chaos).expect("proxy bind");

    let watcher = Client::new(&proxy.addr().to_string())
        .with_retry(8, Duration::from_millis(5))
        .with_request_retries(64)
        .with_seed(2);
    let mut seen = Vec::new();
    let last = watcher
        .watch(*ids.last().expect("ids"), |s| seen.push(s))
        .expect("watch survives the cuts");
    assert_eq!(
        last,
        JobState::Done {
            ok: true,
            attempts: 1
        }
    );
    assert!(!seen.is_empty(), "progress streamed");
    assert!(
        proxy.stats().total().disconnects >= 1,
        "the stream was actually cut at least once"
    );
    proxy.shutdown();

    for &id in &ids {
        let state = wait_wire_done(&direct, id);
        assert!(matches!(
            state,
            JobState::Done {
                ok: true,
                attempts: 1
            }
        ));
    }
    handle.shutdown();

    assert!(assignments_by_bench(&srv_dir).values().all(|&a| a == 1));
    assert_identical(&srv_dir, &reference);
    let _ = fs::remove_dir_all(&srv_dir);
}

/// A panic payload that detonates again when dropped: `run_job`'s
/// per-attempt `catch_unwind` catches the first panic, then dies for real
/// dropping the payload — the worker *thread* is gone mid-job, exactly
/// the fault the lease reaper exists for.
struct Grenade;

impl Drop for Grenade {
    fn drop(&mut self) {
        if !thread::panicking() {
            panic!("grenade payload detonated on drop: the worker thread dies");
        }
    }
}

/// Fault 3: a worker thread dies mid-job. The reaper must requeue its job
/// under a fresh epoch, a surviving worker re-runs it from attempt 1, and
/// the committed artifacts show no trace of the dead assignment.
#[test]
fn worker_panic_mid_job_is_reassigned() {
    let reference = reference_dir("panic");
    let dir = tmp_dir("panic-srv");
    let armed = Arc::new(AtomicBool::new(true));
    let grenade = {
        let armed = Arc::clone(&armed);
        move |job: &Job, ctx: &RunCtx| {
            if armed.swap(false, Ordering::SeqCst) {
                panic::panic_any(Grenade);
            }
            SpecRunner.run(job, ctx)
        }
    };
    let engine = Engine::start_with_runner(
        &EngineConfig {
            out_dir: dir.clone(),
            workers: 2,
            resume: false,
            lease: Duration::from_millis(100),
            live: None,
        },
        grenade,
    );
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(engine.submit(&spec_for(name)).expect("submit"));
    }
    for &id in &ids {
        let state = wait_engine_done(&engine, id);
        // attempts=1: the committed run is the clean reassignment, not a
        // retry of the dead one.
        assert!(
            matches!(
                state,
                JobState::Done {
                    ok: true,
                    attempts: 1
                }
            ),
            "job {id} ended {state:?}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.reassigned, 1, "exactly one lease expired");
    assert_eq!(engine.stale_results(), 0, "the dead worker never settled");
    // Shutdown terminates even though one worker thread is gone.
    engine.shutdown();

    let assignments = assignments_by_bench(&dir);
    assert_eq!(
        assignments.values().filter(|&&a| a == 2).count(),
        1,
        "exactly one bench burned a second worker: {assignments:?}"
    );
    assert!(assignments.values().all(|&a| a <= 2));
    assert_identical(&dir, &reference);
    let _ = fs::remove_dir_all(&dir);
}

/// Fault 4: a worker hangs past its lease, then wakes and finishes. The
/// reaper reassigns the job; the straggler's late result must be
/// discarded as stale — exactly one assignment's result reaches the
/// ledger.
#[test]
fn lease_expiry_after_hang_discards_the_stale_result() {
    let reference = reference_dir("hang");
    let dir = tmp_dir("hang-srv");
    let armed = Arc::new(AtomicBool::new(true));
    let hang = {
        let armed = Arc::clone(&armed);
        move |job: &Job, ctx: &RunCtx| {
            if armed.swap(false, Ordering::SeqCst) {
                // Well past the 100 ms lease: the reaper fires mid-sleep.
                thread::sleep(Duration::from_millis(1200));
            }
            SpecRunner.run(job, ctx)
        }
    };
    let engine = Engine::start_with_runner(
        &EngineConfig {
            out_dir: dir.clone(),
            workers: 2,
            resume: false,
            lease: Duration::from_millis(100),
            live: None,
        },
        hang,
    );
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(engine.submit(&spec_for(name)).expect("submit"));
    }
    for &id in &ids {
        let state = wait_engine_done(&engine, id);
        assert!(
            matches!(
                state,
                JobState::Done {
                    ok: true,
                    attempts: 1
                }
            ),
            "job {id} ended {state:?}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.reassigned, 1, "the hung worker's lease expired");
    // The straggler woke, finished, and its result was discarded.
    let deadline = Instant::now() + DEADLINE;
    while engine.stale_results() < 1 {
        assert!(Instant::now() < deadline, "stale result never surfaced");
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(engine.stale_results(), 1);
    engine.shutdown();

    let assignments = assignments_by_bench(&dir);
    assert_eq!(
        assignments.values().filter(|&&a| a == 2).count(),
        1,
        "exactly one bench was reassigned: {assignments:?}"
    );
    assert_identical(&dir, &reference);
    let _ = fs::remove_dir_all(&dir);
}

fn spawn_tipd(dir: &Path, resume: bool) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tipd"));
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--out")
        .arg(dir)
        .arg("--jobs")
        .arg("2")
        .stderr(Stdio::piped());
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd.spawn().expect("spawn tipd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            lines.read_line(&mut line).expect("tipd stderr") > 0,
            "tipd exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("tipd: listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .to_owned();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = lines.read_to_end(&mut sink);
    });
    (child, addr)
}

/// Fault 5: SIGKILL the daemon mid-campaign — no drain, no goodbye — then
/// restart with `--resume`. The journal's committed prefix is skipped,
/// the rest re-runs, and the artifacts match the uninterrupted oracle.
#[test]
fn daemon_sigkill_resumes_to_identical_artifacts() {
    let reference = reference_dir("kill");
    let dir = tmp_dir("kill-srv");

    let (mut child, addr) = spawn_tipd(&dir, false);
    let client = Client::new(&addr);
    for &name in names() {
        client.submit(&spec_for(name)).expect("submit");
    }
    // Let the campaign commit something, then pull the plug (SIGKILL).
    let deadline = Instant::now() + DEADLINE;
    while done_lines(&dir).is_empty() {
        assert!(Instant::now() < deadline, "no job ever committed");
        thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL tipd");
    let _ = child.wait();
    let at_kill = done_lines(&dir);
    assert!(!at_kill.is_empty());

    let (mut child, addr) = spawn_tipd(&dir, true);
    let client = Client::new(&addr);
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("resubmit"));
    }
    for &id in &ids {
        let state = wait_wire_done(&client, id);
        assert!(
            matches!(state, JobState::Done { ok: true, .. }),
            "job {id} ended {state:?}"
        );
    }
    // The journalled prefix was acknowledged, not re-executed.
    if at_kill.len() < SUITE_LEN {
        assert_eq!(
            client.status(ids[0]).expect("status"),
            JobState::Done {
                ok: true,
                attempts: 0
            }
        );
    }
    client.shutdown(true).expect("wire shutdown");
    let status = child.wait().expect("tipd exit");
    assert!(status.success(), "drained daemon exits clean: {status:?}");

    assert_identical(&dir, &reference);
    let _ = fs::remove_dir_all(&dir);
}

/// Fault 6: the submit queue hits the shed watermark. Surplus submits get
/// a typed `Overloaded{retry_after_ms}`; the client honors the hint and
/// retries until the queue drains — every job still runs exactly once.
#[test]
fn overload_shed_then_client_retry_completes_the_suite() {
    let reference = reference_dir("shed");
    let srv_dir = tmp_dir("shed-srv");
    // One worker holding each job 100 ms, shedding beyond one queued job:
    // a burst of submits is guaranteed to hit the watermark.
    let slow = |job: &Job, ctx: &RunCtx| {
        thread::sleep(Duration::from_millis(100));
        SpecRunner.run(job, ctx)
    };
    let mut cfg = ServerConfig::new(srv_dir.clone());
    cfg.workers = 1;
    cfg.shed_watermark = 1;
    cfg.retry_after_ms = 25;
    let handle = serve_with_runner(&cfg, slow).expect("bind");
    let client = Client::new(&handle.addr().to_string())
        .with_retry(5, Duration::from_millis(10))
        .with_request_retries(40)
        .with_seed(3);

    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("submit after shed"));
    }
    assert_eq!(ids, (1..=SUITE_LEN as u64).collect::<Vec<_>>());
    for &id in &ids {
        let state = wait_wire_done(&client, id);
        assert!(matches!(
            state,
            JobState::Done {
                ok: true,
                attempts: 1
            }
        ));
    }
    let stats = client.stats().expect("stats");
    assert!(stats.shed >= 1, "the watermark actually shed a submit");
    assert_eq!(stats.done, SUITE_LEN as u32);
    handle.shutdown();

    assert!(assignments_by_bench(&srv_dir).values().all(|&a| a == 1));
    assert_identical(&srv_dir, &reference);
    let _ = fs::remove_dir_all(&srv_dir);
}
