//! TIPW wire-protocol robustness: every request/response variant survives
//! a frame round-trip, and the decoder never panics — or over-allocates —
//! on arbitrary bytes.

use std::io::{Cursor, Read};

use proptest::prelude::*;
use tip_core::{ProfilerId, SamplerConfig, NUM_CATEGORIES};
use tip_isa::Granularity;
use tip_serve::proto::{
    read_frame, read_request, read_response, write_frame, write_request, write_response,
    DeltaFrame, ErrorCode, JobSpec, JobState, QueryKind, QueryRow, RemoteOutcome, Request,
    Response, ServerStats, FRAME_HEADER_LEN, MAGIC, MAX_PAYLOAD, MIN_VERSION, VERSION,
};
use tip_trace::framing::crc32_pair;
use tip_trace::TraceError;
use tip_workloads::SuiteScale;

fn spec() -> JobSpec {
    JobSpec {
        bench: "mcf".to_owned(),
        scale: SuiteScale::Test,
        seed: 7,
        core: "boom-4w".to_owned(),
        sampler: SamplerConfig::random(211, 99),
        profilers: vec![ProfilerId::Tip, ProfilerId::Software],
        max_attempts: 3,
        pgo: true,
    }
}

fn outcome(ok: bool) -> RemoteOutcome {
    RemoteOutcome {
        ok,
        attempts: 2,
        body: "status=ok\nbench=mcf\n".to_owned(),
        error_line: if ok {
            String::new()
        } else {
            "sim diverged".to_owned()
        },
        wall_ms: 123.75,
        worker: 1,
        cycles: 1_000_000,
        instructions: 750_000,
        ipc: 0.75,
    }
}

/// A delta flush with negative increments and an empty profiler list —
/// the signed-unit and empty-collection edges of the v4 encoding.
fn delta_frame(seq: u64) -> DeltaFrame {
    DeltaFrame {
        bench: "mcf".to_owned(),
        attempt: 2,
        seq,
        granularity: Granularity::Function,
        num_symbols: 32,
        per_profiler: vec![
            (ProfilerId::Tip, vec![(0, 840), (7, -1_680), (31, 1)]),
            (ProfilerId::Software, Vec::new()),
        ],
        oracle: vec![(3, i64::MIN), (4, i64::MAX)],
        stack: vec![-5; NUM_CATEGORIES],
        cycles: seq.saturating_mul(250_000),
    }
}

fn every_request() -> Vec<Request> {
    vec![
        Request::Submit {
            spec: spec(),
            req_id: 0xFEED_FACE,
        },
        Request::Submit {
            spec: JobSpec::new("exchange2", SuiteScale::Small),
            req_id: 0,
        },
        Request::Status { job: 1 },
        Request::Watch {
            job: u64::MAX,
            from_seq: 0,
        },
        Request::Watch {
            job: 17,
            from_seq: u64::MAX,
        },
        Request::Result { job: 42 },
        Request::Cancel { job: 3 },
        Request::Stats,
        Request::Shutdown { drain: true },
        Request::Shutdown { drain: false },
        Request::Register {
            name: "agent@10.0.0.7:9000".to_owned(),
            workers: 4,
        },
        Request::Beacon { daemon: 3 },
        Request::PollJob { daemon: u64::MAX },
        Request::PushResult {
            daemon: 3,
            task: 17,
            epoch: 2,
            outcome: outcome(true),
        },
        Request::PushResult {
            daemon: 1,
            task: 1,
            epoch: 0,
            outcome: outcome(false),
        },
        Request::PushDelta {
            daemon: 0,
            frame: delta_frame(1),
        },
        Request::PushDelta {
            daemon: u64::MAX,
            frame: delta_frame(u64::MAX),
        },
        Request::Query {
            kind: QueryKind::TopN,
            bench: String::new(),
            profiler: None,
            n: 0,
        },
        Request::Query {
            kind: QueryKind::ErrorTrajectory,
            bench: "mcf".to_owned(),
            profiler: Some(ProfilerId::Tip),
            n: u32::MAX,
        },
        Request::Query {
            kind: QueryKind::CycleStack,
            bench: "lbm".to_owned(),
            profiler: Some(ProfilerId::TipLastCommitDrain),
            n: 7,
        },
    ]
}

fn every_response() -> Vec<Response> {
    let states = [
        JobState::Queued { ahead: 4 },
        JobState::Running { worker: 2 },
        JobState::Done {
            ok: true,
            attempts: 1,
        },
        JobState::Done {
            ok: false,
            attempts: 3,
        },
        JobState::Cancelled,
    ];
    let mut all = vec![
        Response::Submitted { job: 9 },
        Response::ResultBody {
            job: 9,
            body: "status=ok\nbench=mcf\n".to_owned(),
        },
        Response::Cancelled { job: 9, ok: false },
        Response::Stats(ServerStats {
            queued: 1,
            running: 2,
            done: 3,
            failed: 4,
            cancelled: 5,
            workers: 6,
            connections: 7,
            mean_queue_wait_ms: 12.5,
            worker_utilization: 0.75,
            uptime_ms: 123_456,
            reassigned: 8,
            shed: 9,
            daemons: 2,
            stale: 1,
            deltas: 1_234,
            streamed: 5,
        }),
        Response::ShuttingDown { drain: true },
        Response::Registered {
            daemon: 5,
            lease_ms: 10_000,
        },
        Response::BeaconAck { tasks: 3 },
        Response::Assignment {
            task: 17,
            epoch: 4,
            spec: spec(),
        },
        Response::NoWork { draining: true },
        Response::NoWork { draining: false },
        Response::ResultAck { accepted: true },
        Response::ResultAck { accepted: false },
        Response::Busy {
            active: 32,
            limit: 32,
        },
        Response::Overloaded {
            retry_after_ms: 500,
            queued: 300,
        },
        Response::QueryReply { rows: Vec::new() },
        Response::QueryReply {
            rows: vec![
                QueryRow {
                    bench: "mcf".to_owned(),
                    profiler: Some(ProfilerId::Tip),
                    label: "primal_bea_mpp".to_owned(),
                    value: 123_456.0,
                    share: 0.42,
                },
                QueryRow {
                    bench: "lbm".to_owned(),
                    profiler: None,
                    label: "Load stall".to_owned(),
                    value: -1.5,
                    share: 0.0,
                },
            ],
        },
        Response::DeltaAck { accepted: true },
        Response::DeltaAck { accepted: false },
    ];
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::UnknownBench,
        ErrorCode::UnknownCore,
        ErrorCode::UnknownJob,
        ErrorCode::NotReady,
        ErrorCode::Draining,
        ErrorCode::Internal,
        ErrorCode::RateLimited,
        ErrorCode::UnknownDaemon,
    ] {
        all.push(Response::Error {
            code,
            message: format!("{code:?} happened"),
        });
    }
    for (i, state) in states.into_iter().enumerate() {
        all.push(Response::Status { job: 9, state });
        all.push(Response::Progress {
            job: 9,
            state,
            seq: i as u64,
            cycles: (i as u64) * 250_000,
        });
    }
    all
}

#[test]
fn every_request_variant_round_trips() {
    for req in every_request() {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).expect("encode");
        let back = read_request(&mut Cursor::new(&wire))
            .expect("decode")
            .expect("one frame");
        assert_eq!(back, req);
        // And the stream is exactly one frame long.
        let mut cursor = Cursor::new(&wire);
        let _ = read_request(&mut cursor).expect("frame");
        assert!(read_request(&mut cursor).expect("clean eof").is_none());
    }
}

#[test]
fn every_response_variant_round_trips() {
    for resp in every_response() {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).expect("encode");
        let back = read_response(&mut Cursor::new(&wire))
            .expect("decode")
            .expect("one frame");
        assert_eq!(back, resp);
    }
}

#[test]
fn damaged_frames_classify_like_trace_streams() {
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Stats).expect("encode");

    // Bad magic.
    let mut bad = wire.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadMagic(_))
    ));

    // Future version.
    let mut bad = wire.clone();
    bad[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    // Flipped payload byte: CRC catches it.
    let mut bad = wire.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::Corrupt { .. })
    ));

    // Cut off mid-frame.
    let bad = &wire[..wire.len() - 1];
    assert!(matches!(
        read_request(&mut Cursor::new(bad)),
        Err(TraceError::Truncated { .. })
    ));

    // Zero-length payload: typed BadLength, stream still aligned.
    let mut bad = wire.clone();
    bad[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadLength { len: 0, .. })
    ));

    // Over-cap payload: typed BadLength before any allocation.
    let mut bad = wire;
    bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadLength { len, cap }) if len == MAX_PAYLOAD + 1 && cap == MAX_PAYLOAD
    ));
}

#[test]
fn unknown_kinds_are_malformed_not_panics() {
    let mut wire = Vec::new();
    write_frame(&mut wire, 0x7777, &[1, 2, 3]).expect("encode");
    assert!(matches!(
        read_request(&mut Cursor::new(&wire)),
        Err(TraceError::Malformed(_))
    ));
    assert!(matches!(
        read_response(&mut Cursor::new(&wire)),
        Err(TraceError::Malformed(_))
    ));
}

proptest! {
    /// The frame reader never panics on arbitrary bytes — it returns a
    /// classified error, a frame, or clean EOF.
    #[test]
    fn frame_reader_never_panics(bytes in proptest::collection::vec(0u32..256, 0usize..2048)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut cursor = Cursor::new(bytes.as_slice());
        let _ = read_frame(&mut cursor);
    }

    /// Request/response decoding never panics on arbitrary payloads under
    /// any kind, including the valid ones.
    #[test]
    fn message_decoders_never_panic(
        kind in 0u32..0x100,
        payload in proptest::collection::vec(0u32..256, 0usize..256),
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let _ = Request::decode(kind as u16, &payload);
        let _ = Response::decode(kind as u16, &payload);
    }

    /// A valid frame prefixed by garbage fails fast instead of resyncing
    /// silently (network streams must not skip hostile bytes).
    #[test]
    fn garbage_prefix_is_rejected(prefix in proptest::collection::vec(0u32..256, 1usize..16)) {
        let prefix: Vec<u8> = prefix.into_iter().map(|b| b as u8).collect();
        prop_assume!(prefix[..4.min(prefix.len())] != MAGIC[..4.min(prefix.len())]);
        let mut wire = prefix;
        write_request(&mut wire, &Request::Stats).expect("encode");
        prop_assert!(read_request(&mut Cursor::new(&wire)).is_err());
    }
}

/// A reader that serves bytes in adversarially sized pieces — the wire
/// as seen through a slow, fragmenting network (or chaosnet's
/// `SplitChunks`). Sizes cycle through `sizes`.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: Vec<usize>,
    turn: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let want = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// Feeding the decoder adversarially split/merged byte chunks never
    /// panics, and it classifies damage identically to whole-frame
    /// decoding: same frames out, same error kind on the same stream.
    #[test]
    fn chunked_reads_classify_like_whole_buffer_reads(
        sizes in proptest::collection::vec(1usize..64, 1usize..16),
        flip in (proptest::bool::ANY, 0usize..4096, 1u32..256),
    ) {
        let mut wire = Vec::new();
        for req in every_request() {
            write_request(&mut wire, &req).expect("encode");
        }
        let (do_flip, offset, xor) = flip;
        if do_flip {
            let off = offset % wire.len();
            wire[off] ^= xor as u8;
        }
        let mut whole = Cursor::new(wire.as_slice());
        let mut chunked = Chunked { data: &wire, pos: 0, sizes, turn: 0 };
        loop {
            let a = read_request(&mut whole);
            let b = read_request(&mut chunked);
            match (&a, &b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(
                    std::mem::discriminant(x),
                    std::mem::discriminant(y)
                ),
                _ => prop_assert!(false, "classification diverged: {a:?} vs {b:?}"),
            }
            if matches!(a, Ok(None) | Err(_)) {
                break;
            }
        }
    }
}

/// A version-1 peer's frames still read: the frame layer accepts any
/// version in `MIN_VERSION..=VERSION`, and v2 payload decoders default
/// the appended tail fields when the payload ends early.
#[test]
fn v1_frames_and_payloads_decode_with_defaulted_tails() {
    // Frame layer: patch a v2 frame down to version 1 (CRC recomputed).
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Stats).expect("encode");
    wire[4..6].copy_from_slice(&MIN_VERSION.to_le_bytes());
    let crc = crc32_pair(&wire[..12], &wire[FRAME_HEADER_LEN..]);
    wire[12..16].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&wire)),
        Ok(Some(Request::Stats))
    ));

    // Below MIN_VERSION is still rejected.
    let mut wire_v0 = wire.clone();
    wire_v0[4..6].copy_from_slice(&0u16.to_le_bytes());
    let crc = crc32_pair(&wire_v0[..12], &wire_v0[FRAME_HEADER_LEN..]);
    wire_v0[12..16].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&wire_v0)),
        Err(TraceError::UnsupportedVersion(0))
    ));

    // Payload layer: a v1 `Watch` payload is just the job id — exactly a
    // `Status` payload — and must decode with from_seq defaulted to 0.
    let (watch_kind, _) = Request::Watch {
        job: 42,
        from_seq: 7,
    }
    .encode();
    let (_, v1_payload) = Request::Status { job: 42 }.encode();
    assert_eq!(
        Request::decode(watch_kind, &v1_payload).expect("v1 watch decodes"),
        Request::Watch {
            job: 42,
            from_seq: 0
        }
    );

    // Same trick for `Progress` (a v1 payload has no seq, and pre-v4 none
    // has cycles): its prefix is exactly a `Status` response payload.
    let state = JobState::Running { worker: 3 };
    let (progress_kind, _) = Response::Progress {
        job: 5,
        state,
        seq: 9,
        cycles: 77,
    }
    .encode();
    let (_, v1_payload) = Response::Status { job: 5, state }.encode();
    assert_eq!(
        Response::decode(progress_kind, &v1_payload).expect("v1 progress decodes"),
        Response::Progress {
            job: 5,
            state,
            seq: 0,
            cycles: 0
        }
    );
}

/// A version-2 peer (pre-fleet) still interoperates with a v4 reader: v2
/// frames pass the frame layer, and a v2 `Stats` payload — which ends
/// before the appended `daemons`/`stale` (v3) and `deltas`/`streamed`
/// (v4) counters — decodes with those tails defaulted to 0.
#[test]
fn v2_frames_and_stats_payloads_decode_with_defaulted_tails() {
    // Frame layer: patch a v4 frame down to version 2 (CRC recomputed).
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Stats).expect("encode");
    wire[4..6].copy_from_slice(&2u16.to_le_bytes());
    let crc = crc32_pair(&wire[..12], &wire[FRAME_HEADER_LEN..]);
    wire[12..16].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&wire)),
        Ok(Some(Request::Stats))
    ));

    // Payload layer: a v2 Stats payload is the v4 payload minus the v3
    // tails (two u32s) and v4 tails (one u64, one u32) — all fixed-width
    // little-endian encoding.
    let full = ServerStats {
        queued: 1,
        running: 2,
        done: 3,
        failed: 4,
        cancelled: 5,
        workers: 6,
        connections: 7,
        mean_queue_wait_ms: 12.5,
        worker_utilization: 0.75,
        uptime_ms: 123_456,
        reassigned: 8,
        shed: 9,
        daemons: 11,
        stale: 13,
        deltas: 17,
        streamed: 19,
    };
    let (stats_kind, v4_payload) = Response::Stats(full).encode();
    let v2_payload = &v4_payload[..v4_payload.len() - 20];
    let decoded = Response::decode(stats_kind, v2_payload).expect("v2 stats decodes");
    assert_eq!(
        decoded,
        Response::Stats(ServerStats {
            daemons: 0,
            stale: 0,
            deltas: 0,
            streamed: 0,
            ..full
        })
    );
}

/// A version-3 peer (fleet, pre-streaming) interoperates with a v4
/// reader: its `Stats` payload keeps the v3 `daemons`/`stale` tails but
/// ends before `deltas`/`streamed`, and its `Progress` payload ends
/// before `cycles` — all default to 0, nothing shifts.
#[test]
fn v3_payloads_decode_with_defaulted_v4_tails() {
    let full = ServerStats {
        queued: 1,
        running: 2,
        done: 3,
        failed: 4,
        cancelled: 5,
        workers: 6,
        connections: 7,
        mean_queue_wait_ms: 12.5,
        worker_utilization: 0.75,
        uptime_ms: 123_456,
        reassigned: 8,
        shed: 9,
        daemons: 11,
        stale: 13,
        deltas: 17,
        streamed: 19,
    };
    let (stats_kind, v4_payload) = Response::Stats(full).encode();
    let v3_payload = &v4_payload[..v4_payload.len() - 12];
    assert_eq!(
        Response::decode(stats_kind, v3_payload).expect("v3 stats decodes"),
        Response::Stats(ServerStats {
            deltas: 0,
            streamed: 0,
            ..full
        })
    );

    let state = JobState::Running { worker: 3 };
    let (progress_kind, v4_payload) = Response::Progress {
        job: 5,
        state,
        seq: 9,
        cycles: 1_000_000,
    }
    .encode();
    let v3_payload = &v4_payload[..v4_payload.len() - 8];
    assert_eq!(
        Response::decode(progress_kind, v3_payload).expect("v3 progress decodes"),
        Response::Progress {
            job: 5,
            state,
            seq: 9,
            cycles: 0
        }
    );
}

/// A version-4 peer (streaming, pre-pgo) interoperates with a v5 reader:
/// its `Submit` payload ends after `req_id` and its `Assignment` payload
/// ends after the spec — both decode with the appended `pgo` flag
/// defaulted to `false`, and a v5 frame carrying `pgo: true` round-trips.
#[test]
fn v4_submit_and_assignment_payloads_decode_with_pgo_defaulted() {
    // spec() sets pgo: true; chopping the one-byte tail must yield the
    // same spec with pgo back to false.
    let plain = JobSpec {
        pgo: false,
        ..spec()
    };

    let (submit_kind, v5_payload) = Request::Submit {
        spec: spec(),
        req_id: 7,
    }
    .encode();
    let v4_payload = &v5_payload[..v5_payload.len() - 1];
    assert_eq!(
        Request::decode(submit_kind, v4_payload).expect("v4 submit decodes"),
        Request::Submit {
            spec: plain.clone(),
            req_id: 7,
        }
    );

    let (assign_kind, v5_payload) = Response::Assignment {
        task: 17,
        epoch: 4,
        spec: spec(),
    }
    .encode();
    let v4_payload = &v5_payload[..v5_payload.len() - 1];
    assert_eq!(
        Response::decode(assign_kind, v4_payload).expect("v4 assignment decodes"),
        Response::Assignment {
            task: 17,
            epoch: 4,
            spec: plain,
        }
    );
}

/// The v4 delta/query frames round-trip their edge values exactly —
/// `i64::MIN`/`i64::MAX` units survive the two's-complement wire encoding
/// — and a hostile `PushDelta` with out-of-range symbols decodes to an
/// event whose deltas are clamped, never a panic.
#[test]
fn v4_delta_frames_round_trip_signed_units_and_clamp_hostile_symbols() {
    let frame = delta_frame(3);
    let mut wire = Vec::new();
    write_request(
        &mut wire,
        &Request::PushDelta {
            daemon: 0,
            frame: frame.clone(),
        },
    )
    .expect("encode");
    let back = read_request(&mut Cursor::new(&wire))
        .expect("decode")
        .expect("one frame");
    let Request::PushDelta { frame: decoded, .. } = back else {
        panic!("wrong variant: {back:?}");
    };
    assert_eq!(decoded, frame);

    // A symbol at or past num_symbols is hostile input: into_event clamps it
    // out instead of letting it index past the dense vectors.
    let hostile = DeltaFrame {
        num_symbols: 4,
        oracle: vec![(2, 840), (4, 840), (u32::MAX, 840)],
        ..frame
    };
    let event = hostile.into_event();
    assert_eq!(event.deltas.oracle.entries(), &[(2, 840)]);
}

#[test]
fn header_constant_matches_layout() {
    let mut wire = Vec::new();
    write_frame(&mut wire, 1, &[0xAB]).expect("encode");
    assert_eq!(wire.len(), FRAME_HEADER_LEN + 1);
    assert_eq!(&wire[0..4], &MAGIC);
}
