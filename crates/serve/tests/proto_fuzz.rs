//! TIPW wire-protocol robustness: every request/response variant survives
//! a frame round-trip, and the decoder never panics — or over-allocates —
//! on arbitrary bytes.

use std::io::Cursor;

use proptest::prelude::*;
use tip_core::{ProfilerId, SamplerConfig};
use tip_serve::proto::{
    read_frame, read_request, read_response, write_frame, write_request, write_response, ErrorCode,
    JobSpec, JobState, Request, Response, ServerStats, FRAME_HEADER_LEN, MAGIC, MAX_PAYLOAD,
    VERSION,
};
use tip_trace::TraceError;
use tip_workloads::SuiteScale;

fn spec() -> JobSpec {
    JobSpec {
        bench: "mcf".to_owned(),
        scale: SuiteScale::Test,
        seed: 7,
        core: "boom-4w".to_owned(),
        sampler: SamplerConfig::random(211, 99),
        profilers: vec![ProfilerId::Tip, ProfilerId::Software],
        max_attempts: 3,
    }
}

fn every_request() -> Vec<Request> {
    vec![
        Request::Submit(spec()),
        Request::Submit(JobSpec::new("exchange2", SuiteScale::Small)),
        Request::Status { job: 1 },
        Request::Watch { job: u64::MAX },
        Request::Result { job: 42 },
        Request::Cancel { job: 3 },
        Request::Stats,
        Request::Shutdown { drain: true },
        Request::Shutdown { drain: false },
    ]
}

fn every_response() -> Vec<Response> {
    let states = [
        JobState::Queued { ahead: 4 },
        JobState::Running { worker: 2 },
        JobState::Done {
            ok: true,
            attempts: 1,
        },
        JobState::Done {
            ok: false,
            attempts: 3,
        },
        JobState::Cancelled,
    ];
    let mut all = vec![
        Response::Submitted { job: 9 },
        Response::ResultBody {
            job: 9,
            body: "status=ok\nbench=mcf\n".to_owned(),
        },
        Response::Cancelled { job: 9, ok: false },
        Response::Stats(ServerStats {
            queued: 1,
            running: 2,
            done: 3,
            failed: 4,
            cancelled: 5,
            workers: 6,
            connections: 7,
            mean_queue_wait_ms: 12.5,
            worker_utilization: 0.75,
            uptime_ms: 123_456,
        }),
        Response::ShuttingDown { drain: true },
        Response::Busy {
            active: 32,
            limit: 32,
        },
    ];
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::UnknownBench,
        ErrorCode::UnknownCore,
        ErrorCode::UnknownJob,
        ErrorCode::NotReady,
        ErrorCode::Draining,
        ErrorCode::Internal,
    ] {
        all.push(Response::Error {
            code,
            message: format!("{code:?} happened"),
        });
    }
    for state in states {
        all.push(Response::Status { job: 9, state });
        all.push(Response::Progress { job: 9, state });
    }
    all
}

#[test]
fn every_request_variant_round_trips() {
    for req in every_request() {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).expect("encode");
        let back = read_request(&mut Cursor::new(&wire))
            .expect("decode")
            .expect("one frame");
        assert_eq!(back, req);
        // And the stream is exactly one frame long.
        let mut cursor = Cursor::new(&wire);
        let _ = read_request(&mut cursor).expect("frame");
        assert!(read_request(&mut cursor).expect("clean eof").is_none());
    }
}

#[test]
fn every_response_variant_round_trips() {
    for resp in every_response() {
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).expect("encode");
        let back = read_response(&mut Cursor::new(&wire))
            .expect("decode")
            .expect("one frame");
        assert_eq!(back, resp);
    }
}

#[test]
fn damaged_frames_classify_like_trace_streams() {
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Stats).expect("encode");

    // Bad magic.
    let mut bad = wire.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadMagic(_))
    ));

    // Future version.
    let mut bad = wire.clone();
    bad[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    // Flipped payload byte: CRC catches it.
    let mut bad = wire.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::Corrupt { .. })
    ));

    // Cut off mid-frame.
    let bad = &wire[..wire.len() - 1];
    assert!(matches!(
        read_request(&mut Cursor::new(bad)),
        Err(TraceError::Truncated { .. })
    ));

    // Zero-length payload: typed BadLength, stream still aligned.
    let mut bad = wire.clone();
    bad[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadLength { len: 0, .. })
    ));

    // Over-cap payload: typed BadLength before any allocation.
    let mut bad = wire;
    bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        read_request(&mut Cursor::new(&bad)),
        Err(TraceError::BadLength { len, cap }) if len == MAX_PAYLOAD + 1 && cap == MAX_PAYLOAD
    ));
}

#[test]
fn unknown_kinds_are_malformed_not_panics() {
    let mut wire = Vec::new();
    write_frame(&mut wire, 0x7777, &[1, 2, 3]).expect("encode");
    assert!(matches!(
        read_request(&mut Cursor::new(&wire)),
        Err(TraceError::Malformed(_))
    ));
    assert!(matches!(
        read_response(&mut Cursor::new(&wire)),
        Err(TraceError::Malformed(_))
    ));
}

proptest! {
    /// The frame reader never panics on arbitrary bytes — it returns a
    /// classified error, a frame, or clean EOF.
    #[test]
    fn frame_reader_never_panics(bytes in proptest::collection::vec(0u32..256, 0usize..2048)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut cursor = Cursor::new(bytes.as_slice());
        let _ = read_frame(&mut cursor);
    }

    /// Request/response decoding never panics on arbitrary payloads under
    /// any kind, including the valid ones.
    #[test]
    fn message_decoders_never_panic(
        kind in 0u32..0x100,
        payload in proptest::collection::vec(0u32..256, 0usize..256),
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let _ = Request::decode(kind as u16, &payload);
        let _ = Response::decode(kind as u16, &payload);
    }

    /// A valid frame prefixed by garbage fails fast instead of resyncing
    /// silently (network streams must not skip hostile bytes).
    #[test]
    fn garbage_prefix_is_rejected(prefix in proptest::collection::vec(0u32..256, 1usize..16)) {
        let prefix: Vec<u8> = prefix.into_iter().map(|b| b as u8).collect();
        prop_assume!(prefix[..4.min(prefix.len())] != MAGIC[..4.min(prefix.len())]);
        let mut wire = prefix;
        write_request(&mut wire, &Request::Stats).expect("encode");
        prop_assert!(read_request(&mut Cursor::new(&wire)).is_err());
    }
}

#[test]
fn header_constant_matches_layout() {
    let mut wire = Vec::new();
    write_frame(&mut wire, 1, &[0xAB]).expect("encode");
    assert_eq!(wire.len(), FRAME_HEADER_LEN + 1);
    assert_eq!(&wire[0..4], &MAGIC);
}
