//! Fleet equivalence under compound faults — the acceptance scenario for
//! the coordinator layer: a campaign sharded across two real `tipd
//! --join` daemons behind a chaotic proxy, with one daemon SIGKILLed
//! mid-campaign, then the coordinator itself SIGKILLed and restarted with
//! `--resume`. The artifacts (`journal.txt`, `<bench>.result`,
//! `failures.txt`) must come out byte-identical to an uninterrupted
//! *local* [`run_campaign`] over the same job sequence, and no job
//! settled in the journal may ever have been dispatched again.
//!
//! The no-double-run proof leans on two ledger facts: the committer
//! settles jobs strictly in submission order (so the journal at any
//! instant is a prefix of the suite), and a resume skip-ack adds no
//! `metrics.txt` row (so the final metrics file lists exactly the jobs
//! the resumed incarnation actually dispatched — a settled job that
//! re-ran would show up as an extra row).
//!
//! `metrics.txt` is host wall-clock timing and excluded from the byte
//! diff, exactly as in `serve_chaos.rs` — its `assignments`/`daemon`
//! columns are instead asserted directly.

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use tip_bench::campaign::{run_campaign, CampaignConfig, CampaignOutcome};
use tip_bench::executor::SpecRunner;
use tip_core::{ProfileDelta, ProfilerId};
use tip_isa::{Granularity, SymbolId};
use tip_serve::{chaos_proxy, ChaosConfig, Client, JobSpec, JobState, QueryKind};
use tip_trace::fault::{Fault, FaultPlan};
use tip_workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

/// Enough benches that both kills land mid-campaign; small enough to keep
/// the scenario quick at `Test` scale.
const SUITE_LEN: usize = 5;

const DEADLINE: Duration = Duration::from_secs(300);

/// Short enough that a killed daemon's assignments reassign quickly;
/// long enough that chaotic-link retry backoff rarely outlives a lease
/// (and when it does, the epoch check absorbs it).
const LEASE_MS: u64 = 1000;

fn names() -> &'static [&'static str] {
    &BENCHMARK_NAMES[..SUITE_LEN]
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tip-fleet-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn spec_for(name: &str) -> JobSpec {
    let mut spec = JobSpec::new(name, SuiteScale::Test);
    spec.profilers = vec![ProfilerId::Tip];
    spec
}

/// The fault-free local oracle: same benches, same order, same specs.
fn reference_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(&format!("{tag}-ref"));
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        out_dir: Some(dir.clone()),
        ..CampaignConfig::default()
    };
    let benches = names()
        .iter()
        .map(|&n| benchmark(n, SuiteScale::Test))
        .collect();
    let outcome = run_campaign(benches, &config, SpecRunner);
    assert_eq!(outcome.completed.len(), SUITE_LEN, "oracle run is clean");
    dir
}

/// The deterministic artifacts; `metrics.txt` is host timing and excluded.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("campaign dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".result") || name == "journal.txt" || name == "failures.txt"
        })
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("artifact readable"),
            )
        })
        .collect()
}

fn done_lines(dir: &Path) -> Vec<String> {
    fs::read_to_string(dir.join("journal.txt"))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.strip_prefix("done ").map(str::to_owned))
        .collect()
}

/// Per-bench `(assignments, daemon)` from `metrics.txt` — which jobs the
/// final coordinator incarnation dispatched, how many times, and proof
/// they ran on a registered daemon rather than a local worker.
fn metrics_rows(dir: &Path) -> BTreeMap<String, (u32, u64)> {
    fs::read_to_string(dir.join("metrics.txt"))
        .expect("metrics.txt exists")
        .lines()
        .filter(|l| l.starts_with("bench="))
        .map(|l| {
            let mut name = String::new();
            let mut assignments = 0u32;
            let mut daemon = 0u64;
            for tok in l.split_whitespace() {
                if let Some(v) = tok.strip_prefix("bench=") {
                    name = v.to_owned();
                }
                if let Some(v) = tok.strip_prefix("assignments=") {
                    assignments = v.parse().expect("assignments count");
                }
                if let Some(v) = tok.strip_prefix("daemon=") {
                    daemon = v.parse().expect("daemon id");
                }
            }
            (name, (assignments, daemon))
        })
        .collect()
}

fn assert_identical(dir: &Path, reference: &Path) {
    assert_eq!(
        done_lines(dir).len(),
        SUITE_LEN,
        "journal covers the whole suite"
    );
    assert_eq!(
        artifacts(reference),
        artifacts(dir),
        "artifacts byte-identical to the fault-free local run"
    );
    let _ = fs::remove_dir_all(reference);
}

/// Status polling that shrugs off wire damage and coordinator downtime:
/// only the deadline gives up.
fn wait_wire_done(client: &Client, job: u64) -> JobState {
    let deadline = Instant::now() + DEADLINE;
    loop {
        if let Ok(state) = client.status(job) {
            if state.is_terminal() {
                return state;
            }
        }
        assert!(Instant::now() < deadline, "job {job} never settled");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Parses the `tipd: listening on ADDR ...` announcement and keeps
/// draining the child's stderr so it never blocks on a full pipe.
fn read_addr_then_drain(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            lines.read_line(&mut line).expect("tipd stderr") > 0,
            "tipd exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("tipd: listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .to_owned();
        }
    };
    thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = lines.read_to_end(&mut sink);
    });
    addr
}

fn spawn_coordinator(dir: &Path, resume: bool) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tipd"));
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--out")
        .arg(dir)
        .arg("--coordinator")
        .arg("--lease-ms")
        .arg(LEASE_MS.to_string())
        .stderr(Stdio::piped());
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd.spawn().expect("spawn coordinator");
    let addr = read_addr_then_drain(&mut child);
    (child, addr)
}

fn spawn_agent(coordinator: &str, name: &str) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tipd"))
        .arg("--join")
        .arg(coordinator)
        .arg("--jobs")
        .arg("2")
        .arg("--name")
        .arg(name)
        .arg("--give-up-ms")
        .arg("120000")
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn agent");
    let stderr = child.stderr.take().expect("piped stderr");
    thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = BufReader::new(stderr).read_to_end(&mut sink);
    });
    child
}

fn fleet_client(addr: &str) -> Client {
    Client::new(addr)
        .with_retry(8, Duration::from_millis(10))
        .with_request_retries(12)
        .with_seed(7)
}

/// The acceptance scenario: shard across two daemons through a corrupting
/// proxy, SIGKILL one daemon mid-campaign, SIGKILL the coordinator,
/// restart it with `--resume`, and require byte-identical artifacts with
/// no settled job dispatched twice.
#[test]
fn fleet_survives_daemon_and_coordinator_kills_to_identical_artifacts() {
    let reference = reference_dir("kills");
    let dir = tmp_dir("kills-srv");

    let (mut coord, coord_addr) = spawn_coordinator(&dir, false);
    // Every coordinator<->daemon frame risks a flipped byte.
    let proxy = chaos_proxy(&ChaosConfig::new(
        &coord_addr,
        FaultPlan::new(0xF1EE7, vec![Fault::CorruptChunks { one_in: 12 }]),
    ))
    .expect("proxy bind");
    let proxy_addr = proxy.addr().to_string();
    let mut d1 = spawn_agent(&proxy_addr, "d1");
    let mut d2 = spawn_agent(&proxy_addr, "d2");

    // Submits go straight to the coordinator; only the fleet hop is
    // chaotic (serve_chaos.rs already covers the client hop).
    let client = fleet_client(&coord_addr);
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("submit"));
    }
    assert_eq!(ids, (1..=SUITE_LEN as u64).collect::<Vec<_>>());

    // Let the fleet commit something, then SIGKILL one daemon — no
    // deregistration, no goodbye; its leases must expire and reassign.
    let deadline = Instant::now() + DEADLINE;
    while done_lines(&dir).is_empty() {
        assert!(Instant::now() < deadline, "no job ever committed");
        thread::sleep(Duration::from_millis(10));
    }
    d1.kill().expect("SIGKILL d1");
    let _ = d1.wait();

    // Then pull the plug on the coordinator itself.
    coord.kill().expect("SIGKILL coordinator");
    let _ = coord.wait();
    let at_kill = done_lines(&dir);
    assert!(!at_kill.is_empty());

    // Restart with --resume on a fresh port and swing the proxy over;
    // the surviving daemon's next beacon/poll under its dead
    // registration gets UnknownDaemon and re-registers.
    let (mut coord, coord_addr) = spawn_coordinator(&dir, true);
    proxy.set_upstream(&coord_addr);

    let client = fleet_client(&coord_addr);
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("resubmit"));
    }
    for &id in &ids {
        let state = wait_wire_done(&client, id);
        assert!(
            matches!(state, JobState::Done { ok: true, .. }),
            "job {id} ended {state:?}"
        );
    }
    // The committer settles in submission order, so the journal at kill
    // time is a prefix of the suite — its first job must have been
    // acknowledged from the journal, not re-executed.
    assert_eq!(
        client.status(ids[0]).expect("status"),
        JobState::Done {
            ok: true,
            attempts: 0
        }
    );
    let stats = client.stats().expect("stats");
    assert!(stats.daemons >= 1, "the survivor re-registered: {stats:?}");

    // Graceful drain: the coordinator must release the surviving agent
    // (NoWork{draining}) before closing its listener, so the agent exits
    // clean instead of spinning out its give-up window.
    client.shutdown(true).expect("wire shutdown");
    let status = coord.wait().expect("coordinator exit");
    assert!(
        status.success(),
        "drained coordinator exits clean: {status:?}"
    );
    let status = d2.wait().expect("agent exit");
    assert!(status.success(), "released agent exits clean: {status:?}");

    let chaos = proxy.stats();
    assert!(
        chaos.total().corrupted_chunks >= 1,
        "the fault actually fired: {chaos:?}"
    );
    proxy.shutdown();

    assert_identical(&dir, &reference);

    // No settled job ran twice: a resume skip-ack writes no metrics row,
    // so the final metrics.txt lists exactly what the resumed incarnation
    // dispatched — the journalled prefix must be absent, and every other
    // job must have run on a registered daemon.
    let rows = metrics_rows(&dir);
    for bench in &at_kill {
        assert!(
            !rows.contains_key(bench),
            "settled job {bench} was dispatched again after resume"
        );
    }
    for &name in names() {
        if !at_kill.iter().any(|b| b == name) {
            let (assignments, daemon) = rows[name];
            assert!(assignments >= 1, "{name} never dispatched");
            assert!(daemon >= 1, "{name} ran outside the fleet");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The streaming acceptance scenario at fleet fan-out 2: two `tipd --join`
/// agents push `PushDelta` frames to the coordinator while the campaign
/// runs, and once every job settles the coordinator's wire-queryable
/// aggregate must equal the finished profiles of an uninterrupted *local*
/// [`run_campaign`] exactly — same quantized units, same shares, same
/// symbol names — while the artifacts stay byte-identical. Streaming is an
/// observation path, not a second source of truth.
#[test]
fn fleet_streams_deltas_and_live_queries_match_the_local_reference() {
    let ref_dir = tmp_dir("stream-ref");
    let config = CampaignConfig {
        profilers: vec![ProfilerId::Tip],
        out_dir: Some(ref_dir.clone()),
        ..CampaignConfig::default()
    };
    let benches = names()
        .iter()
        .map(|&n| benchmark(n, SuiteScale::Test))
        .collect();
    let reference: CampaignOutcome = run_campaign(benches, &config, SpecRunner);
    assert_eq!(reference.completed.len(), SUITE_LEN, "oracle run is clean");

    let dir = tmp_dir("stream-srv");
    let (mut coord, coord_addr) = spawn_coordinator(&dir, false);
    let mut d1 = spawn_agent(&coord_addr, "d1");
    let mut d2 = spawn_agent(&coord_addr, "d2");

    let client = fleet_client(&coord_addr);
    let mut ids = Vec::new();
    for &name in names() {
        ids.push(client.submit(&spec_for(name)).expect("submit"));
    }

    // Watch the stream come up while jobs settle. Agent pushes race the
    // committer, so "a delta arrived mid-campaign" is observed, not
    // required — the post-completion equality below is the hard check.
    let deadline = Instant::now() + DEADLINE;
    let mut saw_mid_campaign_rows = false;
    loop {
        let all_done = ids
            .iter()
            .all(|&id| matches!(client.status(id), Ok(state) if state.is_terminal()));
        if all_done {
            break;
        }
        if !saw_mid_campaign_rows {
            if let Ok(rows) = client.query(QueryKind::TopN, "", Some(ProfilerId::Tip), 3) {
                saw_mid_campaign_rows = !rows.is_empty();
            }
        }
        assert!(Instant::now() < deadline, "campaign never settled");
        thread::sleep(Duration::from_millis(10));
    }
    for &id in &ids {
        assert!(
            matches!(client.status(id), Ok(JobState::Done { ok: true, .. })),
            "job {id} did not finish clean"
        );
    }

    // Every bench streamed at least its final flush, and the stats frame
    // carries the aggregate counters for `tipctl stats`.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.streamed, SUITE_LEN as u32, "every bench streamed");
    assert!(
        stats.deltas >= SUITE_LEN as u64,
        "at least one flush per bench: {stats:?}"
    );

    // The coordinator's aggregate, read purely over the wire, equals the
    // local finished profiles exactly: the integer-unit deltas telescope,
    // so any split across agents and flushes sums to the same vector.
    for c in &reference.completed {
        let name = c.run.bench.name;
        let profile =
            c.run
                .run
                .bank
                .profile_of(&c.run.bench.program, ProfilerId::Tip, Granularity::Function);
        let units = ProfileDelta::quantize(&profile);
        let total: i64 = units.iter().filter(|&&u| u > 0).sum();
        let mut expected: Vec<(u32, i64)> = units
            .iter()
            .enumerate()
            .filter(|(_, &u)| u > 0)
            .map(|(i, &u)| (i as u32, u))
            .collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        expected.truncate(10);

        let rows = client
            .query(QueryKind::TopN, name, Some(ProfilerId::Tip), 0)
            .expect("TopN query");
        assert_eq!(rows.len(), expected.len(), "{name}: row count");
        for (row, &(sym, u)) in rows.iter().zip(&expected) {
            assert_eq!(row.bench, name);
            assert_eq!(row.profiler, Some(ProfilerId::Tip));
            assert_eq!(
                row.label,
                c.run
                    .bench
                    .program
                    .symbol_name(Granularity::Function, SymbolId(sym)),
                "{name}: symbol label"
            );
            assert!(
                (row.value - u as f64).abs() < f64::EPSILON,
                "{name}: units for {sym} — wire {} vs local {u}",
                row.value
            );
            let share = u as f64 / total as f64;
            assert!(
                (row.share - share).abs() < 1e-12,
                "{name}: share for {sym} — wire {} vs local {share}",
                row.share
            );
        }
    }
    if saw_mid_campaign_rows {
        eprintln!("fleet_e2e: live TopN answered mid-campaign");
    }

    client.shutdown(true).expect("wire shutdown");
    assert!(coord.wait().expect("coordinator exit").success());
    assert!(d1.wait().expect("agent d1 exit").success());
    assert!(d2.wait().expect("agent d2 exit").success());

    assert_identical(&dir, &ref_dir);
    let _ = fs::remove_dir_all(&dir);
}
