//! Networked profiling service for the TIP reproduction.
//!
//! TIP's overhead argument (§3.2: ~1% runtime, hundreds of KB/s of
//! samples) is an argument for profiling *as a service* — and related
//! systems like CAPSim frame fast simulation as a shared backend serving
//! many clients. This crate is that layer for the reproduction: a
//! long-lived `tipd` daemon that accepts profiling jobs over TCP, fans
//! them out through `tip-bench`'s executor machinery, and streams results
//! back to the `tipctl` client.
//!
//! Three modules, strictly layered:
//!
//! * [`proto`] — the `TIPW` wire protocol: versioned, length-prefixed,
//!   CRC-32-framed messages sharing `tip-trace`'s framing primitives and
//!   error vocabulary ([`tip_trace::TraceError`] classifies socket damage
//!   exactly like trace-file damage).
//! * [`engine`] — the job queue bridged into
//!   [`tip_bench::run_job`]/[`tip_bench::ledger::Ledger`]: FIFO claiming,
//!   a single ordered committer, graceful drain, journal-driven resume.
//!   Same job sequence ⇒ byte-identical artifacts, local or remote,
//!   including across a daemon kill-and-resume.
//! * [`server`]/[`client`] — `std::net` TCP + `std::thread` only: bounded
//!   acceptor, thread-per-connection, per-connection timeouts, typed
//!   `Busy`/`Overloaded` backpressure; the client retries with capped,
//!   seeded-jitter backoff, resubmits idempotently, and resumes watch
//!   streams across connection drops.
//! * [`chaosnet`] — a seeded fault-injecting TCP proxy speaking
//!   `tip-trace`'s [`tip_trace::fault::FaultPlan`] vocabulary at the wire:
//!   drop/delay/corrupt/split chunks, mid-stream disconnect, half-close.
//!   The harness that proves the other three layers' fault story — on the
//!   client↔daemon hop and the coordinator↔daemon hop alike.
//! * [`fleet`] — the coordinator that shards a campaign across N
//!   registered daemons over TIPW v3 frames (register/beacon/poll/push)
//!   and merges streamed results through one in-order committer, plus the
//!   agent half that `tipd --join` runs. The engine's lease/epoch/resume
//!   semantics, lifted from worker threads to whole daemons.
//!
//! Since TIPW v4 the service also *streams*: engine workers and fleet
//! agents flush quantized [`tip_bench::live`] profile deltas
//! (`PushDelta` frames) into a server-side [`tip_bench::LiveAggregate`],
//! and `Query{TopN, ErrorTrajectory, CycleStack}` frames answer live
//! questions mid-campaign (`tipctl top --live`, `tipctl watch`).
//! Streaming is pure observation — final artifacts stay byte-identical
//! with it on or off, at any worker count or fleet fan-out.
//!
//! The fault-tolerance contract across all of it: any *single* fault —
//! a corrupted frame, a dropped connection, a hung or panicking worker, a
//! SIGKILLed daemon or fleet member, a partitioned coordinator↔daemon
//! link, a shed submit — leaves the campaign artifacts byte-identical to
//! an uninterrupted local run, and never runs a settled job twice
//! (per-worker *and* per-daemon leases with epoch fencing, request-id
//! dedup for resubmission, journal-driven resume across restarts of
//! daemon and coordinator alike).
//!
//! Everything is offline-friendly: no async runtime, no external
//! dependencies, just the standard library over the existing crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaosnet;
pub mod client;
pub mod engine;
pub mod fleet;
pub mod proto;
pub mod server;

pub use chaosnet::{chaos_proxy, ChaosConfig, ChaosHandle, ChaosStats, DirStats};
pub use client::{Client, ClientError};
pub use engine::{Engine, EngineConfig, SubmitError, DEFAULT_LEASE};
pub use fleet::{
    run_agent, AgentConfig, Coordinator, CoordinatorConfig, PollReply, DEFAULT_FLEET_LEASE,
};
pub use proto::{
    DeltaFrame, ErrorCode, JobSpec, JobState, QueryKind, QueryRow, RemoteOutcome, Request,
    Response, ServerStats,
};
pub use server::{serve, serve_with_runner, ServerConfig, ServerHandle};
