//! Networked profiling service for the TIP reproduction.
//!
//! TIP's overhead argument (§3.2: ~1% runtime, hundreds of KB/s of
//! samples) is an argument for profiling *as a service* — and related
//! systems like CAPSim frame fast simulation as a shared backend serving
//! many clients. This crate is that layer for the reproduction: a
//! long-lived `tipd` daemon that accepts profiling jobs over TCP, fans
//! them out through `tip-bench`'s executor machinery, and streams results
//! back to the `tipctl` client.
//!
//! Three modules, strictly layered:
//!
//! * [`proto`] — the `TIPW` wire protocol: versioned, length-prefixed,
//!   CRC-32-framed messages sharing `tip-trace`'s framing primitives and
//!   error vocabulary ([`tip_trace::TraceError`] classifies socket damage
//!   exactly like trace-file damage).
//! * [`engine`] — the job queue bridged into
//!   [`tip_bench::run_job`]/[`tip_bench::ledger::Ledger`]: FIFO claiming,
//!   a single ordered committer, graceful drain, journal-driven resume.
//!   Same job sequence ⇒ byte-identical artifacts, local or remote,
//!   including across a daemon kill-and-resume.
//! * [`server`]/[`client`] — `std::net` TCP + `std::thread` only: bounded
//!   acceptor, thread-per-connection, per-connection timeouts, typed
//!   `Busy` backpressure; the client retries connects with exponential
//!   backoff.
//!
//! Everything is offline-friendly: no async runtime, no external
//! dependencies, just the standard library over the existing crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use engine::{Engine, EngineConfig, SubmitError};
pub use proto::{ErrorCode, JobSpec, JobState, Request, Response, ServerStats};
pub use server::{serve, ServerConfig, ServerHandle};
