//! The `tipctl` client library: one connection per request, bounded
//! capped-backoff dialing with deterministic seeded jitter, idempotent
//! retrying submission, reconnecting watch streams, and typed errors for
//! everything the server can say.
//!
//! The client is deliberately stateless — each call dials, sends one
//! request, reads the reply (or the `Progress` stream for
//! [`Client::watch`]), and closes. That keeps the protocol trivially
//! restartable: a daemon restart between calls is invisible except for job
//! ids, which restart from 1 with the resume journal deciding what
//! actually re-runs.
//!
//! # Fault tolerance
//!
//! Three mechanisms make every call survive transient wire damage:
//!
//! * **Retry with capped backoff and seeded jitter.** Retryable failures —
//!   transport errors, damaged frames, a closed stream, `Busy`,
//!   `Overloaded`, rate limiting — are retried up to a bounded count, with
//!   delays growing exponentially to a cap and jittered by a deterministic
//!   seeded generator (reproducible in tests, desynchronised in fleets).
//! * **Idempotent submission.** [`Client::submit`] stamps each logical
//!   submit with a fresh nonzero request id and reuses it across retries;
//!   the server's dedup table maps a resubmission to the original job id,
//!   so "timed out waiting for `Submitted`" never double-runs a job.
//! * **Resuming watch.** [`Client::watch`] tracks the last `Progress`
//!   sequence number it saw; when the stream dies it reconnects and asks
//!   for `Watch{from_seq: last + 1}`, so the caller observes every
//!   transition exactly once, across any number of connection drops.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, SystemTime};

use crate::fleet::PollReply;
use crate::proto::{
    read_response, write_request, DeltaFrame, ErrorCode, JobSpec, JobState, QueryKind, QueryRow,
    RemoteOutcome, Request, Response, ServerStats,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tip_core::ProfilerId;
use tip_trace::TraceError;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the server (after all connect retries).
    Io(io::Error),
    /// The server's bytes did not decode as TIPW.
    Proto(TraceError),
    /// The server answered with a typed refusal.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// One-line detail.
        message: String,
    },
    /// The server is at its connection limit.
    Busy {
        /// Connections it is serving.
        active: u32,
        /// Its limit.
        limit: u32,
    },
    /// The server is shedding load: the queue is past its watermark.
    Overloaded {
        /// Suggested pause before resubmitting, milliseconds.
        retry_after_ms: u32,
        /// Its queue depth when it refused.
        queued: u32,
    },
    /// The server closed the stream or answered with the wrong frame.
    UnexpectedReply(String),
}

impl ClientError {
    /// Whether retrying the same request can plausibly succeed: transport
    /// failures, damaged or truncated frames, a closed stream, `Busy`,
    /// `Overloaded`, rate limiting — and `BadRequest`, which for this
    /// client (whose encoder always emits well-formed frames) means the
    /// request was damaged *in flight*.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_)
            | ClientError::Proto(_)
            | ClientError::UnexpectedReply(_)
            | ClientError::Busy { .. }
            | ClientError::Overloaded { .. } => true,
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::BadRequest | ErrorCode::RateLimited)
            }
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code:?}): {message}")
            }
            ClientError::Busy { active, limit } => {
                write!(f, "server busy ({active}/{limit} connections)")
            }
            ClientError::Overloaded {
                retry_after_ms,
                queued,
            } => write!(
                f,
                "server overloaded ({queued} queued); retry in {retry_after_ms} ms"
            ),
            ClientError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A TIPW client for one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Connect attempts before giving up.
    connect_attempts: u32,
    /// Delay before the second attempt; doubles each retry up to the cap.
    backoff: Duration,
    /// Ceiling on any single backoff sleep.
    backoff_cap: Duration,
    /// Per-attempt TCP connect deadline.
    connect_timeout: Duration,
    /// Socket read/write timeout. `watch` reads wait up to this long per
    /// frame, so it bounds how stale a silent stream can get.
    io_timeout: Duration,
    /// Request-level retries for retryable failures (≥ 1 tries total).
    request_retries: u32,
    /// Seed for the deterministic backoff jitter.
    seed: u64,
}

impl Client {
    /// A client for `addr` (`host:port`) with default retry policy:
    /// 5 connect attempts with 100 ms initial backoff doubling to a 2 s
    /// cap, a 2 s per-attempt connect deadline, and 3 request-level tries.
    #[must_use]
    pub fn new(addr: &str) -> Self {
        Client {
            addr: addr.to_owned(),
            connect_attempts: 5,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            request_retries: 3,
            seed: 0x7150_c0de,
        }
    }

    /// Overrides the connect retry policy (tests use tiny backoffs).
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Overrides the per-attempt TCP connect deadline.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Overrides the ceiling on any single backoff sleep.
    #[must_use]
    pub fn with_backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap.max(Duration::from_millis(1));
        self
    }

    /// Overrides how many times a retryable request failure is retried
    /// (total tries; clamped to ≥ 1).
    #[must_use]
    pub fn with_request_retries(mut self, tries: u32) -> Self {
        self.request_retries = tries.max(1);
        self
    }

    /// Overrides the jitter seed, making every backoff sleep of this
    /// client reproducible.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `k`-th (1-based) backoff sleep: exponential from `backoff`,
    /// capped, with deterministic full jitter in `[cap/2, cap]` so a fleet
    /// of clients sharing a failure doesn't retry in lockstep.
    fn backoff_delay(&self, k: u32) -> Duration {
        let exp = self
            .backoff
            .saturating_mul(1u32 << k.saturating_sub(1).min(16));
        let capped = exp.min(self.backoff_cap);
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ u64::from(k).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let half_ms = (capped.as_millis() as u64) / 2;
        let jitter = if half_ms > 0 {
            rng.random_range(0..=half_ms)
        } else {
            0
        };
        capped / 2 + Duration::from_millis(jitter)
    }

    /// Connects with bounded capped backoff: attempt `k` (0-based) sleeps
    /// [`Self::backoff_delay`]`(k)` first, and each TCP connect is bounded
    /// by the connect timeout (a black-holed address fails fast instead of
    /// hanging in the kernel's default).
    fn dial(&self) -> Result<TcpStream, ClientError> {
        let mut last = None;
        for attempt in 0..self.connect_attempts {
            if attempt > 0 {
                thread::sleep(self.backoff_delay(attempt));
            }
            match self.connect_once() {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(self.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.io_timeout));
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::other("no connect attempt ran")
        })))
    }

    fn connect_once(&self) -> io::Result<TcpStream> {
        let addrs: Vec<SocketAddr> = self.addr.to_socket_addrs()?.collect();
        let mut last = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("address resolved to nothing")))
    }

    /// One request, one reply, one connection.
    fn call_once(&self, req: &Request) -> Result<Response, ClientError> {
        let mut stream = self.dial()?;
        write_request(&mut stream, req).map_err(ClientError::Io)?;
        self.read_reply(&mut stream)
    }

    /// [`Self::call_once`] with bounded retries for retryable failures.
    /// Only safe for idempotent requests — which every TIPW request is,
    /// given `Submit` carries a request id (status/result/stats/cancel are
    /// naturally idempotent; a repeated `Shutdown` is a no-op).
    fn call(&self, req: &Request) -> Result<Response, ClientError> {
        let mut last = None;
        for attempt in 0..self.request_retries {
            if attempt > 0 {
                thread::sleep(self.retry_delay(attempt, last.as_ref()));
            }
            match self.call_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && attempt + 1 < self.request_retries => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::UnexpectedReply("no attempt ran".to_owned())))
    }

    /// The sleep before retry `attempt`, honouring the server's
    /// `Overloaded` pause hint but never exceeding the backoff cap — a
    /// hostile or confused `retry_after_ms` must not stall the client past
    /// its own configured ceiling.
    fn retry_delay(&self, attempt: u32, last: Option<&ClientError>) -> Duration {
        let mut delay = self.backoff_delay(attempt);
        if let Some(ClientError::Overloaded { retry_after_ms, .. }) = last {
            delay = delay.max(Duration::from_millis(u64::from(*retry_after_ms)));
        }
        delay.min(self.backoff_cap)
    }

    fn read_reply(&self, stream: &mut TcpStream) -> Result<Response, ClientError> {
        match read_response(stream) {
            Ok(Some(Response::Busy { active, limit })) => Err(ClientError::Busy { active, limit }),
            Ok(Some(Response::Overloaded {
                retry_after_ms,
                queued,
            })) => Err(ClientError::Overloaded {
                retry_after_ms,
                queued,
            }),
            Ok(Some(Response::Error { code, message })) => {
                Err(ClientError::Server { code, message })
            }
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::UnexpectedReply(
                "server closed the stream".to_owned(),
            )),
            Err(e) => Err(ClientError::Proto(e)),
        }
    }

    /// Submits a job; returns its server-assigned id. Each call stamps a
    /// fresh request id and reuses it across retries, so a reply lost to
    /// the wire resubmits *idempotently* — the server returns the original
    /// job id instead of enqueueing twice.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.submit_with_id(spec, fresh_req_id(self.seed))
    }

    /// [`Self::submit`] with a caller-chosen idempotency key (`0` disables
    /// dedup). Callers that persist the key can resubmit safely across
    /// their own restarts, not just across this call's retries.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn submit_with_id(&self, spec: &JobSpec, req_id: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Submit {
            spec: spec.clone(),
            req_id,
        })? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot job state query.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn status(&self, job: u64) -> Result<JobState, ClientError> {
        match self.call(&Request::Status { job })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams the job's progress, invoking `on_progress` per state
    /// transition, until a terminal state (returned). The stream resumes
    /// transparently: a dropped connection reconnects (bounded retries)
    /// and asks for `Watch{from_seq: last_seen + 1}`, so every transition
    /// is observed exactly once across any number of drops. A server that
    /// stays down past the retry budget surfaces the underlying error.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn watch(
        &self,
        job: u64,
        mut on_progress: impl FnMut(JobState),
    ) -> Result<JobState, ClientError> {
        self.watch_live(job, |state, _cycles| on_progress(state))
    }

    /// [`Client::watch`] with the v4 live cycle count: `on_progress` also
    /// receives the simulated cycles the job's benchmark had streamed when
    /// the frame was sent (0 from pre-v4 servers, or before the first
    /// delta flush lands).
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn watch_live(
        &self,
        job: u64,
        mut on_progress: impl FnMut(JobState, u64),
    ) -> Result<JobState, ClientError> {
        let mut from_seq = 0u64;
        let mut reconnects = 0u32;
        'redial: loop {
            let mut stream = self.dial()?;
            if let Err(e) = write_request(&mut stream, &Request::Watch { job, from_seq }) {
                if reconnects + 1 < self.request_retries {
                    reconnects += 1;
                    thread::sleep(self.backoff_delay(reconnects));
                    continue 'redial;
                }
                return Err(ClientError::Io(e));
            }
            loop {
                match self.read_reply(&mut stream) {
                    Ok(Response::Progress {
                        state, seq, cycles, ..
                    }) => {
                        from_seq = seq + 1;
                        on_progress(state, cycles);
                        if state.is_terminal() {
                            return Ok(state);
                        }
                    }
                    Ok(other) => return Err(unexpected(&other)),
                    Err(e) if e.is_retryable() && reconnects + 1 < self.request_retries => {
                        // The stream died mid-watch (drop, corruption,
                        // server restart): reconnect and resume from the
                        // next unseen sequence number.
                        reconnects += 1;
                        thread::sleep(self.backoff_delay(reconnects));
                        continue 'redial;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// Fetches a finished job's result-file bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably [`ErrorCode::NotReady`] while the job is
    /// still queued or running.
    pub fn result(&self, job: u64) -> Result<String, ClientError> {
        match self.call(&Request::Result { job })? {
            Response::ResultBody { body, .. } => Ok(body),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a still-queued job; `Ok(false)` means it was too late.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn cancel(&self, job: u64) -> Result<bool, ClientError> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { ok, .. } => Ok(ok),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn stats(&self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down (draining in-flight jobs when `drain`).
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn shutdown(&self, drain: bool) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown { drain })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Registers a fleet daemon with a coordinator; returns
    /// `(daemon_id, lease_ms)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably `BadRequest` from a server that is not a
    /// coordinator.
    pub fn register(&self, name: &str, workers: u32) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::Register {
            name: name.to_owned(),
            workers,
        })? {
            Response::Registered { daemon, lease_ms } => Ok((daemon, lease_ms)),
            other => Err(unexpected(&other)),
        }
    }

    /// Heartbeats a registered fleet daemon; returns how many assignments
    /// the coordinator has leased to it.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably [`ErrorCode::UnknownDaemon`] after a
    /// coordinator restart, which means "re-register".
    pub fn beacon(&self, daemon: u64) -> Result<u32, ClientError> {
        match self.call(&Request::Beacon { daemon })? {
            Response::BeaconAck { tasks } => Ok(tasks),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the coordinator for one assignment.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably [`ErrorCode::UnknownDaemon`] after a
    /// coordinator restart.
    pub fn poll_job(&self, daemon: u64) -> Result<PollReply, ClientError> {
        match self.call(&Request::PollJob { daemon })? {
            Response::Assignment { task, epoch, spec } => {
                Ok(PollReply::Assignment { task, epoch, spec })
            }
            Response::NoWork { draining } => Ok(PollReply::NoWork { draining }),
            other => Err(unexpected(&other)),
        }
    }

    /// Pushes one finished assignment back to the coordinator; `Ok(false)`
    /// means the epoch was stale and the result was discarded. Safe to
    /// retry: a duplicate push for an already-committed task is acked
    /// without committing twice.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably [`ErrorCode::UnknownDaemon`] after a
    /// coordinator restart.
    pub fn push_result(
        &self,
        daemon: u64,
        task: u64,
        epoch: u64,
        outcome: &RemoteOutcome,
    ) -> Result<bool, ClientError> {
        match self.call(&Request::PushResult {
            daemon,
            task,
            epoch,
            outcome: outcome.clone(),
        })? {
            Response::ResultAck { accepted } => Ok(accepted),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams one profile-delta flush into the server's live aggregate;
    /// `Ok(false)` means the server discarded it (e.g. the pushing daemon
    /// no longer holds the benchmark's assignment). Best-effort by
    /// contract: callers may drop errors — deltas carry live visibility,
    /// never correctness.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn push_delta(&self, daemon: u64, frame: &DeltaFrame) -> Result<bool, ClientError> {
        match self.call(&Request::PushDelta {
            daemon,
            frame: frame.clone(),
        })? {
            Response::DeltaAck { accepted } => Ok(accepted),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server's live aggregate a question; rows come back in the
    /// server's deterministic order. An empty `bench` means "all streamed
    /// benchmarks"; `n` caps `TopN` rows per benchmark (0 = server
    /// default).
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn query(
        &self,
        kind: QueryKind,
        bench: &str,
        profiler: Option<ProfilerId>,
        n: u32,
    ) -> Result<Vec<QueryRow>, ClientError> {
        match self.call(&Request::Query {
            kind,
            bench: bench.to_owned(),
            profiler,
            n,
        })? {
            Response::QueryReply { rows } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }
}

/// A process-unique nonzero request id: wall-clock nanos mixed with a
/// process-wide counter and the client seed through a splitmix64 round.
/// Uniqueness needs only "never repeats for distinct logical submits",
/// which the counter guarantees within a process and the clock makes
/// overwhelmingly likely across processes.
fn fresh_req_id(seed: u64) -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let mut x = t ^ n.rotate_left(32) ^ seed;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x.max(1)
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::UnexpectedReply(format!("{resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let c = Client::new("127.0.0.1:1")
            .with_retry(8, Duration::from_millis(100))
            .with_backoff_cap(Duration::from_millis(400))
            .with_seed(7);
        for k in 1..8 {
            let d = c.backoff_delay(k);
            assert!(d <= Duration::from_millis(400), "k={k} d={d:?}");
            assert!(d >= Duration::from_millis(25), "k={k} d={d:?}");
            // Deterministic: the same client computes the same delay.
            assert_eq!(d, c.backoff_delay(k));
        }
        // A different seed jitters differently somewhere in the ladder.
        let other = c.clone().with_seed(8);
        assert!(
            (1..8).any(|k| other.backoff_delay(k) != c.backoff_delay(k)),
            "seed must move the jitter"
        );
    }

    #[test]
    fn overloaded_pause_hint_cannot_exceed_the_backoff_cap() {
        let c = Client::new("127.0.0.1:1")
            .with_retry(4, Duration::from_millis(10))
            .with_backoff_cap(Duration::from_millis(200));
        // A server (or a corrupted frame) claiming an hour-long pause is
        // clamped to the client's own ceiling.
        let overloaded = ClientError::Overloaded {
            retry_after_ms: 3_600_000,
            queued: 10,
        };
        for attempt in 1..4 {
            let d = c.retry_delay(attempt, Some(&overloaded));
            assert!(d <= Duration::from_millis(200), "attempt={attempt} d={d:?}");
        }
        // A modest hint below the cap is honoured as a floor.
        let modest = ClientError::Overloaded {
            retry_after_ms: 150,
            queued: 1,
        };
        let d = c.retry_delay(1, Some(&modest));
        assert!(d >= Duration::from_millis(150), "hint is a floor: {d:?}");
        assert!(d <= Duration::from_millis(200), "cap still binds: {d:?}");
    }

    #[test]
    fn retryability_matches_the_failure_taxonomy() {
        assert!(ClientError::Io(io::Error::other("x")).is_retryable());
        assert!(ClientError::Busy {
            active: 1,
            limit: 1
        }
        .is_retryable());
        assert!(ClientError::Overloaded {
            retry_after_ms: 1,
            queued: 9
        }
        .is_retryable());
        assert!(ClientError::Server {
            code: ErrorCode::BadRequest,
            message: String::new()
        }
        .is_retryable());
        assert!(ClientError::Server {
            code: ErrorCode::RateLimited,
            message: String::new()
        }
        .is_retryable());
        for code in [
            ErrorCode::UnknownBench,
            ErrorCode::UnknownCore,
            ErrorCode::UnknownJob,
            ErrorCode::NotReady,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert!(
                !ClientError::Server {
                    code,
                    message: String::new()
                }
                .is_retryable(),
                "{code:?} must not retry"
            );
        }
    }

    #[test]
    fn fresh_req_ids_are_nonzero_and_distinct() {
        let a = fresh_req_id(1);
        let b = fresh_req_id(1);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "the counter must separate same-instant ids");
    }
}
