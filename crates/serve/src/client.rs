//! The `tipctl` client library: one connection per request, retry with
//! exponential backoff on connect, typed errors for everything the server
//! can say.
//!
//! The client is deliberately stateless — each call dials, sends one
//! request, reads the reply (or the `Progress` stream for
//! [`Client::watch`]), and closes. That keeps the protocol trivially
//! restartable: a daemon restart between calls is invisible except for job
//! ids, which restart from 1 with the resume journal deciding what
//! actually re-runs.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use crate::proto::{
    read_response, write_request, ErrorCode, JobSpec, JobState, Request, Response, ServerStats,
};
use tip_trace::TraceError;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the server (after all connect retries).
    Io(io::Error),
    /// The server's bytes did not decode as TIPW.
    Proto(TraceError),
    /// The server answered with a typed refusal.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// One-line detail.
        message: String,
    },
    /// The server is at its connection limit.
    Busy {
        /// Connections it is serving.
        active: u32,
        /// Its limit.
        limit: u32,
    },
    /// The server closed the stream or answered with the wrong frame.
    UnexpectedReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code:?}): {message}")
            }
            ClientError::Busy { active, limit } => {
                write!(f, "server busy ({active}/{limit} connections)")
            }
            ClientError::UnexpectedReply(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A TIPW client for one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    /// Connect attempts before giving up.
    connect_attempts: u32,
    /// Delay before the second connect attempt; doubles each retry.
    backoff: Duration,
    /// Socket read/write timeout. `watch` reads wait up to this long per
    /// frame, so it bounds how stale a silent stream can get.
    io_timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with default retry policy:
    /// 5 connect attempts, 100 ms initial backoff doubling per retry.
    #[must_use]
    pub fn new(addr: &str) -> Self {
        Client {
            addr: addr.to_owned(),
            connect_attempts: 5,
            backoff: Duration::from_millis(100),
            io_timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the retry policy (tests use tiny backoffs).
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Connects with exponential backoff: attempt `k` (0-based) sleeps
    /// `backoff * 2^(k-1)` first.
    fn dial(&self) -> Result<TcpStream, ClientError> {
        let mut delay = self.backoff;
        let mut last = None;
        for attempt in 0..self.connect_attempts {
            if attempt > 0 {
                thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(self.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.io_timeout));
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::other("no connect attempt ran")
        })))
    }

    /// One request, one reply.
    fn call(&self, req: &Request) -> Result<Response, ClientError> {
        let mut stream = self.dial()?;
        write_request(&mut stream, req).map_err(ClientError::Io)?;
        self.read_reply(&mut stream)
    }

    fn read_reply(&self, stream: &mut TcpStream) -> Result<Response, ClientError> {
        match read_response(stream) {
            Ok(Some(Response::Busy { active, limit })) => Err(ClientError::Busy { active, limit }),
            Ok(Some(Response::Error { code, message })) => {
                Err(ClientError::Server { code, message })
            }
            Ok(Some(resp)) => Ok(resp),
            Ok(None) => Err(ClientError::UnexpectedReply(
                "server closed the stream".to_owned(),
            )),
            Err(e) => Err(ClientError::Proto(e)),
        }
    }

    /// Submits a job; returns its server-assigned id.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, ClientError> {
        match self.call(&Request::Submit(spec.clone()))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected(&other)),
        }
    }

    /// One-shot job state query.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn status(&self, job: u64) -> Result<JobState, ClientError> {
        match self.call(&Request::Status { job })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams the job's progress, invoking `on_progress` per state change,
    /// until a terminal state (returned). A server shutdown mid-stream
    /// surfaces as [`ClientError::UnexpectedReply`] — retry after the
    /// daemon restarts.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn watch(
        &self,
        job: u64,
        mut on_progress: impl FnMut(JobState),
    ) -> Result<JobState, ClientError> {
        let mut stream = self.dial()?;
        write_request(&mut stream, &Request::Watch { job }).map_err(ClientError::Io)?;
        loop {
            match self.read_reply(&mut stream)? {
                Response::Progress { state, .. } => {
                    on_progress(state);
                    if state.is_terminal() {
                        return Ok(state);
                    }
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Fetches a finished job's result-file bytes.
    ///
    /// # Errors
    ///
    /// [`ClientError`]; notably [`ErrorCode::NotReady`] while the job is
    /// still queued or running.
    pub fn result(&self, job: u64) -> Result<String, ClientError> {
        match self.call(&Request::Result { job })? {
            Response::ResultBody { body, .. } => Ok(body),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a still-queued job; `Ok(false)` means it was too late.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn cancel(&self, job: u64) -> Result<bool, ClientError> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { ok, .. } => Ok(ok),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn stats(&self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down (draining in-flight jobs when `drain`).
    ///
    /// # Errors
    ///
    /// [`ClientError`] for connect, protocol, or server refusals.
    pub fn shutdown(&self, drain: bool) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown { drain })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::UnexpectedReply(format!("{resp:?}"))
}
