//! `chaosnet` — a seeded fault-injecting TCP proxy for wire-level chaos
//! testing.
//!
//! The proxy sits between `tipctl` and `tipd`, forwarding bytes in both
//! directions while injecting the wire-level faults of a
//! [`FaultPlan`] — the same fault vocabulary `tip-trace` uses for damaged
//! trace files and `tip-bench` uses for campaign chaos, extended to the
//! live socket:
//!
//! * [`Fault::DropChunks`] — silently swallow forwarded chunks,
//! * [`Fault::DelayChunks`] — stall chunks (latency spikes, reordering
//!   pressure against timeouts),
//! * [`Fault::CorruptChunks`] — flip a byte mid-frame (the CRC framing
//!   must catch it),
//! * [`Fault::SplitChunks`] — forward in tiny pieces (slow-loris partial
//!   reads splitting frames across `read` calls),
//! * [`Fault::Disconnect`] — hard-cut the connection after a byte budget
//!   (mid-stream truncation),
//! * [`Fault::HalfClose`] — close one direction only, leaving the other
//!   flowing.
//!
//! Faults are drawn from a [`SmallRng`] seeded per connection and
//! direction from the plan's seed, so a given proxy configuration injects
//! a reproducible fault *pattern* (chunk boundaries still depend on host
//! timing — the proxy makes fault decisions reproducible, not TCP
//! segmentation). Non-wire faults in the plan are ignored, mirroring how
//! the byte/record layers ignore wire faults.
//!
//! The robustness claim this module exists to check: any single fault the
//! proxy can inject, the client/server pair must survive with artifacts
//! byte-identical to a fault-free run — retries and idempotent
//! resubmission on the client, leases and dedup on the server.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tip_trace::fault::{Fault, FaultPlan};

/// How the proxy listens, connects, and misbehaves.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// The real server to forward to.
    pub upstream: String,
    /// The faults to inject (only wire-level faults act here).
    pub plan: FaultPlan,
    /// Inject into the client→server direction.
    pub fault_upstream: bool,
    /// Inject into the server→client direction.
    pub fault_downstream: bool,
}

impl ChaosConfig {
    /// A proxy on an ephemeral localhost port forwarding to `upstream`,
    /// faulting both directions.
    #[must_use]
    pub fn new(upstream: &str, plan: FaultPlan) -> Self {
        ChaosConfig {
            listen: "127.0.0.1:0".to_owned(),
            upstream: upstream.to_owned(),
            plan,
            fault_upstream: true,
            fault_downstream: true,
        }
    }
}

/// One direction's fault counters — what the proxy did to the bytes
/// flowing client→server (`upstream`) or server→client (`downstream`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Bytes forwarded (after faults).
    pub forwarded_bytes: u64,
    /// Chunks silently dropped.
    pub dropped_chunks: u64,
    /// Chunks delayed.
    pub delayed_chunks: u64,
    /// Chunks with a corrupted byte.
    pub corrupted_chunks: u64,
    /// Connections hard-cut mid-stream.
    pub disconnects: u64,
    /// Directions half-closed.
    pub half_closes: u64,
}

impl DirStats {
    fn add(self, other: DirStats) -> DirStats {
        DirStats {
            forwarded_bytes: self.forwarded_bytes + other.forwarded_bytes,
            dropped_chunks: self.dropped_chunks + other.dropped_chunks,
            delayed_chunks: self.delayed_chunks + other.delayed_chunks,
            corrupted_chunks: self.corrupted_chunks + other.corrupted_chunks,
            disconnects: self.disconnects + other.disconnects,
            half_closes: self.half_closes + other.half_closes,
        }
    }

    fn render(&self, label: &str) -> String {
        format!(
            "{label}: forwarded={}B dropped={} delayed={} corrupted={} \
             disconnects={} half_closes={}",
            self.forwarded_bytes,
            self.dropped_chunks,
            self.delayed_chunks,
            self.corrupted_chunks,
            self.disconnects,
            self.half_closes
        )
    }
}

/// Counters of everything the proxy did to the traffic, split by
/// direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// The client→server direction.
    pub upstream: DirStats,
    /// The server→client direction.
    pub downstream: DirStats,
}

impl ChaosStats {
    /// Both directions summed — for "did any fault fire" checks.
    #[must_use]
    pub fn total(&self) -> DirStats {
        self.upstream.add(self.downstream)
    }

    /// A multi-line end-of-run summary: connection count, then one line
    /// of fault counters per direction.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "connections={}\n{}\n{}",
            self.connections,
            self.upstream.render("client->server"),
            self.downstream.render("server->client"),
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    forwarded_bytes: AtomicU64,
    dropped_chunks: AtomicU64,
    delayed_chunks: AtomicU64,
    corrupted_chunks: AtomicU64,
    disconnects: AtomicU64,
    half_closes: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> DirStats {
        DirStats {
            forwarded_bytes: self.forwarded_bytes.load(Ordering::Relaxed),
            dropped_chunks: self.dropped_chunks.load(Ordering::Relaxed),
            delayed_chunks: self.delayed_chunks.load(Ordering::Relaxed),
            corrupted_chunks: self.corrupted_chunks.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            half_closes: self.half_closes.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    /// Behind a mutex so a restarted upstream (a coordinator coming back
    /// on a fresh port after `kill -9`) can be retargeted without
    /// restarting the proxy — live connections keep their old pipes, new
    /// connections dial the new address.
    upstream: Mutex<String>,
    plan: FaultPlan,
    fault_upstream: bool,
    fault_downstream: bool,
    stop: AtomicBool,
    connections: AtomicU64,
    /// Indexed by direction: `[client→server, server→client]`.
    counters: [Counters; 2],
}

/// A running chaos proxy; stop it with [`ChaosHandle::shutdown`].
pub struct ChaosHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

/// Binds the proxy and starts accepting.
///
/// # Errors
///
/// Propagates bind failures.
pub fn chaos_proxy(config: &ChaosConfig) -> io::Result<ChaosHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        upstream: Mutex::new(config.upstream.clone()),
        plan: config.plan.clone(),
        fault_upstream: config.fault_upstream,
        fault_downstream: config.fault_downstream,
        stop: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        counters: [Counters::default(), Counters::default()],
    });
    let pumps = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let pumps = Arc::clone(&pumps);
        thread::spawn(move || acceptor_loop(&listener, &shared, &pumps))
    };
    Ok(ChaosHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        pumps,
    })
}

impl ChaosHandle {
    /// The bound address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of what the proxy has done so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            upstream: self.shared.counters[0].snapshot(),
            downstream: self.shared.counters[1].snapshot(),
        }
    }

    /// Retargets the proxy at a new upstream address. Existing pumped
    /// connections keep flowing to the old upstream (or die with it); new
    /// connections dial `addr`. This is how a fleet test survives a
    /// coordinator restarting on a fresh port.
    pub fn set_upstream(&self, addr: &str) {
        *self.shared.upstream.lock().expect("upstream addr") = addr.to_owned();
    }

    /// Stops accepting, cuts every live pump, and joins all threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().expect("pump registry"));
        for p in pumps {
            let _ = p.join();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    pumps: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for (conn_index, stream) in listener.incoming().enumerate() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else { continue };
        let upstream = shared.upstream.lock().expect("upstream addr").clone();
        let Ok(server) = TcpStream::connect(&upstream) else {
            // Upstream down: drop the client, which sees a clean close and
            // retries — exactly the behaviour a dead daemon produces.
            continue;
        };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let conn = conn_index as u64;
        let up = spawn_pump(shared, &client, &server, conn, 0, shared.fault_upstream);
        let down = spawn_pump(shared, &server, &client, conn, 1, shared.fault_downstream);
        let mut registry = pumps.lock().expect("pump registry");
        registry.extend([up, down].into_iter().flatten());
    }
}

fn spawn_pump(
    shared: &Arc<Shared>,
    src: &TcpStream,
    dst: &TcpStream,
    conn: u64,
    direction: u64,
    faulted: bool,
) -> Option<thread::JoinHandle<()>> {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
        return None;
    };
    let shared = Arc::clone(shared);
    Some(thread::spawn(move || {
        pump(&shared, src, dst, conn, direction, faulted);
    }))
}

/// What the injector decided to do with one forwarded chunk.
enum Verdict {
    Forward,
    Drop,
    /// Forward only the first `n` bytes, then hard-cut both directions.
    CutAfter(usize),
    /// Forward only the first `n` bytes, then close this direction only.
    HalfCloseAfter(usize),
}

/// Per-direction fault state, seeded from the plan so the decision
/// sequence is reproducible for a given (connection, direction).
struct Injector {
    rng: SmallRng,
    drop_one_in: Option<u32>,
    delay: Option<(u32, u32)>,
    corrupt_one_in: Option<u32>,
    split_max: Option<usize>,
    disconnect_after: Option<u64>,
    half_close_after: Option<u64>,
    forwarded: u64,
}

impl Injector {
    fn new(plan: &FaultPlan, conn: u64, direction: u64) -> Self {
        let mut inj = Injector {
            rng: SmallRng::seed_from_u64(
                plan.seed ^ 0xc4a0_5000 ^ conn.wrapping_mul(0x9E37_79B9) ^ (direction << 63),
            ),
            drop_one_in: None,
            delay: None,
            corrupt_one_in: None,
            split_max: None,
            disconnect_after: None,
            half_close_after: None,
            forwarded: 0,
        };
        for fault in &plan.faults {
            match *fault {
                Fault::DropChunks { one_in } => inj.drop_one_in = Some(one_in.max(1)),
                Fault::DelayChunks { one_in, ms } => inj.delay = Some((one_in.max(1), ms)),
                Fault::CorruptChunks { one_in } => inj.corrupt_one_in = Some(one_in.max(1)),
                Fault::SplitChunks { max } => inj.split_max = Some(max.max(1) as usize),
                Fault::Disconnect { after_bytes } => inj.disconnect_after = Some(after_bytes),
                Fault::HalfClose { after_bytes } => inj.half_close_after = Some(after_bytes),
                _ => {}
            }
        }
        inj
    }

    /// Decides the chunk's fate and applies in-place damage (corruption).
    fn judge(&mut self, chunk: &mut [u8], counters: &Counters) -> Verdict {
        if let Some(after) = self.disconnect_after {
            if self.forwarded + chunk.len() as u64 > after {
                counters.disconnects.fetch_add(1, Ordering::Relaxed);
                return Verdict::CutAfter(after.saturating_sub(self.forwarded) as usize);
            }
        }
        if let Some(after) = self.half_close_after {
            if self.forwarded + chunk.len() as u64 > after {
                counters.half_closes.fetch_add(1, Ordering::Relaxed);
                return Verdict::HalfCloseAfter(after.saturating_sub(self.forwarded) as usize);
            }
        }
        if let Some(n) = self.drop_one_in {
            if self.rng.random_range(0..n) == 0 {
                counters.dropped_chunks.fetch_add(1, Ordering::Relaxed);
                return Verdict::Drop;
            }
        }
        if let Some((n, ms)) = self.delay {
            if self.rng.random_range(0..n) == 0 {
                counters.delayed_chunks.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(u64::from(ms)));
            }
        }
        if let Some(n) = self.corrupt_one_in {
            if !chunk.is_empty() && self.rng.random_range(0..n) == 0 {
                let at = self.rng.random_range(0..chunk.len());
                chunk[at] ^= 1 << self.rng.random_range(0u32..8);
                counters.corrupted_chunks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Verdict::Forward
    }
}

/// Writes `bytes` to `dst` in pieces of at most `split_max` (or whole).
fn write_split(dst: &mut TcpStream, bytes: &[u8], split_max: Option<usize>) -> io::Result<()> {
    match split_max {
        None => dst.write_all(bytes),
        Some(max) => {
            for piece in bytes.chunks(max.max(1)) {
                dst.write_all(piece)?;
                dst.flush()?;
            }
            Ok(())
        }
    }
}

fn pump(
    shared: &Shared,
    mut src: TcpStream,
    mut dst: TcpStream,
    conn: u64,
    direction: u64,
    faulted: bool,
) {
    // Short read timeout so the pump notices the stop flag promptly.
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = dst.set_nodelay(true);
    let mut injector = faulted.then(|| Injector::new(&shared.plan, conn, direction));
    let counters = &shared.counters[(direction & 1) as usize];
    let mut buf = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match src.read(&mut buf) {
            // Clean EOF on this side: propagate it as a half-close so the
            // opposite direction keeps flowing, like a real TCP FIN.
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
        };
        let chunk = &mut buf[..n];
        let verdict = match injector.as_mut() {
            Some(inj) => inj.judge(chunk, counters),
            None => Verdict::Forward,
        };
        let split_max = injector.as_ref().and_then(|i| i.split_max);
        match verdict {
            Verdict::Drop => {}
            Verdict::Forward => {
                // Count before the write: once the kernel has the bytes
                // the peer may observe them (and a stats reader may look)
                // before this thread runs again.
                counters
                    .forwarded_bytes
                    .fetch_add(n as u64, Ordering::Relaxed);
                if let Some(inj) = injector.as_mut() {
                    inj.forwarded += n as u64;
                }
                if write_split(&mut dst, chunk, split_max).is_err() {
                    let _ = src.shutdown(Shutdown::Read);
                    return;
                }
            }
            Verdict::CutAfter(keep) => {
                counters
                    .forwarded_bytes
                    .fetch_add(keep.min(n) as u64, Ordering::Relaxed);
                let _ = write_split(&mut dst, &chunk[..keep.min(n)], split_max);
                // Mid-stream truncation: both directions die at once, like
                // a yanked cable — whatever frame was in flight is cut.
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            Verdict::HalfCloseAfter(keep) => {
                counters
                    .forwarded_bytes
                    .fetch_add(keep.min(n) as u64, Ordering::Relaxed);
                let _ = write_split(&mut dst, &chunk[..keep.min(n)], split_max);
                // One direction dies; the opposite pump keeps running.
                let _ = dst.shutdown(Shutdown::Write);
                let _ = src.shutdown(Shutdown::Read);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An echo server for proxy tests: reads chunks, writes them back.
    fn echo_server() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let handle = thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for stream in listener.incoming().take(4) {
                let Ok(mut stream) = stream else { continue };
                let mut buf = [0u8; 1024];
                while let Ok(n) = stream.read(&mut buf) {
                    if n == 0 || stream.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_proxy_forwards_bytes_intact() {
        let (upstream, _echo) = echo_server();
        let proxy = chaos_proxy(&ChaosConfig::new(&upstream.to_string(), FaultPlan::none()))
            .expect("proxy up");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.write_all(b"hello through the proxy").expect("write");
        let mut back = [0u8; 23];
        conn.read_exact(&mut back).expect("read");
        assert_eq!(&back, b"hello through the proxy");
        drop(conn);
        let stats = proxy.stats();
        proxy.shutdown();
        assert!(stats.total().forwarded_bytes >= 46, "{stats:?}");
        assert_eq!(stats.total().corrupted_chunks, 0);
        assert_eq!(stats.connections, 1);
        // Both directions carried the echo round-trip.
        assert!(stats.upstream.forwarded_bytes >= 23, "{stats:?}");
        assert!(stats.downstream.forwarded_bytes >= 23, "{stats:?}");
    }

    #[test]
    fn corrupting_proxy_damages_the_stream() {
        let (upstream, _echo) = echo_server();
        let plan = FaultPlan::new(7, vec![Fault::CorruptChunks { one_in: 1 }]);
        let config = ChaosConfig {
            fault_downstream: false,
            ..ChaosConfig::new(&upstream.to_string(), plan)
        };
        let proxy = chaos_proxy(&config).expect("proxy up");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        let sent = [0u8; 64];
        conn.write_all(&sent).expect("write");
        let mut back = [0u8; 64];
        conn.read_exact(&mut back).expect("read");
        assert_ne!(back, sent, "one byte must differ");
        drop(conn);
        let stats = proxy.stats();
        proxy.shutdown();
        // Only the faulted (client→server) direction corrupted anything.
        assert!(stats.upstream.corrupted_chunks >= 1, "{stats:?}");
        assert_eq!(stats.downstream.corrupted_chunks, 0, "{stats:?}");
    }

    #[test]
    fn disconnect_cuts_the_connection_after_the_byte_budget() {
        let (upstream, _echo) = echo_server();
        let plan = FaultPlan::new(3, vec![Fault::Disconnect { after_bytes: 8 }]);
        let config = ChaosConfig {
            fault_downstream: false,
            ..ChaosConfig::new(&upstream.to_string(), plan)
        };
        let proxy = chaos_proxy(&config).expect("proxy up");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
        // Push enough to blow the budget; the proxy cuts mid-stream.
        let _ = conn.write_all(&[7u8; 64]);
        let mut back = Vec::new();
        let _ = conn.read_to_end(&mut back);
        assert!(back.len() <= 8, "only the pre-cut prefix arrives: {back:?}");
        let stats = proxy.stats();
        proxy.shutdown();
        assert_eq!(stats.upstream.disconnects, 1, "{stats:?}");
        assert_eq!(stats.total().disconnects, 1, "{stats:?}");
    }

    #[test]
    fn summary_renders_both_directions() {
        let stats = ChaosStats {
            connections: 3,
            upstream: DirStats {
                forwarded_bytes: 100,
                dropped_chunks: 1,
                delayed_chunks: 2,
                corrupted_chunks: 3,
                disconnects: 4,
                half_closes: 5,
            },
            downstream: DirStats {
                forwarded_bytes: 200,
                ..DirStats::default()
            },
        };
        let summary = stats.summary();
        assert_eq!(summary.lines().count(), 3, "{summary}");
        assert!(summary.starts_with("connections=3\n"), "{summary}");
        assert!(
            summary.contains("client->server: forwarded=100B dropped=1 delayed=2 corrupted=3"),
            "{summary}"
        );
        assert!(
            summary.contains("server->client: forwarded=200B dropped=0"),
            "{summary}"
        );
        assert_eq!(stats.total().forwarded_bytes, 300);
    }

    #[test]
    fn split_proxy_delivers_everything_in_pieces() {
        let (upstream, _echo) = echo_server();
        let plan = FaultPlan::new(5, vec![Fault::SplitChunks { max: 3 }]);
        let proxy = chaos_proxy(&ChaosConfig::new(&upstream.to_string(), plan)).expect("proxy up");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        let sent: Vec<u8> = (0..=255).collect();
        conn.write_all(&sent).expect("write");
        let mut back = vec![0u8; sent.len()];
        conn.read_exact(&mut back).expect("read");
        assert_eq!(back, sent, "splitting must not lose or reorder bytes");
        proxy.shutdown();
    }
}
