//! The `tipd` TCP server: bounded acceptor, thread-per-connection pool,
//! per-connection I/O timeouts, request-size caps, typed backpressure, and
//! graceful drain.
//!
//! Layering: this module owns sockets and nothing else. Every decision
//! about jobs — queueing, claiming, committing, resume — lives in
//! [`crate::engine`]; every byte on the wire is framed by
//! [`crate::proto`]. A connection handler is a loop of
//! `read_request → dispatch → write_response`, where `Watch` is the one
//! request that streams multiple frames back.
//!
//! Shutdown is wire-driven (a [`Request::Shutdown`] frame) or in-process
//! ([`ServerHandle::shutdown`]): the acceptor stops, handlers finish their
//! in-flight request within one I/O timeout, and the engine drains —
//! in-flight jobs settle and commit, queued jobs stay unjournaled for a
//! restarted daemon to resume.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::engine::{Engine, EngineConfig, SubmitError, DEFAULT_LEASE};
use crate::fleet::{Coordinator, CoordinatorConfig, PollReply};
use crate::proto::{
    read_request, write_response, ErrorCode, JobSpec, JobState, QueryKind, QueryRow, Request,
    Response, ServerStats,
};
use tip_bench::live::LiveAggregate;
use tip_core::{CycleCategory, ProfilerId};
use tip_isa::Granularity;
use tip_trace::TraceError;

/// Rows per benchmark a `Query{TopN, n: 0}` answers with.
const DEFAULT_TOP_N: usize = 10;

/// How the server listens and bounds its resources.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Worker threads for the job engine.
    pub workers: usize,
    /// Campaign directory for the engine's ledger.
    pub out_dir: PathBuf,
    /// Resume the directory's journal instead of starting fresh.
    pub resume: bool,
    /// Maximum concurrently served connections; excess connections get a
    /// typed [`Response::Busy`] and are closed.
    pub max_conns: usize,
    /// Per-connection read timeout. Idle connections survive (the
    /// handler re-arms after a timeout); a wedged peer cannot hold a
    /// handler thread hostage past this, and shutdown latency is bounded
    /// by it.
    pub io_timeout: Duration,
    /// Per-connection write deadline: a client that stops reading (a
    /// slow-loris consumer of a `Watch` stream) is disconnected once a
    /// single frame write blocks this long, freeing the handler thread.
    pub write_timeout: Duration,
    /// Job lease for the engine's reaper (see [`EngineConfig::lease`]).
    pub lease: Duration,
    /// Load-shedding watermark: while the engine's queue depth is at or
    /// past this, `Submit` is refused with a typed
    /// [`Response::Overloaded`] (Status/Result/Watch still serve).
    pub shed_watermark: usize,
    /// The pause `Overloaded` suggests to shedded clients, milliseconds.
    pub retry_after_ms: u32,
    /// Per-connection request-rate cap: requests beyond this many in one
    /// second get a typed [`ErrorCode::RateLimited`] refusal and the
    /// handler sleeps out the window, so one hot client cannot starve the
    /// rest of the pool.
    pub max_frames_per_sec: u32,
    /// Run as a fleet coordinator instead of a local job engine: no local
    /// workers; jobs are sharded across daemons that `Register` over the
    /// wire, and `lease` governs *daemon* liveness (default
    /// [`crate::fleet::DEFAULT_FLEET_LEASE`] rather than [`DEFAULT_LEASE`] — a
    /// coordinator's daemons beacon from a dedicated thread, so the lease
    /// only has to outlive network jitter).
    pub coordinator: bool,
}

impl ServerConfig {
    /// A config with production defaults for `out_dir`, listening on an
    /// ephemeral localhost port.
    #[must_use]
    pub fn new(out_dir: PathBuf) -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 1,
            out_dir,
            resume: false,
            max_conns: 32,
            io_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            lease: DEFAULT_LEASE,
            shed_watermark: 256,
            retry_after_ms: 500,
            max_frames_per_sec: 200,
            coordinator: false,
        }
    }
}

/// What the server serves requests from: a local job engine (a plain
/// `tipd`) or a fleet coordinator (`tipd --coordinator`). Both run the
/// same queue/commit/resume semantics; only where the simulation happens
/// differs.
pub enum Backend {
    /// Jobs run on this host's worker threads.
    Local(Engine),
    /// Jobs are sharded across registered fleet daemons.
    Fleet(Coordinator),
}

impl Backend {
    fn submit_deduped(&self, spec: &JobSpec, req_id: u64) -> Result<u64, SubmitError> {
        match self {
            Backend::Local(e) => e.submit_deduped(spec, req_id),
            Backend::Fleet(c) => c.submit_deduped(spec, req_id),
        }
    }

    fn status(&self, job: u64) -> Option<JobState> {
        match self {
            Backend::Local(e) => e.status(job),
            Backend::Fleet(c) => c.status(job),
        }
    }

    fn wait_history(
        &self,
        job: u64,
        from_seq: u64,
        timeout: Duration,
    ) -> Option<Vec<(u64, JobState)>> {
        match self {
            Backend::Local(e) => e.wait_history(job, from_seq, timeout),
            Backend::Fleet(c) => c.wait_history(job, from_seq, timeout),
        }
    }

    fn result(&self, job: u64) -> Result<String, String> {
        match self {
            Backend::Local(e) => e.result(job),
            Backend::Fleet(c) => c.result(job),
        }
    }

    fn cancel(&self, job: u64) -> bool {
        match self {
            Backend::Local(e) => e.cancel(job),
            Backend::Fleet(c) => c.cancel(job),
        }
    }

    /// Counters for the stats endpoint (`connections`/`shed` filled by the
    /// server layer).
    pub fn stats(&self) -> ServerStats {
        match self {
            Backend::Local(e) => e.stats(),
            Backend::Fleet(c) => c.stats(),
        }
    }

    fn queue_depth(&self) -> usize {
        match self {
            Backend::Local(e) => e.queue_depth(),
            Backend::Fleet(c) => c.queue_depth(),
        }
    }

    fn drain(&self) {
        match self {
            Backend::Local(e) => e.drain(),
            Backend::Fleet(c) => c.drain(),
        }
    }

    fn bench_of(&self, job: u64) -> Option<String> {
        match self {
            Backend::Local(e) => e.bench_of(job),
            Backend::Fleet(c) => c.bench_of(job),
        }
    }

    fn symbol_names(&self, bench: &str, g: Granularity, syms: &[u32]) -> Option<Vec<String>> {
        match self {
            Backend::Local(e) => e.symbol_names(bench, g, syms),
            Backend::Fleet(c) => c.symbol_names(bench, g, syms),
        }
    }

    fn shutdown(&self, drain: bool) {
        match self {
            // The engine always finishes in-flight local jobs (workers are
            // threads of this process; abandoning them buys nothing).
            Backend::Local(e) => e.shutdown(),
            Backend::Fleet(c) => c.shutdown(drain),
        }
    }
}

struct Shared {
    backend: Backend,
    /// The streaming aggregate every `PushDelta` lands in and every `Query`
    /// reads from — shared with the backend, which feeds it from its own
    /// workers (engine) or committer (coordinator).
    live: Arc<LiveAggregate>,
    /// Symbol-name cache for `Query{TopN}` labels, keyed by benchmark: the
    /// coordinator regenerates the workload program per lookup, so labels
    /// are resolved once and reused.
    labels: Mutex<HashMap<String, Vec<String>>>,
    shutdown: AtomicBool,
    /// Whether the requested shutdown drains in-flight fleet assignments
    /// (wire `Shutdown{drain:false}` force-expires them instead).
    drain_on_shutdown: AtomicBool,
    active_conns: AtomicUsize,
    max_conns: usize,
    io_timeout: Duration,
    write_timeout: Duration,
    shed_watermark: usize,
    retry_after_ms: u32,
    max_frames_per_sec: u32,
    /// Submits refused at the overload watermark (for the stats endpoint).
    shed: AtomicU32,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] or send a wire `Shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

/// Binds, starts the engine, and spawns the acceptor.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    serve_with_runner(config, tip_bench::executor::SpecRunner)
}

/// [`serve`] with a caller-chosen runner — the chaos tests inject slow or
/// faulty runners behind a real socket exactly as the engine tests do.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_with_runner<R>(config: &ServerConfig, runner: R) -> io::Result<ServerHandle>
where
    R: tip_bench::executor::Runner + Send + Clone + 'static,
{
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    let live = Arc::new(LiveAggregate::new());
    let backend = if config.coordinator {
        Backend::Fleet(Coordinator::start(&CoordinatorConfig {
            out_dir: config.out_dir.clone(),
            resume: config.resume,
            lease: config.lease,
            live: Some(Arc::clone(&live)),
        }))
    } else {
        Backend::Local(Engine::start_with_runner(
            &EngineConfig {
                out_dir: config.out_dir.clone(),
                workers: config.workers,
                resume: config.resume,
                lease: config.lease,
                live: Some(Arc::clone(&live)),
            },
            runner,
        ))
    };
    let shared = Arc::new(Shared {
        backend,
        live,
        labels: Mutex::new(HashMap::new()),
        shutdown: AtomicBool::new(false),
        drain_on_shutdown: AtomicBool::new(true),
        active_conns: AtomicUsize::new(0),
        max_conns: config.max_conns.max(1),
        io_timeout: config.io_timeout,
        write_timeout: config.write_timeout,
        shed_watermark: config.shed_watermark.max(1),
        retry_after_ms: config.retry_after_ms,
        max_frames_per_sec: config.max_frames_per_sec.max(1),
        shed: AtomicU32::new(0),
    });
    let handlers = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let handlers = Arc::clone(&handlers);
        thread::spawn(move || acceptor_loop(&listener, &shared, &handlers))
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        handlers,
    })
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for in-process inspection (tests, the daemon's exit
    /// report).
    ///
    /// # Panics
    ///
    /// On a coordinator server, which has no local engine — use
    /// [`ServerHandle::backend`].
    #[must_use]
    pub fn engine(&self) -> &Engine {
        match &self.shared.backend {
            Backend::Local(e) => e,
            Backend::Fleet(_) => panic!("coordinator server has no local engine"),
        }
    }

    /// The backend (engine or coordinator), for in-process inspection.
    #[must_use]
    pub fn backend(&self) -> &Backend {
        &self.shared.backend
    }

    /// Whether a shutdown (wire or in-process) has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a wire `Shutdown` request stops the server, then
    /// finishes the drain. This is the daemon's main loop.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.finish();
    }

    /// In-process equivalent of the wire `Shutdown{drain}` request: stop
    /// accepting, finish handlers, drain and commit in-flight jobs.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared, self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.finish();
    }

    fn finish(&self) {
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for h in handlers {
            let _ = h.join();
        }
        let drain = self.shared.drain_on_shutdown.load(Ordering::SeqCst);
        self.shared.backend.shutdown(drain);
    }
}

/// Flags shutdown and unblocks the acceptor's blocking `accept` with a
/// throwaway self-connection.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.backend.drain();
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Backpressure: over the limit, answer with a typed Busy so the
        // client can back off, then close. The frame write is best-effort
        // on purpose — the peer may already be gone.
        let active = shared.active_conns.load(Ordering::SeqCst);
        if active >= shared.max_conns {
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.write_timeout));
            let _ = write_response(
                &mut stream,
                &Response::Busy {
                    active: active as u32,
                    limit: shared.max_conns as u32,
                },
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let handle = thread::spawn(move || {
            handle_connection(stream, &shared);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
        handlers.lock().expect("handler registry").push(handle);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let _ = stream.set_nodelay(true);
    let window = Duration::from_secs(1);
    let mut window_start = Instant::now();
    let mut frames_in_window: u32 = 0;
    loop {
        match read_request(&mut stream) {
            Ok(None) => break,
            Ok(Some(req)) => {
                // Per-connection frame-rate cap: a request beyond the
                // budget gets a typed refusal (the stream stays aligned)
                // and the handler sleeps out the window, so one hot client
                // cannot monopolise the pool.
                let elapsed = window_start.elapsed();
                if elapsed >= window {
                    window_start = Instant::now();
                    frames_in_window = 0;
                }
                frames_in_window += 1;
                if frames_in_window > shared.max_frames_per_sec {
                    let refused = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::RateLimited,
                            message: format!(
                                "over {} requests/s on this connection; retry shortly",
                                shared.max_frames_per_sec
                            ),
                        },
                    );
                    if refused.is_err() {
                        break;
                    }
                    thread::sleep(window.saturating_sub(elapsed));
                    continue;
                }
                let stop = dispatch(&mut stream, shared, req);
                if stop {
                    break;
                }
            }
            Err(TraceError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle between requests: re-arm unless we're going down.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) => {
                // A zero-length frame leaves the stream aligned on the
                // next header, so a typed reply and another read are safe.
                // Everything else (bad magic, CRC, truncation) may have
                // desynced the framing: reply once and close.
                let recoverable = matches!(e, TraceError::BadLength { len: 0, .. });
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                );
                if !recoverable {
                    break;
                }
            }
        }
    }
}

/// Serves one request; returns `true` when the connection must close
/// (shutdown acknowledged).
fn dispatch(stream: &mut TcpStream, shared: &Shared, req: Request) -> bool {
    let engine = &shared.backend;
    match req {
        Request::Submit { spec, req_id } => {
            // Load shedding: past the watermark, refuse new work with a
            // typed pause hint while Status/Result/Watch keep serving —
            // degradation, not collapse. (An idempotent resubmit of an
            // already-queued job still dedups below the watermark later.)
            if engine.queue_depth() >= shared.shed_watermark {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Overloaded {
                    retry_after_ms: shared.retry_after_ms,
                    queued: engine.queue_depth() as u32,
                };
                return write_response(stream, &resp).is_err();
            }
            let resp = match engine.submit_deduped(&spec, req_id) {
                Ok(job) => Response::Submitted { job },
                Err(SubmitError::UnknownBench(b)) => Response::Error {
                    code: ErrorCode::UnknownBench,
                    message: format!("unknown benchmark `{b}`"),
                },
                Err(SubmitError::UnknownCore(c)) => Response::Error {
                    code: ErrorCode::UnknownCore,
                    message: format!("unknown core preset `{c}`"),
                },
                Err(SubmitError::Draining) => Response::Error {
                    code: ErrorCode::Draining,
                    message: "server is draining".to_owned(),
                },
            };
            write_response(stream, &resp).is_err()
        }
        Request::Status { job } => {
            let resp = match engine.status(job) {
                Some(state) => Response::Status { job, state },
                None => unknown_job(job),
            };
            write_response(stream, &resp).is_err()
        }
        Request::Watch { job, from_seq } => watch(stream, shared, job, from_seq),
        Request::Result { job } => {
            let resp = match engine.result(job) {
                Ok(body) => Response::ResultBody { job, body },
                Err(message) => Response::Error {
                    code: if message.starts_with("unknown job") {
                        ErrorCode::UnknownJob
                    } else {
                        ErrorCode::NotReady
                    },
                    message,
                },
            };
            write_response(stream, &resp).is_err()
        }
        Request::Cancel { job } => {
            let ok = engine.cancel(job);
            write_response(stream, &Response::Cancelled { job, ok }).is_err()
        }
        Request::Stats => {
            let mut stats: ServerStats = engine.stats();
            stats.connections = shared.active_conns.load(Ordering::SeqCst) as u32;
            stats.shed = shared.shed.load(Ordering::Relaxed);
            let view = shared.live.view();
            stats.deltas = view.total_flushes();
            stats.streamed = view.benches.len() as u32;
            write_response(stream, &Response::Stats(stats)).is_err()
        }
        Request::Shutdown { drain } => {
            let _ = write_response(stream, &Response::ShuttingDown { drain });
            shared.drain_on_shutdown.store(drain, Ordering::SeqCst);
            let addr = stream
                .local_addr()
                .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)));
            // A draining coordinator keeps the listener up until every
            // registered agent has polled a `NoWork{draining}` (or
            // lapsed): agents dial per request, so closing the listener
            // first would strand them spinning out their give-up window.
            // Only this handler thread blocks; polls keep being served.
            if drain {
                if let Backend::Fleet(c) = &shared.backend {
                    c.drain();
                    c.wait_agents_released();
                }
            }
            request_shutdown(shared, addr);
            true
        }
        Request::Register { name, workers } => {
            let resp = match fleet(engine) {
                Err(resp) => *resp,
                Ok(c) => {
                    let (daemon, lease_ms) = c.register(&name, workers);
                    Response::Registered { daemon, lease_ms }
                }
            };
            write_response(stream, &resp).is_err()
        }
        Request::Beacon { daemon } => {
            let resp = match fleet(engine) {
                Err(resp) => *resp,
                Ok(c) => match c.beacon(daemon) {
                    Ok(tasks) => Response::BeaconAck { tasks },
                    Err(_) => unknown_daemon(daemon),
                },
            };
            write_response(stream, &resp).is_err()
        }
        Request::PollJob { daemon } => {
            let resp = match fleet(engine) {
                Err(resp) => *resp,
                Ok(c) => match c.poll_job(daemon) {
                    Ok(PollReply::Assignment { task, epoch, spec }) => {
                        Response::Assignment { task, epoch, spec }
                    }
                    Ok(PollReply::NoWork { draining }) => Response::NoWork { draining },
                    Err(_) => unknown_daemon(daemon),
                },
            };
            write_response(stream, &resp).is_err()
        }
        Request::PushResult {
            daemon,
            task,
            epoch,
            outcome,
        } => {
            let resp = match fleet(engine) {
                Err(resp) => *resp,
                Ok(c) => match c.push_result(daemon, task, epoch, outcome) {
                    Ok(accepted) => Response::ResultAck { accepted },
                    Err(_) => unknown_daemon(daemon),
                },
            };
            write_response(stream, &resp).is_err()
        }
        Request::PushDelta { daemon, frame } => {
            // daemon 0 is a local observer: its flushes go straight into
            // the aggregate. A fleet daemon's flushes pass through the
            // coordinator, which validates liveness and that the daemon
            // still holds the benchmark's assignment — a resurrected
            // daemon's stale stream must not pollute the fresh slot.
            let resp = if daemon == 0 {
                shared.live.ingest(&frame.into_event());
                Response::DeltaAck { accepted: true }
            } else {
                match fleet(engine) {
                    Err(resp) => *resp,
                    Ok(c) => match c.accept_delta(daemon, &frame.into_event()) {
                        Ok(accepted) => Response::DeltaAck { accepted },
                        Err(_) => unknown_daemon(daemon),
                    },
                }
            };
            write_response(stream, &resp).is_err()
        }
        Request::Query {
            kind,
            bench,
            profiler,
            n,
        } => {
            let rows = answer_query(shared, kind, &bench, profiler, n);
            write_response(stream, &Response::QueryReply { rows }).is_err()
        }
    }
}

/// Answers a live query from the current aggregate snapshot. An empty
/// `bench` means every streamed benchmark; `n` caps `TopN` rows per
/// benchmark (0 = [`DEFAULT_TOP_N`]) and, when non-zero, keeps only the
/// trailing `n` points of each `ErrorTrajectory`.
fn answer_query(
    shared: &Shared,
    kind: QueryKind,
    bench: &str,
    profiler: Option<ProfilerId>,
    n: u32,
) -> Vec<QueryRow> {
    let view = shared.live.view();
    let mut rows = Vec::new();
    for b in view
        .benches
        .iter()
        .filter(|b| bench.is_empty() || b.bench == bench)
    {
        match kind {
            QueryKind::TopN => {
                let cap = if n == 0 { DEFAULT_TOP_N } else { n as usize };
                let top = b.top_n(profiler, cap);
                let syms: Vec<u32> = top.iter().map(|&(s, _, _)| s).collect();
                let labels = symbol_labels(shared, &b.bench, b.granularity, b.num_symbols, &syms);
                for ((_, units, share), label) in top.into_iter().zip(labels) {
                    rows.push(QueryRow {
                        bench: b.bench.clone(),
                        profiler,
                        label,
                        value: units as f64,
                        share,
                    });
                }
            }
            QueryKind::ErrorTrajectory => {
                let ids: Vec<ProfilerId> = match profiler {
                    Some(id) => vec![id],
                    None => b.per_profiler.iter().map(|(id, _)| *id).collect(),
                };
                for id in ids {
                    let mut points = b.error_trajectory(id);
                    if n != 0 && points.len() > n as usize {
                        points.drain(..points.len() - n as usize);
                    }
                    for (cycles, error) in points {
                        rows.push(QueryRow {
                            bench: b.bench.clone(),
                            profiler: Some(id),
                            label: id.label().to_owned(),
                            value: cycles as f64,
                            share: error,
                        });
                    }
                }
            }
            QueryKind::CycleStack => {
                let total: i64 = b.stack.iter().filter(|&&u| u > 0).sum();
                for (cat, &units) in CycleCategory::ALL.iter().zip(&b.stack) {
                    rows.push(QueryRow {
                        bench: b.bench.clone(),
                        profiler: None,
                        label: cat.label().to_owned(),
                        value: units as f64,
                        share: if total > 0 {
                            units.max(0) as f64 / total as f64
                        } else {
                            0.0
                        },
                    });
                }
            }
        }
    }
    rows
}

/// Resolves symbol ids to display names via the backend, caching the full
/// name table per benchmark. Unresolvable symbols (or a benchmark the
/// backend no longer knows) fall back to `sym<N>` without caching, so a
/// later resolution can still land.
fn symbol_labels(
    shared: &Shared,
    bench: &str,
    g: Granularity,
    num_symbols: u32,
    syms: &[u32],
) -> Vec<String> {
    let fallback = |s: u32| format!("sym{s}");
    let mut cache = shared.labels.lock().expect("label cache");
    if !cache.contains_key(bench) {
        let all: Vec<u32> = (0..num_symbols).collect();
        match shared.backend.symbol_names(bench, g, &all) {
            Some(names) => {
                cache.insert(bench.to_owned(), names);
            }
            None => return syms.iter().map(|&s| fallback(s)).collect(),
        }
    }
    let names = &cache[bench];
    syms.iter()
        .map(|&s| {
            names
                .get(s as usize)
                .cloned()
                .unwrap_or_else(|| fallback(s))
        })
        .collect()
}

/// The coordinator behind a fleet request, or the typed refusal a plain
/// daemon answers with (boxed: the Ok path is the hot one).
fn fleet(backend: &Backend) -> Result<&Coordinator, Box<Response>> {
    match backend {
        Backend::Fleet(c) => Ok(c),
        Backend::Local(_) => Err(Box::new(Response::Error {
            code: ErrorCode::BadRequest,
            message: "not a coordinator".to_owned(),
        })),
    }
}

fn unknown_daemon(daemon: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownDaemon,
        message: format!("unknown daemon {daemon}; re-register"),
    }
}

/// Streams `Progress` frames — replaying the job's history from
/// `from_seq`, then live — until the job settles, the peer vanishes, or
/// the server shuts down (a drained-away queued job would otherwise never
/// terminate the stream). Every frame carries its history sequence number,
/// so a client whose connection dropped reconnects with
/// `Watch{from_seq: last_seen + 1}` and resumes without gaps or
/// duplicates.
fn watch(stream: &mut TcpStream, shared: &Shared, job: u64, from_seq: u64) -> bool {
    let engine = &shared.backend;
    let bench = engine.bench_of(job);
    let mut next_seq = from_seq;
    loop {
        let Some(batch) = engine.wait_history(job, next_seq, Duration::from_millis(200)) else {
            return write_response(stream, &unknown_job(job)).is_err();
        };
        // Streamed simulated cycles for the job's benchmark, refreshed per
        // batch: watchers see the live view advance between state changes.
        let cycles = bench
            .as_deref()
            .and_then(|name| shared.live.view().bench(name).map(|b| b.cycles))
            .unwrap_or(0);
        let mut last = None;
        for (seq, state) in batch {
            let frame = Response::Progress {
                job,
                state,
                seq,
                cycles,
            };
            if write_response(stream, &frame).is_err() {
                return true;
            }
            next_seq = seq + 1;
            last = Some(state);
        }
        if last.is_some_and(|s| s.is_terminal()) {
            return false;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // The stream ends without a terminal state; the client sees a
            // clean EOF and knows to reconnect (possibly to a restarted
            // daemon) and resume from its last seen sequence number.
            return true;
        }
    }
}

fn unknown_job(job: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownJob,
        message: format!("unknown job {job}"),
    }
}

const _: () = {
    const fn send<T: Send>() {}
    const fn sync<T: Sync>() {}
    send::<JobState>();
    sync::<Shared>();
};
