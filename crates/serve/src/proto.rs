//! The `TIPW` wire protocol: versioned, length-prefixed, CRC-32-framed
//! request/response messages over any byte stream.
//!
//! The framing deliberately mirrors the on-disk trace container from
//! [`tip_trace::framing`] — same CRC-32 (slice-by-8, via
//! [`tip_trace::framing::crc32_pair`]), same classification discipline —
//! so a damaged socket stream fails with the *same* typed errors as a
//! damaged trace file: [`TraceError::BadMagic`],
//! [`TraceError::UnsupportedVersion`], [`TraceError::Corrupt`],
//! [`TraceError::Truncated`], and [`TraceError::BadLength`]. One error
//! vocabulary for every byte stream in the system.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic   "TIPW"
//! 4       2     version (little-endian, currently 1)
//! 6       2     kind    (request/response discriminant)
//! 8       4     payload length in bytes (1 ..= MAX_PAYLOAD)
//! 12      4     CRC-32 over bytes 0..12 ++ payload
//! 16      n     payload (tip_isa::snap encoding)
//! ```
//!
//! Zero-length payloads are structurally invalid (every message encodes at
//! least one byte); a peer sending one gets [`TraceError::BadLength`],
//! which — unlike a CRC failure — leaves the stream aligned on the next
//! frame boundary, so a server can answer with a typed error *without*
//! desyncing the connection.
//!
//! # Versioning
//!
//! Version 2 (fault-tolerance) extends version 1 by *appending* fields to
//! existing payloads — `Submit` gains a request id for idempotent
//! resubmission, `Watch` gains `from_seq` for stream resumption, and
//! `Progress` gains a sequence number, and `Stats` gains reassignment and
//! load-shed counters — plus the new
//! [`Response::Overloaded`] frame kind.
//!
//! Version 3 (fleet coordination) follows the same discipline: the fleet
//! frames ([`Request::Register`], [`Request::Beacon`],
//! [`Request::PollJob`], [`Request::PushResult`] and their responses) are
//! *new* kinds, and the only change to an existing payload is appending the
//! `daemons`/`stale` counters to `Stats`. A v3 decoder accepts v1/v2 frames
//! by defaulting the absent tail fields to zero ([`read_frame`] accepts any
//! version in [`MIN_VERSION`]`..=`[`VERSION`]); encoders always emit v3.
//!
//! Version 4 (streaming aggregation) keeps the same discipline once more:
//! [`Request::PushDelta`] carries a [`DeltaFrame`] of quantized profile
//! increments from a running job, [`Request::Query`] asks the live
//! aggregate a question ([`QueryKind::TopN`], [`QueryKind::ErrorTrajectory`],
//! [`QueryKind::CycleStack`]), and [`Response::QueryReply`] /
//! [`Response::DeltaAck`] answer them — all *new* kinds. The only changes
//! to existing payloads are appended tail fields: `Progress` gains the live
//! cycle count of the job's benchmark, and `Stats` gains the
//! `deltas`/`streamed` counters. Deltas are signed; the wire carries `i64`
//! as its two's-complement `u64` bits, which round-trips exactly.
//!
//! Version 5 (profile-guided optimization) appends exactly one tail byte
//! to two existing payloads and nothing else: `Submit` and `Assignment`
//! gain the spec's [`JobSpec::pgo`] flag *after* their existing fields
//! (after `req_id`, and after the spec, respectively — the flag cannot
//! live inside the spec encoding itself, because the spec is followed by
//! tail-defaulted fields whose decode would consume it). Absent means
//! `false`, so pre-v5 frames decode as plain profiled runs.

use std::io::{self, Read, Write};

use tip_bench::live::DeltaEvent;
use tip_bench::run::DEFAULT_INTERVAL;
use tip_core::{BankDeltas, ProfileDelta, ProfilerId, SamplerConfig, SamplingMode};
use tip_isa::snap::{self, SnapError, SnapReader};
use tip_isa::Granularity;
use tip_trace::framing::{crc32_pair, read_exact_or_eof, ReadOutcome};
use tip_trace::TraceError;
use tip_workloads::SuiteScale;

/// Stream magic: a framed TIPW protocol exchange.
pub const MAGIC: [u8; 4] = *b"TIPW";
/// Protocol version this build emits.
pub const VERSION: u16 = 5;
/// Oldest protocol version this build still decodes (v2/v3 only append
/// fields, so older frames decode with the tail fields defaulted).
pub const MIN_VERSION: u16 = 1;
/// Frame header length: magic + version + kind + payload length + CRC.
pub const FRAME_HEADER_LEN: usize = 16;
/// Request-size cap: the largest payload a peer may declare. Far above any
/// legitimate message (the biggest is a result body), far below anything
/// that would let a hostile peer balloon the receiver's allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Everything needed to run one benchmark on the server, mirroring
/// [`tip_bench::executor::Job`] minus the resolved program (the server
/// regenerates it from the name, which is what keeps the message small and
/// the artifacts byte-identical to a local run).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name; must be one of [`tip_workloads::BENCHMARK_NAMES`].
    pub bench: String,
    /// Dynamic-instruction scale of the generated program.
    pub scale: SuiteScale,
    /// Base seed; attempt `k` (1-based) runs with `seed + k - 1`.
    pub seed: u64,
    /// Core preset name; empty selects the default core.
    pub core: String,
    /// Sampling schedule.
    pub sampler: SamplerConfig,
    /// Profilers attached to the run (also the result file's error lines).
    pub profilers: Vec<ProfilerId>,
    /// Attempts before the job is written off as failed (≥ 1).
    pub max_attempts: u32,
    /// Run the profile-guided-optimization loop instead of a plain
    /// profiled run (see [`tip_bench::pgo`]); the result file then reports
    /// the TIP-optimized program's run in the ordinary ledger format. A v5
    /// tail field carried by the containing `Submit`/`Assignment` frames,
    /// not the spec encoding itself.
    pub pgo: bool,
}

impl JobSpec {
    /// A spec with the campaign defaults ([`tip_bench::CampaignConfig`]):
    /// seed 42, two attempts, periodic sampling at the standard interval,
    /// all paper profilers, default core. Submitting the whole suite with
    /// these defaults reproduces a default local campaign byte-for-byte.
    #[must_use]
    pub fn new(bench: &str, scale: SuiteScale) -> Self {
        JobSpec {
            bench: bench.to_owned(),
            scale,
            seed: 42,
            core: String::new(),
            sampler: SamplerConfig::periodic(DEFAULT_INTERVAL),
            profilers: ProfilerId::ALL.to_vec(),
            max_attempts: 2,
            pgo: false,
        }
    }
}

/// The observable lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue with `ahead` jobs in front of it.
    Queued {
        /// Jobs queued ahead of this one.
        ahead: u32,
    },
    /// Claimed by worker `worker` and simulating.
    Running {
        /// Index of the worker running the job.
        worker: u32,
    },
    /// Settled and committed to the ledger; the result file is on disk.
    Done {
        /// Whether the job completed (vs. failed every attempt).
        ok: bool,
        /// Attempts made (0 = completed by an earlier daemon invocation).
        attempts: u32,
    },
    /// Cancelled while still queued; it never ran and left no artifacts.
    Cancelled,
}

impl JobState {
    /// Whether the job will never change state again.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done { .. } | JobState::Cancelled)
    }
}

/// A snapshot of the server's counters for the stats endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Jobs waiting in the queue.
    pub queued: u32,
    /// Jobs currently simulating.
    pub running: u32,
    /// Jobs completed OK (including ones resumed from a previous run).
    pub done: u32,
    /// Jobs that failed every attempt.
    pub failed: u32,
    /// Jobs cancelled while queued.
    pub cancelled: u32,
    /// Worker threads in the pool.
    pub workers: u32,
    /// Live client connections (filled in by the server layer).
    pub connections: u32,
    /// Mean queue wait across settled jobs, milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Fraction of worker-seconds spent simulating since startup.
    pub worker_utilization: f64,
    /// Daemon uptime, milliseconds.
    pub uptime_ms: u64,
    /// Jobs reassigned after a worker's lease expired without a heartbeat.
    pub reassigned: u32,
    /// Submits refused because the queue was past its overload watermark
    /// (filled in by the server layer).
    pub shed: u32,
    /// Daemons currently registered with the fleet coordinator (0 on a
    /// plain daemon; a v3 tail field).
    pub daemons: u32,
    /// Results discarded because they arrived under a stale assignment
    /// epoch — a resurrected daemon pushing work that was already
    /// reassigned (a v3 tail field).
    pub stale: u32,
    /// Profile-delta flushes folded into the live aggregate so far (a v4
    /// tail field).
    pub deltas: u64,
    /// Benchmarks with live streamed state (a v4 tail field).
    pub streamed: u32,
}

impl ServerStats {
    /// Renders the stats as the text metrics block (`key=value` lines) the
    /// ISSUE's metrics endpoint serves and `tipctl stats` prints.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "queued={}\nrunning={}\ndone={}\nfailed={}\ncancelled={}\nworkers={}\n\
             connections={}\nmean_queue_wait_ms={:.1}\nworker_utilization={:.3}\nuptime_ms={}\n\
             reassigned={}\nshed={}\ndaemons={}\nstale={}\ndeltas={}\nstreamed={}\n",
            self.queued,
            self.running,
            self.done,
            self.failed,
            self.cancelled,
            self.workers,
            self.connections,
            self.mean_queue_wait_ms,
            self.worker_utilization,
            self.uptime_ms,
            self.reassigned,
            self.shed,
            self.daemons,
            self.stale,
            self.deltas,
            self.streamed,
        )
    }
}

/// What a fleet daemon sends back for one finished assignment: the
/// already-rendered artifact text (so the coordinator's ledger writes are
/// byte-identical to a local run without re-simulating) plus the host
/// metrics the `metrics.txt` row needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// Whether the job completed (vs. failed every attempt).
    pub ok: bool,
    /// Attempts the daemon made before settling.
    pub attempts: u32,
    /// The rendered `<bench>.result` file body when `ok`; empty otherwise.
    pub body: String,
    /// The one-line failure message when `!ok`; empty otherwise.
    pub error_line: String,
    /// Host wall-clock the daemon spent on the job, milliseconds.
    pub wall_ms: f64,
    /// Daemon-side worker index that ran the job.
    pub worker: u32,
    /// Simulated cycles of the final attempt (0 on failure).
    pub cycles: u64,
    /// Committed instructions of the final attempt (0 on failure).
    pub instructions: u64,
    /// Instructions per cycle of the final attempt (0 on failure).
    pub ipc: f64,
}

/// One quantized profile-delta flush on the wire: the
/// [`tip_core::BankDeltas`] of one run attempt's slice, addressed to a
/// benchmark, in the sparse `(symbol, units)` form of
/// [`tip_core::ProfileDelta`]. Signed unit counts travel as their
/// two's-complement `u64` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFrame {
    /// Benchmark name the deltas belong to.
    pub bench: String,
    /// 1-based attempt number (a retry restarts the accumulators).
    pub attempt: u32,
    /// 1-based flush sequence within the attempt; a non-increasing value
    /// signals a restarted run whose first flush re-reports everything.
    pub seq: u64,
    /// Symbol granularity of the unit vectors (wire codes 0/1/2 for
    /// instruction/basic-block/function).
    pub granularity: Granularity,
    /// Length of the dense unit vectors the sparse entries index into.
    pub num_symbols: u32,
    /// Sparse per-profiler increments since the attempt's last flush.
    pub per_profiler: Vec<(ProfilerId, Vec<(u32, i64)>)>,
    /// Sparse Oracle increments.
    pub oracle: Vec<(u32, i64)>,
    /// Cycle-stack increments, indexed by [`tip_core::CycleCategory`].
    pub stack: Vec<i64>,
    /// Simulated cycles the flush had observed (cumulative, not a delta).
    pub cycles: u64,
}

impl DeltaFrame {
    /// Wraps one harness-side [`DeltaEvent`] for the wire.
    #[must_use]
    pub fn from_event(event: &DeltaEvent) -> Self {
        DeltaFrame {
            bench: event.bench.clone(),
            attempt: event.attempt,
            seq: event.deltas.seq,
            granularity: event.deltas.oracle.granularity(),
            num_symbols: event.deltas.oracle.num_symbols(),
            per_profiler: event
                .deltas
                .per_profiler
                .iter()
                .map(|(id, d)| (*id, d.entries().to_vec()))
                .collect(),
            oracle: event.deltas.oracle.entries().to_vec(),
            stack: event.deltas.stack.clone(),
            cycles: event.deltas.cycles,
        }
    }

    /// Rebuilds the harness-side [`DeltaEvent`] a receiver can feed into a
    /// [`tip_bench::live::LiveAggregate`]. Out-of-range symbols from a
    /// hostile peer are clamped away by
    /// [`tip_core::ProfileDelta::from_entries`], never a panic.
    #[must_use]
    pub fn into_event(self) -> DeltaEvent {
        let g = self.granularity;
        let n = self.num_symbols;
        DeltaEvent {
            bench: self.bench,
            attempt: self.attempt,
            deltas: BankDeltas {
                seq: self.seq,
                per_profiler: self
                    .per_profiler
                    .into_iter()
                    .map(|(id, entries)| (id, ProfileDelta::from_entries(g, n, entries)))
                    .collect(),
                oracle: ProfileDelta::from_entries(g, n, self.oracle),
                stack: self.stack,
                cycles: self.cycles,
            },
        }
    }
}

/// The questions the live aggregate answers over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The heaviest symbols by aggregated units, per benchmark.
    TopN,
    /// A profiler's error-vs-Oracle trajectory over the flush history.
    ErrorTrajectory,
    /// The aggregated CPI-stack category breakdown.
    CycleStack,
}

impl QueryKind {
    fn code(self) -> u8 {
        match self {
            QueryKind::TopN => 0,
            QueryKind::ErrorTrajectory => 1,
            QueryKind::CycleStack => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, SnapError> {
        Ok(match c {
            0 => QueryKind::TopN,
            1 => QueryKind::ErrorTrajectory,
            2 => QueryKind::CycleStack,
            _ => return Err(SnapError::Malformed("unknown query kind")),
        })
    }
}

/// One row of a [`Response::QueryReply`]. The shape is deliberately
/// query-agnostic — a label plus two numbers — so new query kinds never
/// need new frame layouts:
///
/// * `TopN`: label = symbol name, `value` = aggregated units,
///   `share` = fraction of the benchmark's attributed units;
/// * `ErrorTrajectory`: label = profiler name, `value` = simulated cycles
///   at the flush, `share` = error vs. the Oracle at that point;
/// * `CycleStack`: label = cycle-category, `value` = aggregated units,
///   `share` = fraction of all attributed units.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Benchmark the row belongs to.
    pub bench: String,
    /// Profiler the row was computed from (`None` = the Oracle).
    pub profiler: Option<ProfilerId>,
    /// What the row names (symbol, profiler, or category — per kind).
    pub label: String,
    /// The row's magnitude (units or cycles — per kind).
    pub value: f64,
    /// The row's relative figure (share or error — per kind).
    pub share: f64,
}

/// Why the server rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request decoded but made no sense (bad field, wrong state).
    BadRequest,
    /// The submitted benchmark name is not in the suite.
    UnknownBench,
    /// The submitted core preset name is not known.
    UnknownCore,
    /// No job with that id.
    UnknownJob,
    /// The job exists but has not finished; its result is not fetchable.
    NotReady,
    /// The server is draining and accepts no new work.
    Draining,
    /// The server hit an internal error serving the request.
    Internal,
    /// The connection exceeded the server's per-connection frame-rate cap.
    RateLimited,
    /// The daemon id is not registered with this coordinator — the daemon
    /// must re-register (the coordinator restarted, or the daemon was
    /// declared dead and its registration dropped).
    UnknownDaemon,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::UnknownBench => 1,
            ErrorCode::UnknownCore => 2,
            ErrorCode::UnknownJob => 3,
            ErrorCode::NotReady => 4,
            ErrorCode::Draining => 5,
            ErrorCode::Internal => 6,
            ErrorCode::RateLimited => 7,
            ErrorCode::UnknownDaemon => 8,
        }
    }

    fn from_code(c: u8) -> Result<Self, TraceError> {
        Ok(match c {
            0 => ErrorCode::BadRequest,
            1 => ErrorCode::UnknownBench,
            2 => ErrorCode::UnknownCore,
            3 => ErrorCode::UnknownJob,
            4 => ErrorCode::NotReady,
            5 => ErrorCode::Draining,
            6 => ErrorCode::Internal,
            7 => ErrorCode::RateLimited,
            8 => ErrorCode::UnknownDaemon,
            _ => return Err(TraceError::Malformed("unknown error code")),
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job; answered with `Submitted` carrying the job id.
    Submit {
        /// The job to run.
        spec: JobSpec,
        /// Client-chosen idempotency key; `0` means "no dedup". A repeated
        /// `Submit` with the same nonzero `req_id` returns the original
        /// job id instead of enqueueing again, so a client that timed out
        /// waiting for `Submitted` can resubmit without double-running.
        req_id: u64,
    },
    /// One-shot state query for a job.
    Status {
        /// The job id from `Submitted`.
        job: u64,
    },
    /// Stream `Progress` frames until the job reaches a terminal state.
    Watch {
        /// The job id from `Submitted`.
        job: u64,
        /// First progress sequence number wanted: `0` streams the job's
        /// whole history; a reconnecting client passes its last seen
        /// `seq + 1` to resume without gaps or duplicates.
        from_seq: u64,
    },
    /// Fetch the finished job's result-file bytes.
    Result {
        /// The job id from `Submitted`.
        job: u64,
    },
    /// Cancel a still-queued job.
    Cancel {
        /// The job id from `Submitted`.
        job: u64,
    },
    /// Fetch the server's counters.
    Stats,
    /// Stop accepting work; with `drain`, finish and commit in-flight jobs
    /// before exiting so a restarted daemon can `--resume` the rest.
    Shutdown {
        /// Finish in-flight jobs before exiting.
        drain: bool,
    },
    /// A fleet daemon announces itself to the coordinator; answered with
    /// `Registered` carrying its daemon id and lease duration.
    Register {
        /// Human-readable daemon name (host, port — for logs and metrics).
        name: String,
        /// Worker threads the daemon runs, so the coordinator can size its
        /// fan-out.
        workers: u32,
    },
    /// A fleet daemon's liveness heartbeat; extends the leases of every
    /// assignment it holds. An unregistered daemon gets
    /// `Error{UnknownDaemon}` and must re-register.
    Beacon {
        /// The daemon id from `Registered`.
        daemon: u64,
    },
    /// A fleet daemon asks for work; answered with `Assignment` or
    /// `NoWork`. Polling also counts as a heartbeat.
    PollJob {
        /// The daemon id from `Registered`.
        daemon: u64,
    },
    /// A fleet daemon returns one finished assignment; answered with
    /// `ResultAck`. Pushing also counts as a heartbeat. Idempotent: a
    /// duplicate push for an already-settled task under the same epoch is
    /// acked `accepted` without committing twice.
    PushResult {
        /// The daemon id from `Registered`.
        daemon: u64,
        /// The task id from `Assignment`.
        task: u64,
        /// The assignment epoch from `Assignment`; a stale epoch means the
        /// task was reassigned while this daemon was silent, and the
        /// result is discarded.
        epoch: u64,
        /// The rendered result and host metrics.
        outcome: RemoteOutcome,
    },
    /// A running worker streams one profile-delta flush into the server's
    /// live aggregate; answered with `DeltaAck`. Purely observational:
    /// dropping these frames loses live visibility, never correctness.
    PushDelta {
        /// The daemon id from `Registered` when a fleet agent pushes on
        /// behalf of its assignment; `0` from the server's own workers or
        /// other local observers.
        daemon: u64,
        /// The flush.
        frame: DeltaFrame,
    },
    /// Ask the live aggregate a question; answered with `QueryReply`.
    Query {
        /// What to compute.
        kind: QueryKind,
        /// Restrict to one benchmark; empty means all streamed benchmarks.
        bench: String,
        /// Profiler to read (`None` = the Oracle for `TopN`/`CycleStack`,
        /// every profiler for `ErrorTrajectory`).
        profiler: Option<ProfilerId>,
        /// Row cap per benchmark (`TopN`); 0 means the server default.
        n: u32,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was enqueued under this id.
    Submitted {
        /// Server-assigned job id (1-based, monotonic).
        job: u64,
    },
    /// Answer to `Status`.
    Status {
        /// The queried job.
        job: u64,
        /// Its current state.
        state: JobState,
    },
    /// One frame of a `Watch` stream; the last one carries a terminal state.
    Progress {
        /// The watched job.
        job: u64,
        /// Its state at this point in the stream.
        state: JobState,
        /// Position of this frame in the job's progress history (0-based,
        /// dense). A reconnecting watcher resumes with
        /// `Watch{from_seq: seq + 1}`.
        seq: u64,
        /// Simulated cycles the job's benchmark has streamed so far (0
        /// until the first delta lands, and from pre-v4 peers — a v4 tail
        /// field).
        cycles: u64,
    },
    /// Answer to `Result`: the bytes of the job's `<bench>.result` file.
    ResultBody {
        /// The queried job.
        job: u64,
        /// The result file contents.
        body: String,
    },
    /// Answer to `Cancel`.
    Cancelled {
        /// The job the cancel targeted.
        job: u64,
        /// Whether it was still queued and is now cancelled.
        ok: bool,
    },
    /// Answer to `Stats`.
    Stats(ServerStats),
    /// Acknowledges `Shutdown`; the server exits after this frame.
    ShuttingDown {
        /// Whether in-flight jobs are being drained first.
        drain: bool,
    },
    /// The server is at its connection limit; sent once, then the
    /// connection is closed. Typed so clients can back off instead of
    /// misreading a refusal as a protocol error.
    Busy {
        /// Connections currently being served.
        active: u32,
        /// The server's connection limit.
        limit: u32,
    },
    /// The server is shedding load: the queue is past its watermark, so
    /// new `Submit`s are refused while Status/Result/Watch still serve.
    /// Typed (with a suggested pause) so clients back off and resubmit
    /// idempotently instead of treating overload as failure.
    Overloaded {
        /// Suggested client-side pause before resubmitting, milliseconds.
        retry_after_ms: u32,
        /// Jobs currently queued (the depth that tripped the watermark).
        queued: u32,
    },
    /// The request was understood but refused.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail (one line).
        message: String,
    },
    /// Answer to `Register`: the coordinator accepted the daemon.
    Registered {
        /// Coordinator-assigned daemon id (1-based, monotonic — a fresh id
        /// on every registration, so a re-registered daemon never aliases
        /// its dead predecessor's leases).
        daemon: u64,
        /// Assignment lease duration; a daemon silent longer than this has
        /// its assignments reassigned. Daemons should beacon well inside
        /// it (every `lease_ms / 4`).
        lease_ms: u64,
    },
    /// Answer to `Beacon`: the heartbeat landed and the daemon is known.
    BeaconAck {
        /// Assignments the coordinator currently has leased to the daemon.
        tasks: u32,
    },
    /// Answer to `PollJob`: one leased assignment.
    Assignment {
        /// Coordinator task id; echoed back in `PushResult`.
        task: u64,
        /// Lease epoch; echoed back in `PushResult` and used to discard
        /// stale results after a reassignment.
        epoch: u64,
        /// The job to run. The daemon regenerates the program from the
        /// bench name, exactly like a local run.
        spec: JobSpec,
    },
    /// Answer to `PollJob` when nothing is assignable right now.
    NoWork {
        /// The coordinator is draining: no more work will ever come, and
        /// the daemon's agent may exit once its in-flight pushes are acked.
        draining: bool,
    },
    /// Answer to `PushResult`.
    ResultAck {
        /// Whether the result was committed (or had already been committed
        /// under this epoch). `false` means the epoch was stale and the
        /// result was discarded.
        accepted: bool,
    },
    /// Answer to `Query`: the computed rows, in the server's deterministic
    /// order (benchmarks by name; rows per the query kind's ranking).
    QueryReply {
        /// The rows; empty when nothing has streamed yet.
        rows: Vec<QueryRow>,
    },
    /// Answer to `PushDelta`.
    DeltaAck {
        /// Whether the flush was folded into the live aggregate. `false`
        /// means it was discarded (e.g. a fleet daemon pushing for a
        /// benchmark it no longer holds).
        accepted: bool,
    },
}

// Frame kinds. Requests are low, responses have the high bit set, so a
// misdirected frame fails decode instead of aliasing.
const KIND_SUBMIT: u16 = 1;
const KIND_STATUS: u16 = 2;
const KIND_WATCH: u16 = 3;
const KIND_RESULT: u16 = 4;
const KIND_CANCEL: u16 = 5;
const KIND_STATS: u16 = 6;
const KIND_SHUTDOWN: u16 = 7;
const KIND_REGISTER: u16 = 8;
const KIND_BEACON: u16 = 9;
const KIND_POLL_JOB: u16 = 10;
const KIND_PUSH_RESULT: u16 = 11;
const KIND_PUSH_DELTA: u16 = 12;
const KIND_QUERY: u16 = 13;
const KIND_R_SUBMITTED: u16 = 0x81;
const KIND_R_STATUS: u16 = 0x82;
const KIND_R_PROGRESS: u16 = 0x83;
const KIND_R_RESULT: u16 = 0x84;
const KIND_R_CANCELLED: u16 = 0x85;
const KIND_R_STATS: u16 = 0x86;
const KIND_R_SHUTDOWN: u16 = 0x87;
const KIND_R_BUSY: u16 = 0x88;
const KIND_R_ERROR: u16 = 0x89;
const KIND_R_OVERLOADED: u16 = 0x8A;
const KIND_R_REGISTERED: u16 = 0x8B;
const KIND_R_BEACON_ACK: u16 = 0x8C;
const KIND_R_ASSIGNMENT: u16 = 0x8D;
const KIND_R_NO_WORK: u16 = 0x8E;
const KIND_R_RESULT_ACK: u16 = 0x8F;
const KIND_R_QUERY_REPLY: u16 = 0x90;
const KIND_R_DELTA_ACK: u16 = 0x91;

/// Wire code for "no profiler, meaning the Oracle" in v4 frames.
const PROFILER_NONE: u8 = 255;

fn put_opt_profiler(out: &mut Vec<u8>, p: Option<ProfilerId>) {
    snap::put_u8(out, p.map_or(PROFILER_NONE, profiler_code));
}

fn get_opt_profiler(r: &mut SnapReader<'_>) -> Result<Option<ProfilerId>, SnapError> {
    match r.u8()? {
        PROFILER_NONE => Ok(None),
        c => profiler_from_code(c).map(Some),
    }
}

/// Signed units travel as their two's-complement bits — exact both ways.
fn put_i64(out: &mut Vec<u8>, v: i64) {
    #[allow(clippy::cast_sign_loss)]
    snap::put_u64(out, v as u64);
}

fn get_i64(r: &mut SnapReader<'_>) -> Result<i64, SnapError> {
    #[allow(clippy::cast_possible_wrap)]
    Ok(r.u64()? as i64)
}

fn put_granularity(out: &mut Vec<u8>, g: Granularity) {
    snap::put_u8(
        out,
        match g {
            Granularity::Instruction => 0,
            Granularity::BasicBlock => 1,
            Granularity::Function => 2,
        },
    );
}

fn get_granularity(r: &mut SnapReader<'_>) -> Result<Granularity, SnapError> {
    Ok(match r.u8()? {
        0 => Granularity::Instruction,
        1 => Granularity::BasicBlock,
        2 => Granularity::Function,
        _ => return Err(SnapError::Malformed("unknown granularity code")),
    })
}

fn put_entries(out: &mut Vec<u8>, entries: &[(u32, i64)]) {
    snap::put_len(out, entries.len());
    for &(sym, units) in entries {
        snap::put_u32(out, sym);
        put_i64(out, units);
    }
}

fn get_entries(r: &mut SnapReader<'_>) -> Result<Vec<(u32, i64)>, SnapError> {
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let sym = r.u32()?;
        let units = get_i64(r)?;
        entries.push((sym, units));
    }
    Ok(entries)
}

fn encode_delta_frame(out: &mut Vec<u8>, f: &DeltaFrame) {
    put_string(out, &f.bench);
    snap::put_u32(out, f.attempt);
    snap::put_u64(out, f.seq);
    put_granularity(out, f.granularity);
    snap::put_u32(out, f.num_symbols);
    snap::put_len(out, f.per_profiler.len());
    for (p, entries) in &f.per_profiler {
        snap::put_u8(out, profiler_code(*p));
        put_entries(out, entries);
    }
    put_entries(out, &f.oracle);
    snap::put_len(out, f.stack.len());
    for &units in &f.stack {
        put_i64(out, units);
    }
    snap::put_u64(out, f.cycles);
}

fn decode_delta_frame(r: &mut SnapReader<'_>) -> Result<DeltaFrame, SnapError> {
    let bench = get_string(r)?;
    let attempt = r.u32()?;
    let seq = r.u64()?;
    let granularity = get_granularity(r)?;
    let num_symbols = r.u32()?;
    let np = r.len()?;
    let mut per_profiler = Vec::with_capacity(np.min(64));
    for _ in 0..np {
        let p = profiler_from_code(r.u8()?)?;
        per_profiler.push((p, get_entries(r)?));
    }
    let oracle = get_entries(r)?;
    let ns = r.len()?;
    let mut stack = Vec::with_capacity(ns.min(64));
    for _ in 0..ns {
        stack.push(get_i64(r)?);
    }
    let cycles = r.u64()?;
    Ok(DeltaFrame {
        bench,
        attempt,
        seq,
        granularity,
        num_symbols,
        per_profiler,
        oracle,
        stack,
        cycles,
    })
}

fn encode_query_row(out: &mut Vec<u8>, row: &QueryRow) {
    put_string(out, &row.bench);
    put_opt_profiler(out, row.profiler);
    put_string(out, &row.label);
    snap::put_f64(out, row.value);
    snap::put_f64(out, row.share);
}

fn decode_query_row(r: &mut SnapReader<'_>) -> Result<QueryRow, SnapError> {
    Ok(QueryRow {
        bench: get_string(r)?,
        profiler: get_opt_profiler(r)?,
        label: get_string(r)?,
        value: r.f64()?,
        share: r.f64()?,
    })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    snap::put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut SnapReader<'_>) -> Result<String, SnapError> {
    let len = r.len()?;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed("string is not UTF-8"))
}

fn put_scale(out: &mut Vec<u8>, scale: SuiteScale) {
    snap::put_u8(
        out,
        match scale {
            SuiteScale::Test => 0,
            SuiteScale::Small => 1,
            SuiteScale::Full => 2,
        },
    );
}

fn get_scale(r: &mut SnapReader<'_>) -> Result<SuiteScale, SnapError> {
    Ok(match r.u8()? {
        0 => SuiteScale::Test,
        1 => SuiteScale::Small,
        2 => SuiteScale::Full,
        _ => return Err(SnapError::Malformed("unknown suite scale")),
    })
}

fn put_sampler(out: &mut Vec<u8>, s: SamplerConfig) {
    snap::put_u64(out, s.interval);
    snap::put_u8(
        out,
        match s.mode {
            SamplingMode::Periodic => 0,
            SamplingMode::Random => 1,
        },
    );
    snap::put_u64(out, s.seed);
}

fn get_sampler(r: &mut SnapReader<'_>) -> Result<SamplerConfig, SnapError> {
    let interval = r.u64()?;
    let mode = match r.u8()? {
        0 => SamplingMode::Periodic,
        1 => SamplingMode::Random,
        _ => return Err(SnapError::Malformed("unknown sampling mode")),
    };
    let seed = r.u64()?;
    Ok(SamplerConfig {
        interval,
        mode,
        seed,
    })
}

fn profiler_code(p: ProfilerId) -> u8 {
    match p {
        ProfilerId::Software => 0,
        ProfilerId::Dispatch => 1,
        ProfilerId::Lci => 2,
        ProfilerId::Nci => 3,
        ProfilerId::NciIlp => 4,
        ProfilerId::TipIlp => 5,
        ProfilerId::Tip => 6,
        ProfilerId::TipLastCommitDrain => 7,
    }
}

fn profiler_from_code(c: u8) -> Result<ProfilerId, SnapError> {
    Ok(match c {
        0 => ProfilerId::Software,
        1 => ProfilerId::Dispatch,
        2 => ProfilerId::Lci,
        3 => ProfilerId::Nci,
        4 => ProfilerId::NciIlp,
        5 => ProfilerId::TipIlp,
        6 => ProfilerId::Tip,
        7 => ProfilerId::TipLastCommitDrain,
        _ => return Err(SnapError::Malformed("unknown profiler code")),
    })
}

fn put_job_state(out: &mut Vec<u8>, state: JobState) {
    match state {
        JobState::Queued { ahead } => {
            snap::put_u8(out, 0);
            snap::put_u32(out, ahead);
        }
        JobState::Running { worker } => {
            snap::put_u8(out, 1);
            snap::put_u32(out, worker);
        }
        JobState::Done { ok, attempts } => {
            snap::put_u8(out, 2);
            snap::put_bool(out, ok);
            snap::put_u32(out, attempts);
        }
        JobState::Cancelled => snap::put_u8(out, 3),
    }
}

fn get_job_state(r: &mut SnapReader<'_>) -> Result<JobState, SnapError> {
    Ok(match r.u8()? {
        0 => JobState::Queued { ahead: r.u32()? },
        1 => JobState::Running { worker: r.u32()? },
        2 => JobState::Done {
            ok: r.bool()?,
            attempts: r.u32()?,
        },
        3 => JobState::Cancelled,
        _ => return Err(SnapError::Malformed("unknown job state tag")),
    })
}

fn encode_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    put_string(out, &spec.bench);
    put_scale(out, spec.scale);
    snap::put_u64(out, spec.seed);
    put_string(out, &spec.core);
    put_sampler(out, spec.sampler);
    snap::put_len(out, spec.profilers.len());
    for &p in &spec.profilers {
        snap::put_u8(out, profiler_code(p));
    }
    snap::put_u32(out, spec.max_attempts);
}

fn decode_spec(r: &mut SnapReader<'_>) -> Result<JobSpec, SnapError> {
    let bench = get_string(r)?;
    let scale = get_scale(r)?;
    let seed = r.u64()?;
    let core = get_string(r)?;
    let sampler = get_sampler(r)?;
    let n = r.len()?;
    let mut profilers = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        profilers.push(profiler_from_code(r.u8()?)?);
    }
    let max_attempts = r.u32()?;
    // `pgo` is a v5 tail field of the *containing* frame (Submit,
    // Assignment), decoded there; the spec encoding itself is frozen so the
    // tail-defaulted fields that follow it keep their positions.
    Ok(JobSpec {
        bench,
        scale,
        seed,
        core,
        sampler,
        profilers,
        max_attempts,
        pgo: false,
    })
}

fn encode_outcome(out: &mut Vec<u8>, o: &RemoteOutcome) {
    snap::put_bool(out, o.ok);
    snap::put_u32(out, o.attempts);
    put_string(out, &o.body);
    put_string(out, &o.error_line);
    snap::put_f64(out, o.wall_ms);
    snap::put_u32(out, o.worker);
    snap::put_u64(out, o.cycles);
    snap::put_u64(out, o.instructions);
    snap::put_f64(out, o.ipc);
}

fn decode_outcome(r: &mut SnapReader<'_>) -> Result<RemoteOutcome, SnapError> {
    Ok(RemoteOutcome {
        ok: r.bool()?,
        attempts: r.u32()?,
        body: get_string(r)?,
        error_line: get_string(r)?,
        wall_ms: r.f64()?,
        worker: r.u32()?,
        cycles: r.u64()?,
        instructions: r.u64()?,
        ipc: r.f64()?,
    })
}

impl Request {
    /// Encodes the request as `(frame kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Request::Submit { spec, req_id } => {
                encode_spec(&mut out, spec);
                snap::put_u64(&mut out, *req_id);
                snap::put_bool(&mut out, spec.pgo);
                KIND_SUBMIT
            }
            Request::Status { job } => {
                snap::put_u64(&mut out, *job);
                KIND_STATUS
            }
            Request::Watch { job, from_seq } => {
                snap::put_u64(&mut out, *job);
                snap::put_u64(&mut out, *from_seq);
                KIND_WATCH
            }
            Request::Result { job } => {
                snap::put_u64(&mut out, *job);
                KIND_RESULT
            }
            Request::Cancel { job } => {
                snap::put_u64(&mut out, *job);
                KIND_CANCEL
            }
            Request::Stats => {
                snap::put_u8(&mut out, 0);
                KIND_STATS
            }
            Request::Shutdown { drain } => {
                snap::put_bool(&mut out, *drain);
                KIND_SHUTDOWN
            }
            Request::Register { name, workers } => {
                put_string(&mut out, name);
                snap::put_u32(&mut out, *workers);
                KIND_REGISTER
            }
            Request::Beacon { daemon } => {
                snap::put_u64(&mut out, *daemon);
                KIND_BEACON
            }
            Request::PollJob { daemon } => {
                snap::put_u64(&mut out, *daemon);
                KIND_POLL_JOB
            }
            Request::PushResult {
                daemon,
                task,
                epoch,
                outcome,
            } => {
                snap::put_u64(&mut out, *daemon);
                snap::put_u64(&mut out, *task);
                snap::put_u64(&mut out, *epoch);
                encode_outcome(&mut out, outcome);
                KIND_PUSH_RESULT
            }
            Request::PushDelta { daemon, frame } => {
                snap::put_u64(&mut out, *daemon);
                encode_delta_frame(&mut out, frame);
                KIND_PUSH_DELTA
            }
            Request::Query {
                kind,
                bench,
                profiler,
                n,
            } => {
                snap::put_u8(&mut out, kind.code());
                put_string(&mut out, bench);
                put_opt_profiler(&mut out, *profiler);
                snap::put_u32(&mut out, *n);
                KIND_QUERY
            }
        };
        (kind, out)
    }

    /// Decodes a request from a frame's kind and payload.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] for an unknown kind, a truncated or
    /// overlong payload, or any field outside its domain. Never panics, on
    /// any input.
    pub fn decode(kind: u16, payload: &[u8]) -> Result<Self, TraceError> {
        let mut r = SnapReader::new(payload);
        let req = match kind {
            KIND_SUBMIT => {
                let mut spec = decode_spec(&mut r).map_err(snap_err)?;
                let req_id = tail_u64(&mut r).map_err(snap_err)?;
                spec.pgo = tail_bool(&mut r).map_err(snap_err)?;
                Request::Submit { spec, req_id }
            }
            KIND_STATUS => Request::Status {
                job: r.u64().map_err(snap_err)?,
            },
            KIND_WATCH => Request::Watch {
                job: r.u64().map_err(snap_err)?,
                from_seq: tail_u64(&mut r).map_err(snap_err)?,
            },
            KIND_RESULT => Request::Result {
                job: r.u64().map_err(snap_err)?,
            },
            KIND_CANCEL => Request::Cancel {
                job: r.u64().map_err(snap_err)?,
            },
            KIND_STATS => {
                let _ = r.u8().map_err(snap_err)?;
                Request::Stats
            }
            KIND_SHUTDOWN => Request::Shutdown {
                drain: r.bool().map_err(snap_err)?,
            },
            KIND_REGISTER => Request::Register {
                name: get_string(&mut r).map_err(snap_err)?,
                workers: r.u32().map_err(snap_err)?,
            },
            KIND_BEACON => Request::Beacon {
                daemon: r.u64().map_err(snap_err)?,
            },
            KIND_POLL_JOB => Request::PollJob {
                daemon: r.u64().map_err(snap_err)?,
            },
            KIND_PUSH_RESULT => Request::PushResult {
                daemon: r.u64().map_err(snap_err)?,
                task: r.u64().map_err(snap_err)?,
                epoch: r.u64().map_err(snap_err)?,
                outcome: decode_outcome(&mut r).map_err(snap_err)?,
            },
            KIND_PUSH_DELTA => Request::PushDelta {
                daemon: r.u64().map_err(snap_err)?,
                frame: decode_delta_frame(&mut r).map_err(snap_err)?,
            },
            KIND_QUERY => Request::Query {
                kind: QueryKind::from_code(r.u8().map_err(snap_err)?).map_err(snap_err)?,
                bench: get_string(&mut r).map_err(snap_err)?,
                profiler: get_opt_profiler(&mut r).map_err(snap_err)?,
                n: r.u32().map_err(snap_err)?,
            },
            _ => return Err(TraceError::Malformed("unknown request kind")),
        };
        finish(&r)?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as `(frame kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u16, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Response::Submitted { job } => {
                snap::put_u64(&mut out, *job);
                KIND_R_SUBMITTED
            }
            Response::Status { job, state } => {
                snap::put_u64(&mut out, *job);
                put_job_state(&mut out, *state);
                KIND_R_STATUS
            }
            Response::Progress {
                job,
                state,
                seq,
                cycles,
            } => {
                snap::put_u64(&mut out, *job);
                put_job_state(&mut out, *state);
                snap::put_u64(&mut out, *seq);
                snap::put_u64(&mut out, *cycles);
                KIND_R_PROGRESS
            }
            Response::ResultBody { job, body } => {
                snap::put_u64(&mut out, *job);
                put_string(&mut out, body);
                KIND_R_RESULT
            }
            Response::Cancelled { job, ok } => {
                snap::put_u64(&mut out, *job);
                snap::put_bool(&mut out, *ok);
                KIND_R_CANCELLED
            }
            Response::Stats(s) => {
                snap::put_u32(&mut out, s.queued);
                snap::put_u32(&mut out, s.running);
                snap::put_u32(&mut out, s.done);
                snap::put_u32(&mut out, s.failed);
                snap::put_u32(&mut out, s.cancelled);
                snap::put_u32(&mut out, s.workers);
                snap::put_u32(&mut out, s.connections);
                snap::put_f64(&mut out, s.mean_queue_wait_ms);
                snap::put_f64(&mut out, s.worker_utilization);
                snap::put_u64(&mut out, s.uptime_ms);
                snap::put_u32(&mut out, s.reassigned);
                snap::put_u32(&mut out, s.shed);
                snap::put_u32(&mut out, s.daemons);
                snap::put_u32(&mut out, s.stale);
                snap::put_u64(&mut out, s.deltas);
                snap::put_u32(&mut out, s.streamed);
                KIND_R_STATS
            }
            Response::ShuttingDown { drain } => {
                snap::put_bool(&mut out, *drain);
                KIND_R_SHUTDOWN
            }
            Response::Busy { active, limit } => {
                snap::put_u32(&mut out, *active);
                snap::put_u32(&mut out, *limit);
                KIND_R_BUSY
            }
            Response::Overloaded {
                retry_after_ms,
                queued,
            } => {
                snap::put_u32(&mut out, *retry_after_ms);
                snap::put_u32(&mut out, *queued);
                KIND_R_OVERLOADED
            }
            Response::Error { code, message } => {
                snap::put_u8(&mut out, code.code());
                put_string(&mut out, message);
                KIND_R_ERROR
            }
            Response::Registered { daemon, lease_ms } => {
                snap::put_u64(&mut out, *daemon);
                snap::put_u64(&mut out, *lease_ms);
                KIND_R_REGISTERED
            }
            Response::BeaconAck { tasks } => {
                snap::put_u32(&mut out, *tasks);
                KIND_R_BEACON_ACK
            }
            Response::Assignment { task, epoch, spec } => {
                snap::put_u64(&mut out, *task);
                snap::put_u64(&mut out, *epoch);
                encode_spec(&mut out, spec);
                snap::put_bool(&mut out, spec.pgo);
                KIND_R_ASSIGNMENT
            }
            Response::NoWork { draining } => {
                snap::put_bool(&mut out, *draining);
                KIND_R_NO_WORK
            }
            Response::ResultAck { accepted } => {
                snap::put_bool(&mut out, *accepted);
                KIND_R_RESULT_ACK
            }
            Response::QueryReply { rows } => {
                snap::put_len(&mut out, rows.len());
                for row in rows {
                    encode_query_row(&mut out, row);
                }
                KIND_R_QUERY_REPLY
            }
            Response::DeltaAck { accepted } => {
                snap::put_bool(&mut out, *accepted);
                KIND_R_DELTA_ACK
            }
        };
        (kind, out)
    }

    /// Decodes a response from a frame's kind and payload.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] for an unknown kind, a truncated or
    /// overlong payload, or any field outside its domain. Never panics, on
    /// any input.
    pub fn decode(kind: u16, payload: &[u8]) -> Result<Self, TraceError> {
        let mut r = SnapReader::new(payload);
        let resp = match kind {
            KIND_R_SUBMITTED => Response::Submitted {
                job: r.u64().map_err(snap_err)?,
            },
            KIND_R_STATUS => Response::Status {
                job: r.u64().map_err(snap_err)?,
                state: get_job_state(&mut r).map_err(snap_err)?,
            },
            KIND_R_PROGRESS => Response::Progress {
                job: r.u64().map_err(snap_err)?,
                state: get_job_state(&mut r).map_err(snap_err)?,
                seq: tail_u64(&mut r).map_err(snap_err)?,
                cycles: tail_u64(&mut r).map_err(snap_err)?,
            },
            KIND_R_RESULT => Response::ResultBody {
                job: r.u64().map_err(snap_err)?,
                body: get_string(&mut r).map_err(snap_err)?,
            },
            KIND_R_CANCELLED => Response::Cancelled {
                job: r.u64().map_err(snap_err)?,
                ok: r.bool().map_err(snap_err)?,
            },
            KIND_R_STATS => Response::Stats(ServerStats {
                queued: r.u32().map_err(snap_err)?,
                running: r.u32().map_err(snap_err)?,
                done: r.u32().map_err(snap_err)?,
                failed: r.u32().map_err(snap_err)?,
                cancelled: r.u32().map_err(snap_err)?,
                workers: r.u32().map_err(snap_err)?,
                connections: r.u32().map_err(snap_err)?,
                mean_queue_wait_ms: r.f64().map_err(snap_err)?,
                worker_utilization: r.f64().map_err(snap_err)?,
                uptime_ms: r.u64().map_err(snap_err)?,
                reassigned: tail_u32(&mut r).map_err(snap_err)?,
                shed: tail_u32(&mut r).map_err(snap_err)?,
                daemons: tail_u32(&mut r).map_err(snap_err)?,
                stale: tail_u32(&mut r).map_err(snap_err)?,
                deltas: tail_u64(&mut r).map_err(snap_err)?,
                streamed: tail_u32(&mut r).map_err(snap_err)?,
            }),
            KIND_R_SHUTDOWN => Response::ShuttingDown {
                drain: r.bool().map_err(snap_err)?,
            },
            KIND_R_BUSY => Response::Busy {
                active: r.u32().map_err(snap_err)?,
                limit: r.u32().map_err(snap_err)?,
            },
            KIND_R_OVERLOADED => Response::Overloaded {
                retry_after_ms: r.u32().map_err(snap_err)?,
                queued: r.u32().map_err(snap_err)?,
            },
            KIND_R_ERROR => Response::Error {
                code: ErrorCode::from_code(r.u8().map_err(snap_err)?)?,
                message: get_string(&mut r).map_err(snap_err)?,
            },
            KIND_R_REGISTERED => Response::Registered {
                daemon: r.u64().map_err(snap_err)?,
                lease_ms: r.u64().map_err(snap_err)?,
            },
            KIND_R_BEACON_ACK => Response::BeaconAck {
                tasks: r.u32().map_err(snap_err)?,
            },
            KIND_R_ASSIGNMENT => {
                let task = r.u64().map_err(snap_err)?;
                let epoch = r.u64().map_err(snap_err)?;
                let mut spec = decode_spec(&mut r).map_err(snap_err)?;
                spec.pgo = tail_bool(&mut r).map_err(snap_err)?;
                Response::Assignment { task, epoch, spec }
            }
            KIND_R_NO_WORK => Response::NoWork {
                draining: r.bool().map_err(snap_err)?,
            },
            KIND_R_RESULT_ACK => Response::ResultAck {
                accepted: r.bool().map_err(snap_err)?,
            },
            KIND_R_QUERY_REPLY => {
                let n = r.len().map_err(snap_err)?;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(decode_query_row(&mut r).map_err(snap_err)?);
                }
                Response::QueryReply { rows }
            }
            KIND_R_DELTA_ACK => Response::DeltaAck {
                accepted: r.bool().map_err(snap_err)?,
            },
            _ => return Err(TraceError::Malformed("unknown response kind")),
        };
        finish(&r)?;
        Ok(resp)
    }
}

/// Reads a version-2 tail field: absent (a v1 peer's frame ends here)
/// decodes as 0, present decodes normally. This is the whole back-compat
/// story — v2 only ever appends fields.
fn tail_u64(r: &mut SnapReader<'_>) -> Result<u64, SnapError> {
    if r.is_empty() {
        Ok(0)
    } else {
        r.u64()
    }
}

/// [`tail_u64`] for u32 tail fields (the `Stats` payload's v2 counters).
fn tail_u32(r: &mut SnapReader<'_>) -> Result<u32, SnapError> {
    if r.is_empty() {
        Ok(0)
    } else {
        r.u32()
    }
}

/// [`tail_u64`] for bool tail fields (the v5 `pgo` flag): absent is false.
fn tail_bool(r: &mut SnapReader<'_>) -> Result<bool, SnapError> {
    if r.is_empty() {
        Ok(false)
    } else {
        r.bool()
    }
}

fn snap_err(e: SnapError) -> TraceError {
    match e {
        SnapError::UnexpectedEof => TraceError::Malformed("payload ends mid-field"),
        SnapError::Malformed(what) => TraceError::Malformed(what),
    }
}

fn finish(r: &SnapReader<'_>) -> Result<(), TraceError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(TraceError::Malformed("trailing bytes after message"))
    }
}

/// Writes one frame: header (magic, version, kind, length, CRC) + payload.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Panics
///
/// If `payload` is empty or longer than [`MAX_PAYLOAD`] — protocol
/// encoders never produce either, so this is a caller bug, not wire input.
pub fn write_frame(w: &mut impl Write, kind: u16, payload: &[u8]) -> io::Result<()> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_PAYLOAD as usize,
        "frame payload must be 1..={MAX_PAYLOAD} bytes, got {}",
        payload.len()
    );
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&kind.to_le_bytes());
    #[allow(clippy::cast_possible_truncation)]
    let len = payload.len() as u32;
    header[8..12].copy_from_slice(&len.to_le_bytes());
    let crc = crc32_pair(&header[..12], payload);
    header[12..16].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); everything else is either a frame or a classified
/// protocol error.
///
/// # Errors
///
/// * [`TraceError::BadMagic`] — the stream is not TIPW.
/// * [`TraceError::UnsupportedVersion`] — TIPW from a future build.
/// * [`TraceError::BadLength`] — declared payload length 0 or over
///   [`MAX_PAYLOAD`]; the stream is still aligned after the header.
/// * [`TraceError::Corrupt`] — CRC mismatch over header + payload.
/// * [`TraceError::Truncated`] — the peer died mid-frame.
/// * [`TraceError::Io`] — transport failure (including read timeouts).
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u16, Vec<u8>)>, TraceError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_exact_or_eof(r, &mut header).map_err(TraceError::Io)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Truncated => {
            return Err(TraceError::Truncated {
                last_good_cycle: None,
            })
        }
    }
    if header[0..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[0..4]);
        return Err(TraceError::BadMagic(m));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let kind = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len == 0 || len > MAX_PAYLOAD {
        return Err(TraceError::BadLength {
            len,
            cap: MAX_PAYLOAD,
        });
    }
    let crc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload).map_err(TraceError::Io)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof | ReadOutcome::Truncated => {
            return Err(TraceError::Truncated {
                last_good_cycle: None,
            })
        }
    }
    if crc32_pair(&header[..12], &payload) != crc {
        return Err(TraceError::Corrupt { offset: 0 });
    }
    Ok(Some((kind, payload)))
}

/// Writes one encoded [`Request`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let (kind, payload) = req.encode();
    write_frame(w, kind, &payload)
}

/// Writes one encoded [`Response`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let (kind, payload) = resp.encode();
    write_frame(w, kind, &payload)
}

/// Reads and decodes one [`Request`]; `Ok(None)` is clean end-of-stream.
///
/// # Errors
///
/// Everything [`read_frame`] raises, plus [`TraceError::Malformed`] for an
/// undecodable payload.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, TraceError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((kind, payload)) => Request::decode(kind, &payload).map(Some),
    }
}

/// Reads and decodes one [`Response`]; `Ok(None)` is clean end-of-stream.
///
/// # Errors
///
/// Everything [`read_frame`] raises, plus [`TraceError::Malformed`] for an
/// undecodable payload.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, TraceError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((kind, payload)) => Response::decode(kind, &payload).map(Some),
    }
}
