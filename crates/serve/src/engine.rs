//! The daemon's job engine: a dynamic queue bridged into `tip-bench`'s
//! executor machinery with the deterministic committer preserved.
//!
//! The local executor ([`tip_bench::execute`]) fans a *fixed slice* of jobs
//! over workers; a server's queue grows while jobs run. This engine keeps
//! the parts that make local runs reproducible and swaps only the queue:
//!
//! * Workers claim jobs **FIFO** — the claimed set is always a contiguous
//!   prefix of submission order — and run each through the exact retry
//!   ladder of [`tip_bench::run_job`] (bounded reseeded attempts,
//!   per-attempt panic isolation).
//! * A single committer thread applies settled jobs in submission order
//!   through the shared campaign [`Ledger`], so `journal.txt`, every
//!   `<bench>.result`, and `failures.txt` are byte-identical to a local
//!   [`tip_bench::campaign`] run over the same job sequence — at any
//!   worker count, submitted locally or over the wire.
//! * **Drain** stops claiming, finishes in-flight jobs, and commits them;
//!   FIFO claiming means the journal then covers a clean prefix, so a
//!   restarted daemon with `resume` skips exactly the settled prefix and
//!   re-runs the rest — the kill-and-resume story of
//!   [`tip_bench::campaign`], lifted to a long-lived process.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::proto::{JobSpec, JobState, ServerStats};
use tip_bench::campaign::{CompletedBench, FailedBench};
use tip_bench::executor::{run_job, ExecSummary, Job, JobOutcome, Runner, SpecRunner};
use tip_bench::experiments::SuiteRun;
use tip_bench::ledger::{result_path, Ledger};
use tip_bench::run::MAX_CYCLES;
use tip_ooo::CoreConfig;
use tip_workloads::{benchmark, BENCHMARK_NAMES};

/// How the engine runs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Campaign directory: journal, result files, failure report, metrics.
    pub out_dir: PathBuf,
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Skip benchmarks the directory's journal already records as done.
    pub resume: bool,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The benchmark name is not in [`BENCHMARK_NAMES`].
    UnknownBench(String),
    /// The core preset name is not known.
    UnknownCore(String),
    /// The engine is draining and accepts no new work.
    Draining,
}

/// Internal lifecycle of one queue entry.
#[derive(Debug)]
enum Phase {
    /// Waiting for a worker (or, if the resume journal already covers it,
    /// waiting for the committer to acknowledge the skip).
    Queued {
        skip: bool,
    },
    Running {
        worker: usize,
    },
    /// Finished running; outcome parked for the committer.
    Settled,
    /// Committed to the ledger; result file on disk.
    Done {
        ok: bool,
        attempts: u32,
    },
    Cancelled,
}

struct Entry {
    job: Job,
    profilers: Vec<tip_core::ProfilerId>,
    phase: Phase,
    enqueued: Instant,
    outcome: Option<JobOutcome>,
}

struct State {
    entries: Vec<Entry>,
    next_claim: usize,
    next_commit: usize,
    draining: bool,
    shutdown: bool,
    /// Bench names the resume journal covers (skips) plus names settled in
    /// this run — consulted at submit time so a resubmitted suite skips
    /// exactly what a resumed local campaign would.
    done_names: HashSet<String>,
    busy: Duration,
    wait_sum: Duration,
    settled: u32,
    done: u32,
    failed: u32,
    cancelled: u32,
}

struct Inner {
    state: Mutex<State>,
    /// Workers sleep here for new claimable work.
    work: Condvar,
    /// Committer and watchers sleep here for any state change.
    changed: Condvar,
    workers: usize,
    started: Instant,
    out_dir: PathBuf,
}

/// The shared job engine. Cheap to clone; all clones drive one queue.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
    threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Engine {
    /// Starts the engine with the production [`SpecRunner`].
    #[must_use]
    pub fn start(config: &EngineConfig) -> Engine {
        Engine::start_with_runner(config, SpecRunner)
    }

    /// Starts worker threads and the committer with a caller-chosen runner
    /// (tests inject faults the same way the chaos campaign does).
    #[must_use]
    pub fn start_with_runner<R>(config: &EngineConfig, runner: R) -> Engine
    where
        R: Runner + Send + Clone + 'static,
    {
        let ledger = Ledger::open(Some(&config.out_dir), config.resume);
        let done_names: HashSet<String> = ledger.done_names().into_iter().collect();
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_claim: 0,
                next_commit: 0,
                draining: false,
                shutdown: false,
                done_names,
                busy: Duration::ZERO,
                wait_sum: Duration::ZERO,
                settled: 0,
                done: 0,
                failed: 0,
                cancelled: 0,
            }),
            work: Condvar::new(),
            changed: Condvar::new(),
            workers,
            started: Instant::now(),
            out_dir: config.out_dir.clone(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for worker in 0..workers {
            let inner = Arc::clone(&inner);
            let runner = runner.clone();
            threads.push(thread::spawn(move || worker_loop(&inner, worker, &runner)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(thread::spawn(move || committer_loop(&inner, ledger)));
        }
        Engine {
            inner,
            threads: Arc::new(Mutex::new(threads)),
        }
    }

    /// Enqueues a job, returning its 1-based id. A benchmark the resume
    /// journal (or this run) already settled is acknowledged as done
    /// without re-running — its artifacts are already on disk.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for an unknown benchmark or core preset, or when
    /// the engine is draining.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, SubmitError> {
        // Resolve outside the lock: program generation is pure CPU.
        let Some(&name) = BENCHMARK_NAMES.iter().find(|&&n| n == spec.bench) else {
            return Err(SubmitError::UnknownBench(spec.bench.clone()));
        };
        let core = resolve_core(&spec.core)?;
        let bench = benchmark(name, spec.scale);
        let job = Job {
            bench,
            seed: spec.seed,
            core,
            sampler: spec.sampler,
            profilers: spec.profilers.clone(),
            checkpoint: None,
            max_attempts: spec.max_attempts.max(1),
            max_cycles: MAX_CYCLES,
        };
        let mut state = self.inner.state.lock().expect("engine lock");
        if state.draining || state.shutdown {
            return Err(SubmitError::Draining);
        }
        let skip = state.done_names.contains(name);
        state.entries.push(Entry {
            job,
            profilers: spec.profilers.clone(),
            phase: Phase::Queued { skip },
            enqueued: Instant::now(),
            outcome: None,
        });
        let id = state.entries.len() as u64;
        drop(state);
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        Ok(id)
    }

    /// The job's current externally visible state, or `None` for an
    /// unknown id.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobState> {
        let state = self.inner.state.lock().expect("engine lock");
        state.job_state(job)
    }

    /// Blocks until the job's state differs from `last` (or the timeout
    /// elapses, returning the unchanged state). `None` for an unknown id.
    #[must_use]
    pub fn wait_change(&self, job: u64, last: JobState, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("engine lock");
        loop {
            let now = state.job_state(job)?;
            if now != last {
                return Some(now);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(now);
            }
            state = self
                .inner
                .changed
                .wait_timeout(state, left)
                .expect("engine lock")
                .0;
        }
    }

    /// Cancels a still-queued job. Returns `false` if the job is unknown,
    /// already claimed, or already settled.
    #[must_use]
    pub fn cancel(&self, job: u64) -> bool {
        let mut state = self.inner.state.lock().expect("engine lock");
        let Some(index) = job_index(&state, job) else {
            return false;
        };
        // A resume-skip is already settled work — its artifacts exist —
        // so only a genuinely queued entry can be cancelled.
        if index < state.next_claim
            || !matches!(state.entries[index].phase, Phase::Queued { skip: false })
        {
            return false;
        }
        state.entries[index].phase = Phase::Cancelled;
        state.cancelled += 1;
        drop(state);
        // The committer may be parked waiting for exactly this index.
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        true
    }

    /// Reads a finished job's result file back.
    ///
    /// # Errors
    ///
    /// A one-line reason when the job is unknown, not finished, cancelled,
    /// or its file cannot be read.
    pub fn result(&self, job: u64) -> Result<String, String> {
        let bench = {
            let state = self.inner.state.lock().expect("engine lock");
            let Some(index) = job_index(&state, job) else {
                return Err(format!("unknown job {job}"));
            };
            match state.entries[index].phase {
                Phase::Done { .. } => state.entries[index].job.bench.name.to_owned(),
                Phase::Cancelled => return Err(format!("job {job} was cancelled")),
                _ => return Err(format!("job {job} has not finished")),
            }
        };
        std::fs::read_to_string(result_path(&self.inner.out_dir, &bench))
            .map_err(|e| format!("result file unreadable: {e}"))
    }

    /// A snapshot of the engine's counters (`connections` is left 0 for
    /// the server layer to fill in).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let state = self.inner.state.lock().expect("engine lock");
        let queued = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count() as u32;
        let running = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Running { .. }))
            .count() as u32;
        let uptime = self.inner.started.elapsed();
        let worker_seconds = uptime.as_secs_f64() * self.inner.workers as f64;
        ServerStats {
            queued,
            running,
            done: state.done,
            failed: state.failed,
            cancelled: state.cancelled,
            workers: self.inner.workers as u32,
            connections: 0,
            mean_queue_wait_ms: if state.settled > 0 {
                state.wait_sum.as_secs_f64() * 1e3 / f64::from(state.settled)
            } else {
                0.0
            },
            worker_utilization: if worker_seconds > 0.0 {
                (state.busy.as_secs_f64() / worker_seconds).min(1.0)
            } else {
                0.0
            },
            uptime_ms: uptime.as_millis() as u64,
        }
    }

    /// Stops claiming new jobs; in-flight jobs keep running. Queued jobs
    /// stay queued (and unjournaled) — a restarted daemon re-runs them.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("engine lock");
        state.draining = true;
        drop(state);
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
    }

    /// Drains, waits for in-flight jobs to settle and commit, joins every
    /// thread, and writes the final `metrics.txt`. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("engine lock");
            state.draining = true;
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().expect("engine threads"));
        for t in threads {
            let _ = t.join();
        }
    }
}

impl State {
    fn job_state(&self, job: u64) -> Option<JobState> {
        let index = job_index(self, job)?;
        Some(match self.entries[index].phase {
            Phase::Queued { .. } => JobState::Queued {
                ahead: self.entries[self.next_claim.min(index)..index]
                    .iter()
                    .filter(|e| matches!(e.phase, Phase::Queued { .. }))
                    .count() as u32,
            },
            // Settled-but-uncommitted reports as still running: `Done` must
            // imply the result file is on disk.
            Phase::Running { worker } => JobState::Running {
                worker: worker as u32,
            },
            Phase::Settled => JobState::Running { worker: 0 },
            Phase::Done { ok, attempts } => JobState::Done { ok, attempts },
            Phase::Cancelled => JobState::Cancelled,
        })
    }
}

fn job_index(state: &State, job: u64) -> Option<usize> {
    let index = usize::try_from(job.checked_sub(1)?).ok()?;
    (index < state.entries.len()).then_some(index)
}

fn resolve_core(preset: &str) -> Result<CoreConfig, SubmitError> {
    match preset {
        "" | "default" | "boom-4w" => Ok(CoreConfig::default()),
        other => Err(SubmitError::UnknownCore(other.to_owned())),
    }
}

fn worker_loop<R: Runner>(inner: &Inner, worker: usize, runner: &R) {
    loop {
        let (index, job, wait) = {
            let mut state = inner.state.lock().expect("engine lock");
            loop {
                // Skip entries that will never need a worker: cancelled,
                // resume-skips (the committer acknowledges those — by the
                // time we look, it may already have marked them `Done`).
                while state.next_claim < state.entries.len()
                    && !matches!(
                        state.entries[state.next_claim].phase,
                        Phase::Queued { skip: false }
                    )
                {
                    state.next_claim += 1;
                    inner.changed.notify_all();
                }
                if state.next_claim < state.entries.len() && !state.draining {
                    break;
                }
                if state.draining || state.shutdown {
                    return;
                }
                state = inner.work.wait(state).expect("engine lock");
            }
            let index = state.next_claim;
            state.next_claim += 1;
            let wait = state.entries[index].enqueued.elapsed();
            state.entries[index].phase = Phase::Running { worker };
            let job = state.entries[index].job.clone();
            inner.changed.notify_all();
            (index, job, wait)
        };
        let outcome = run_job(index, &job, runner, wait, worker);
        let mut state = inner.state.lock().expect("engine lock");
        state.busy += outcome.metrics.wall;
        state.wait_sum += outcome.metrics.queue_wait;
        state.settled += 1;
        state.entries[index].outcome = Some(outcome);
        state.entries[index].phase = Phase::Settled;
        drop(state);
        inner.changed.notify_all();
    }
}

/// Work the committer performs outside the lock.
enum CommitStep {
    Skip,
    Cancelled,
    Outcome(Box<JobOutcome>),
    Exit,
}

fn committer_loop(inner: &Inner, mut ledger: Ledger) {
    loop {
        let (step, index) = {
            let mut state = inner.state.lock().expect("engine lock");
            loop {
                let i = state.next_commit;
                if i < state.entries.len() {
                    match state.entries[i].phase {
                        Phase::Settled => {
                            let outcome = state.entries[i].outcome.take().expect("settled outcome");
                            break (CommitStep::Outcome(Box::new(outcome)), i);
                        }
                        Phase::Cancelled => break (CommitStep::Cancelled, i),
                        Phase::Queued { skip: true } => break (CommitStep::Skip, i),
                        _ => {}
                    }
                }
                // Exit once nothing ahead can ever settle: shutdown was
                // requested, no worker holds a claim that is still
                // uncommitted, and nothing queued will be claimed
                // (draining implies workers have stopped).
                if state.shutdown && state.next_commit >= state.next_claim {
                    break (CommitStep::Exit, i);
                }
                state = inner.changed.wait(state).expect("engine lock");
            }
        };
        match step {
            CommitStep::Exit => break,
            CommitStep::Skip => {
                // The resume journal already records this benchmark: count
                // it like campaign's skip path so a converging failures.txt
                // reports the same completed total.
                ledger.note_skipped();
                let mut state = inner.state.lock().expect("engine lock");
                state.entries[index].phase = Phase::Done {
                    ok: true,
                    attempts: 0,
                };
                state.done += 1;
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Cancelled => {
                let mut state = inner.state.lock().expect("engine lock");
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Outcome(outcome) => {
                let (name, profilers, job_bench, attempts) = {
                    let state = inner.state.lock().expect("engine lock");
                    let e = &state.entries[index];
                    (
                        e.job.bench.name,
                        e.profilers.clone(),
                        e.job.bench.clone(),
                        outcome.attempts,
                    )
                };
                let ok = outcome.result.is_ok();
                match outcome.result {
                    Ok(run) => {
                        let completed = CompletedBench {
                            run: SuiteRun {
                                bench: job_bench,
                                run,
                            },
                            attempts,
                        };
                        ledger.commit_completed(&completed, outcome.metrics, &profilers);
                    }
                    Err(error) => {
                        let failed = FailedBench {
                            name,
                            attempts,
                            error,
                        };
                        ledger.commit_failed(&failed, outcome.metrics);
                    }
                }
                let mut state = inner.state.lock().expect("engine lock");
                state.entries[index].phase = Phase::Done { ok, attempts };
                state.done_names.insert(name.to_owned());
                if ok {
                    state.done += 1;
                } else {
                    state.failed += 1;
                }
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
        }
    }
    // Final act: metrics.txt, the one host-timing artifact.
    ledger.finish(ExecSummary {
        workers: inner.workers,
        wall: inner.started.elapsed(),
    });
}
