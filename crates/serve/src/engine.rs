//! The daemon's job engine: a dynamic queue bridged into `tip-bench`'s
//! executor machinery with the deterministic committer preserved — now
//! fault-tolerant on one host, the on-ramp to multi-daemon sharding.
//!
//! The local executor ([`tip_bench::execute`]) fans a *fixed slice* of jobs
//! over workers; a server's queue grows while jobs run. This engine keeps
//! the parts that make local runs reproducible and swaps only the queue:
//!
//! * Workers claim jobs **FIFO** — the claimed set is always a contiguous
//!   prefix of submission order, plus any reassigned jobs — and run each
//!   through the exact retry ladder of [`tip_bench::run_job`] (bounded
//!   reseeded attempts, per-attempt panic isolation).
//! * A single committer thread applies settled jobs in submission order
//!   through the shared campaign [`Ledger`], so `journal.txt`, every
//!   `<bench>.result`, and `failures.txt` are byte-identical to a local
//!   [`tip_bench::campaign`] run over the same job sequence — at any
//!   worker count, submitted locally or over the wire.
//! * **Drain** stops claiming, finishes in-flight jobs, and commits them;
//!   FIFO claiming means the journal then covers a clean prefix, so a
//!   restarted daemon with `resume` skips exactly the settled prefix and
//!   re-runs the rest — the kill-and-resume story of
//!   [`tip_bench::campaign`], lifted to a long-lived process.
//!
//! # Leases, heartbeats, and the reaper
//!
//! Every claimed job carries a **lease**: a deadline the worker must beat
//! by finishing the job or ticking its [`Heartbeat`] beacon
//! ([`tip_bench::run_job_beating`] ticks at every attempt boundary;
//! cooperative runners tick mid-attempt through `RunCtx::heartbeat`). A
//! **reaper** thread scans running jobs: a beating worker gets its lease
//! extended; a silent one past its deadline is declared dead, the job's
//! **epoch** is bumped, and the job is requeued for reassignment to a
//! fresh worker. If the presumed-dead worker later comes back with a
//! result, the epoch mismatch marks it stale and it is discarded — the
//! committed result always comes from exactly one assignment, so the
//! deterministic artifacts are identical to a fault-free run (simulations
//! are seed-deterministic, and attempt accounting restarts per
//! assignment). A job the committer has already settled through the ledger
//! is in a terminal phase and can never be requeued — the same
//! "resume skips the settled prefix" semantics the journal provides across
//! daemon restarts, enforced within one daemon lifetime by the phase
//! machine.
//!
//! # Progress history and watch resumption
//!
//! Every externally visible state transition of a job is appended to a
//! per-job **history** with a dense sequence number. `Watch{from_seq}`
//! replays history from any point and then streams live, so a client whose
//! watch connection dropped reconnects and resumes exactly where it left
//! off — no gaps, no duplicates.
//!
//! # Idempotent submission
//!
//! A submit may carry a nonzero request id; the engine keeps a dedup table
//! (`req_id → job id`) so a client that timed out waiting for the
//! `Submitted` reply can resubmit without double-enqueueing.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::proto::{JobSpec, JobState, ServerStats};
use tip_bench::campaign::{CompletedBench, FailedBench};
use tip_bench::executor::{
    run_job_streaming, ExecSummary, Heartbeat, Job, JobOutcome, Runner, SpecRunner,
};
use tip_bench::experiments::SuiteRun;
use tip_bench::ledger::{result_path, Ledger};
use tip_bench::live::{DeltaSink, LiveAggregate};
use tip_bench::run::MAX_CYCLES;
use tip_isa::{Granularity, SymbolId};
use tip_ooo::CoreConfig;
use tip_workloads::{benchmark, BENCHMARK_NAMES};

/// Default job lease: generous enough that a full-scale benchmark attempt
/// (which beats only at attempt boundaries) never trips it on a healthy
/// host, short enough that a genuinely wedged worker is reaped within
/// operational patience.
pub const DEFAULT_LEASE: Duration = Duration::from_secs(300);

/// How the engine runs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Campaign directory: journal, result files, failure report, metrics.
    pub out_dir: PathBuf,
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Skip benchmarks the directory's journal already records as done.
    pub resume: bool,
    /// Job lease: a claimed job whose worker neither finishes nor
    /// heartbeats within this window is reassigned to a fresh worker.
    pub lease: Duration,
    /// Live streaming aggregate the workers flush profile deltas into;
    /// `None` creates a private one (queries just see an engine-local
    /// view). Streaming is observational either way — artifacts are
    /// byte-identical with any choice here.
    pub live: Option<Arc<LiveAggregate>>,
}

impl EngineConfig {
    /// A config with production defaults: 1 worker, fresh (no resume),
    /// [`DEFAULT_LEASE`].
    #[must_use]
    pub fn new(out_dir: PathBuf) -> Self {
        EngineConfig {
            out_dir,
            workers: 1,
            resume: false,
            lease: DEFAULT_LEASE,
            live: None,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The benchmark name is not in [`BENCHMARK_NAMES`].
    UnknownBench(String),
    /// The core preset name is not known.
    UnknownCore(String),
    /// The engine is draining and accepts no new work.
    Draining,
}

/// A running assignment's liveness record.
#[derive(Debug)]
struct LeaseState {
    /// When the assignment is declared dead unless the beacon beats first.
    deadline: Instant,
    /// The worker's beacon (shared with `run_job_beating`).
    beacon: Heartbeat,
    /// Beats observed at the last reaper scan; advancement extends the
    /// lease.
    beats_seen: u64,
}

/// Internal lifecycle of one queue entry.
#[derive(Debug)]
enum Phase {
    /// Waiting for a worker (or, if the resume journal already covers it,
    /// waiting for the committer to acknowledge the skip).
    Queued {
        skip: bool,
    },
    Running {
        worker: usize,
    },
    /// Finished running; outcome parked for the committer.
    Settled,
    /// Committed to the ledger; result file on disk.
    Done {
        ok: bool,
        attempts: u32,
    },
    Cancelled,
}

struct Entry {
    job: Job,
    profilers: Vec<tip_core::ProfilerId>,
    phase: Phase,
    enqueued: Instant,
    outcome: Option<JobOutcome>,
    /// Bumped every time the job is reassigned; a worker returning with a
    /// stale epoch had its lease expire and its result is discarded.
    epoch: u32,
    /// Times a worker claimed this job (lease-aware attempt accounting —
    /// lands in `metrics.txt` as `assignments=`).
    assignments: u32,
    /// The current assignment's lease, while `Running`.
    lease: Option<LeaseState>,
    /// Every externally visible state this job has passed through, in
    /// order; the index is the `Watch` stream's sequence number.
    history: Vec<JobState>,
}

struct State {
    entries: Vec<Entry>,
    next_claim: usize,
    /// Jobs whose lease expired, awaiting reassignment; claimed before the
    /// FIFO prefix so a reassigned job does not wait behind the queue it
    /// already waited in once.
    requeued: VecDeque<usize>,
    next_commit: usize,
    draining: bool,
    shutdown: bool,
    /// Worker threads still alive; the committer can only give up on an
    /// uncommittable entry once this reaches zero under shutdown.
    live_workers: usize,
    /// Bench names the resume journal covers (skips) plus names settled in
    /// this run — consulted at submit time so a resubmitted suite skips
    /// exactly what a resumed local campaign would.
    done_names: HashSet<String>,
    /// Idempotent-submit dedup: request id → job id.
    dedup: HashMap<u64, u64>,
    busy: Duration,
    wait_sum: Duration,
    settled: u32,
    done: u32,
    failed: u32,
    cancelled: u32,
    /// Lease expiries that requeued a job.
    reassigned: u32,
    /// Results discarded because their assignment's lease had expired.
    stale_results: u32,
}

struct Inner {
    state: Mutex<State>,
    /// Workers sleep here for new claimable work.
    work: Condvar,
    /// Committer, reaper, and watchers sleep here for any state change.
    changed: Condvar,
    workers: usize,
    lease: Duration,
    started: Instant,
    out_dir: PathBuf,
    /// The streaming aggregate the workers' delta flushes land in.
    live: Arc<LiveAggregate>,
}

/// The shared job engine. Cheap to clone; all clones drive one queue.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
    threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Engine {
    /// Starts the engine with the production [`SpecRunner`].
    #[must_use]
    pub fn start(config: &EngineConfig) -> Engine {
        Engine::start_with_runner(config, SpecRunner)
    }

    /// Starts worker threads, the committer, and the lease reaper with a
    /// caller-chosen runner (tests inject faults the same way the chaos
    /// campaign does).
    #[must_use]
    pub fn start_with_runner<R>(config: &EngineConfig, runner: R) -> Engine
    where
        R: Runner + Send + Clone + 'static,
    {
        let ledger = Ledger::open(Some(&config.out_dir), config.resume);
        let done_names: HashSet<String> = ledger.done_names().into_iter().collect();
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_claim: 0,
                requeued: VecDeque::new(),
                next_commit: 0,
                draining: false,
                shutdown: false,
                live_workers: workers,
                done_names,
                dedup: HashMap::new(),
                busy: Duration::ZERO,
                wait_sum: Duration::ZERO,
                settled: 0,
                done: 0,
                failed: 0,
                cancelled: 0,
                reassigned: 0,
                stale_results: 0,
            }),
            work: Condvar::new(),
            changed: Condvar::new(),
            workers,
            lease: config.lease.max(Duration::from_millis(1)),
            started: Instant::now(),
            out_dir: config.out_dir.clone(),
            live: config.live.clone().unwrap_or_default(),
        });
        let mut threads = Vec::with_capacity(workers + 2);
        for worker in 0..workers {
            let inner = Arc::clone(&inner);
            let runner = runner.clone();
            threads.push(thread::spawn(move || {
                let watch = WorkerDeathWatch {
                    inner: Arc::clone(&inner),
                };
                worker_loop(&inner, worker, &runner);
                std::mem::forget(watch);
            }));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(thread::spawn(move || committer_loop(&inner, ledger)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(thread::spawn(move || reaper_loop(&inner)));
        }
        Engine {
            inner,
            threads: Arc::new(Mutex::new(threads)),
        }
    }

    /// Enqueues a job, returning its 1-based id. A benchmark the resume
    /// journal (or this run) already settled is acknowledged as done
    /// without re-running — its artifacts are already on disk.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for an unknown benchmark or core preset, or when
    /// the engine is draining.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, SubmitError> {
        self.submit_deduped(spec, 0)
    }

    /// [`Self::submit`] with an idempotency key: a repeated submit carrying
    /// the same nonzero `req_id` returns the originally assigned job id
    /// instead of enqueueing a second copy — the server-side half of
    /// "resubmit on timeout without double-running".
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for an unknown benchmark or core preset, or when
    /// the engine is draining.
    pub fn submit_deduped(&self, spec: &JobSpec, req_id: u64) -> Result<u64, SubmitError> {
        // Resolve outside the lock: program generation is pure CPU.
        let Some(&name) = BENCHMARK_NAMES.iter().find(|&&n| n == spec.bench) else {
            return Err(SubmitError::UnknownBench(spec.bench.clone()));
        };
        let core = resolve_core(&spec.core)?;
        let bench = benchmark(name, spec.scale);
        let job = Job {
            bench,
            seed: spec.seed,
            core,
            sampler: spec.sampler,
            profilers: spec.profilers.clone(),
            checkpoint: None,
            max_attempts: spec.max_attempts.max(1),
            max_cycles: MAX_CYCLES,
            pgo: spec.pgo,
        };
        let mut state = self.inner.state.lock().expect("engine lock");
        if req_id != 0 {
            if let Some(&id) = state.dedup.get(&req_id) {
                return Ok(id);
            }
        }
        if state.draining || state.shutdown {
            return Err(SubmitError::Draining);
        }
        let skip = state.done_names.contains(name);
        let ahead = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count() as u32;
        state.entries.push(Entry {
            job,
            profilers: spec.profilers.clone(),
            phase: Phase::Queued { skip },
            enqueued: Instant::now(),
            outcome: None,
            epoch: 0,
            assignments: 0,
            lease: None,
            history: vec![JobState::Queued { ahead }],
        });
        let id = state.entries.len() as u64;
        if req_id != 0 {
            state.dedup.insert(req_id, id);
        }
        drop(state);
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        Ok(id)
    }

    /// The job's current externally visible state, or `None` for an
    /// unknown id.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobState> {
        let state = self.inner.state.lock().expect("engine lock");
        state.job_state(job)
    }

    /// The benchmark name a job runs, for live-view lookups. `None` for an
    /// unknown id.
    #[must_use]
    pub fn bench_of(&self, job: u64) -> Option<String> {
        let state = self.inner.state.lock().expect("engine lock");
        let index = job_index(&state, job)?;
        Some(state.entries[index].job.bench.name.to_owned())
    }

    /// The job's progress history from sequence number `from_seq` on —
    /// empty if nothing new yet. `None` for an unknown id.
    #[must_use]
    pub fn history_from(&self, job: u64, from_seq: u64) -> Option<Vec<(u64, JobState)>> {
        let state = self.inner.state.lock().expect("engine lock");
        let index = job_index(&state, job)?;
        Some(history_tail(&state.entries[index], from_seq))
    }

    /// Blocks until the job's history grows past `from_seq` (or the
    /// timeout elapses, returning whatever is there — possibly empty).
    /// `None` for an unknown id.
    #[must_use]
    pub fn wait_history(
        &self,
        job: u64,
        from_seq: u64,
        timeout: Duration,
    ) -> Option<Vec<(u64, JobState)>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("engine lock");
        let index = job_index(&state, job)?;
        loop {
            let tail = history_tail(&state.entries[index], from_seq);
            if !tail.is_empty() {
                return Some(tail);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(tail);
            }
            state = self
                .inner
                .changed
                .wait_timeout(state, left)
                .expect("engine lock")
                .0;
        }
    }

    /// Jobs waiting in the queue right now — the figure the server's
    /// load-shedding watermark compares against.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        let state = self.inner.state.lock().expect("engine lock");
        state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count()
    }

    /// Cancels a still-queued job. Returns `false` if the job is unknown,
    /// already claimed (including a reassigned one), or already settled.
    #[must_use]
    pub fn cancel(&self, job: u64) -> bool {
        let mut state = self.inner.state.lock().expect("engine lock");
        let Some(index) = job_index(&state, job) else {
            return false;
        };
        // A resume-skip is already settled work — its artifacts exist —
        // so only a genuinely queued entry can be cancelled. An index below
        // `next_claim` has been claimed at least once (a requeued job is
        // considered claimed: a worker may still be finishing it).
        if index < state.next_claim
            || !matches!(state.entries[index].phase, Phase::Queued { skip: false })
        {
            return false;
        }
        state.entries[index].phase = Phase::Cancelled;
        state.entries[index].history.push(JobState::Cancelled);
        state.cancelled += 1;
        drop(state);
        // The committer may be parked waiting for exactly this index.
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        true
    }

    /// Reads a finished job's result file back.
    ///
    /// # Errors
    ///
    /// A one-line reason when the job is unknown, not finished, cancelled,
    /// or its file cannot be read.
    pub fn result(&self, job: u64) -> Result<String, String> {
        let bench = {
            let state = self.inner.state.lock().expect("engine lock");
            let Some(index) = job_index(&state, job) else {
                return Err(format!("unknown job {job}"));
            };
            match state.entries[index].phase {
                Phase::Done { .. } => state.entries[index].job.bench.name.to_owned(),
                Phase::Cancelled => return Err(format!("job {job} was cancelled")),
                _ => return Err(format!("job {job} has not finished")),
            }
        };
        std::fs::read_to_string(result_path(&self.inner.out_dir, &bench))
            .map_err(|e| format!("result file unreadable: {e}"))
    }

    /// A snapshot of the engine's counters (`connections` and `shed` are
    /// left 0 for the server layer to fill in).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let state = self.inner.state.lock().expect("engine lock");
        let queued = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count() as u32;
        let running = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Running { .. }))
            .count() as u32;
        let uptime = self.inner.started.elapsed();
        let worker_seconds = uptime.as_secs_f64() * self.inner.workers as f64;
        ServerStats {
            queued,
            running,
            done: state.done,
            failed: state.failed,
            cancelled: state.cancelled,
            workers: self.inner.workers as u32,
            connections: 0,
            mean_queue_wait_ms: if state.settled > 0 {
                state.wait_sum.as_secs_f64() * 1e3 / f64::from(state.settled)
            } else {
                0.0
            },
            worker_utilization: if worker_seconds > 0.0 {
                (state.busy.as_secs_f64() / worker_seconds).min(1.0)
            } else {
                0.0
            },
            uptime_ms: uptime.as_millis() as u64,
            reassigned: state.reassigned,
            shed: 0,
            daemons: 0,
            stale: state.stale_results,
            deltas: 0,
            streamed: 0,
        }
    }

    /// The engine's live streaming aggregate (the one `config.live` named,
    /// or the engine's private one).
    #[must_use]
    pub fn live(&self) -> Arc<LiveAggregate> {
        Arc::clone(&self.inner.live)
    }

    /// Human-readable names for `syms` of `bench` at granularity `g`,
    /// resolved from the submitted job's generated program. `None` until a
    /// job for that benchmark has been submitted.
    #[must_use]
    pub fn symbol_names(&self, bench: &str, g: Granularity, syms: &[u32]) -> Option<Vec<String>> {
        let state = self.inner.state.lock().expect("engine lock");
        let entry = state.entries.iter().find(|e| e.job.bench.name == bench)?;
        let n = entry.job.bench.program.num_symbols(g) as u32;
        Some(
            syms.iter()
                .map(|&s| {
                    if s < n {
                        entry.job.bench.program.symbol_name(g, SymbolId(s))
                    } else {
                        format!("sym{s}")
                    }
                })
                .collect(),
        )
    }

    /// Results discarded because the worker's lease had already expired
    /// and the job was reassigned (test observability).
    #[must_use]
    pub fn stale_results(&self) -> u32 {
        self.inner.state.lock().expect("engine lock").stale_results
    }

    /// Stops claiming new jobs; in-flight jobs keep running. Queued jobs
    /// stay queued (and unjournaled) — a restarted daemon re-runs them.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("engine lock");
        state.draining = true;
        drop(state);
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
    }

    /// Drains, waits for in-flight jobs to settle and commit, joins every
    /// thread, and writes the final `metrics.txt`. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("engine lock");
            state.draining = true;
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().expect("engine threads"));
        for t in threads {
            let _ = t.join();
        }
    }
}

impl State {
    fn job_state(&self, job: u64) -> Option<JobState> {
        let index = job_index(self, job)?;
        Some(match self.entries[index].phase {
            Phase::Queued { .. } => JobState::Queued {
                ahead: self.entries[self.next_claim.min(index)..index]
                    .iter()
                    .filter(|e| matches!(e.phase, Phase::Queued { .. }))
                    .count() as u32,
            },
            // Settled-but-uncommitted reports as still running: `Done` must
            // imply the result file is on disk.
            Phase::Running { worker } => JobState::Running {
                worker: worker as u32,
            },
            Phase::Settled => JobState::Running { worker: 0 },
            Phase::Done { ok, attempts } => JobState::Done { ok, attempts },
            Phase::Cancelled => JobState::Cancelled,
        })
    }
}

fn history_tail(entry: &Entry, from_seq: u64) -> Vec<(u64, JobState)> {
    let start = usize::try_from(from_seq).unwrap_or(usize::MAX);
    entry
        .history
        .iter()
        .enumerate()
        .skip(start)
        .map(|(i, &s)| (i as u64, s))
        .collect()
}

fn job_index(state: &State, job: u64) -> Option<usize> {
    let index = usize::try_from(job.checked_sub(1)?).ok()?;
    (index < state.entries.len()).then_some(index)
}

fn resolve_core(preset: &str) -> Result<CoreConfig, SubmitError> {
    match preset {
        "" | "default" | "boom-4w" => Ok(CoreConfig::default()),
        other => Err(SubmitError::UnknownCore(other.to_owned())),
    }
}

/// Unwind guard for worker threads: a panic that escapes the per-attempt
/// isolation (a poisoned payload, a bug in engine code) must cost one
/// worker, not the campaign. The dying thread's claimed job keeps a silent
/// beacon, so the reaper requeues it; this guard keeps `live_workers`
/// honest so drain/shutdown still terminate. Normal worker exit already
/// decrements the counter, so the loop `forget`s the guard on return.
struct WorkerDeathWatch {
    inner: Arc<Inner>,
}

impl Drop for WorkerDeathWatch {
    fn drop(&mut self) {
        // Reachable only by unwinding out of `worker_loop`. The lock may be
        // poisoned by the same panic; the state itself is still consistent
        // (every critical section leaves it so), so recover the guard.
        let mut state = match self.inner.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.live_workers -= 1;
        drop(state);
        self.inner.work.notify_all();
        self.inner.changed.notify_all();
    }
}

fn worker_loop<R: Runner>(inner: &Arc<Inner>, worker: usize, runner: &R) {
    loop {
        let (index, job, wait, epoch, beacon) = {
            let mut state = inner.state.lock().expect("engine lock");
            let index = loop {
                // Reassigned jobs first: they already waited in the FIFO
                // queue once, and their watchers are stalled.
                if let Some(index) = state.requeued.pop_front() {
                    break index;
                }
                // Skip entries that will never need a worker: cancelled,
                // resume-skips (the committer acknowledges those — by the
                // time we look, it may already have marked them `Done`).
                while state.next_claim < state.entries.len()
                    && !matches!(
                        state.entries[state.next_claim].phase,
                        Phase::Queued { skip: false }
                    )
                {
                    state.next_claim += 1;
                    inner.changed.notify_all();
                }
                if state.next_claim < state.entries.len() && !state.draining {
                    let index = state.next_claim;
                    state.next_claim += 1;
                    break index;
                }
                if state.draining || state.shutdown {
                    state.live_workers -= 1;
                    drop(state);
                    inner.changed.notify_all();
                    return;
                }
                state = inner.work.wait(state).expect("engine lock");
            };
            let wait = state.entries[index].enqueued.elapsed();
            let beacon = Heartbeat::live();
            let entry = &mut state.entries[index];
            entry.phase = Phase::Running { worker };
            entry.assignments += 1;
            entry.lease = Some(LeaseState {
                deadline: Instant::now() + inner.lease,
                beacon: beacon.clone(),
                beats_seen: 0,
            });
            entry.history.push(JobState::Running {
                worker: worker as u32,
            });
            let epoch = entry.epoch;
            let job = entry.job.clone();
            inner.changed.notify_all();
            (index, job, wait, epoch, beacon)
        };
        // Stream delta flushes into the live aggregate, fenced by the
        // assignment epoch: a worker the reaper already declared dead must
        // not pollute the fresh assignment's slot (its committed result is
        // discarded by the same fence below).
        let sink = {
            let inner = Arc::clone(inner);
            DeltaSink::new(move |event| {
                let state = inner.state.lock().expect("engine lock");
                let current = state.entries[index].epoch == epoch;
                drop(state);
                if current {
                    inner.live.ingest(&event);
                }
            })
        };
        let outcome = run_job_streaming(index, &job, runner, wait, worker, &beacon, &sink);
        let mut state = inner.state.lock().expect("engine lock");
        let entry = &mut state.entries[index];
        if entry.epoch == epoch && matches!(entry.phase, Phase::Running { .. }) {
            entry.outcome = Some(outcome);
            entry.phase = Phase::Settled;
            entry.lease = None;
        } else {
            // The reaper declared this assignment dead and requeued (or a
            // fresh assignment already settled) the job: the result is
            // stale and must not be committed — exactly one assignment's
            // result ever reaches the ledger.
            state.stale_results += 1;
        }
        drop(state);
        inner.changed.notify_all();
    }
}

/// The lease reaper: periodically scans running jobs; beating workers get
/// their lease extended, silent ones past the deadline are declared dead
/// and their job is requeued under a bumped epoch.
fn reaper_loop(inner: &Inner) {
    let interval = (inner.lease / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
    let mut state = inner.state.lock().expect("engine lock");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let mut requeued_any = false;
        for index in 0..state.entries.len() {
            let entry = &mut state.entries[index];
            if !matches!(entry.phase, Phase::Running { .. }) {
                continue;
            }
            let Some(lease) = entry.lease.as_mut() else {
                continue;
            };
            let beats = lease.beacon.beats();
            if beats > lease.beats_seen {
                // The worker is alive: extend the lease.
                lease.beats_seen = beats;
                lease.deadline = now + inner.lease;
                continue;
            }
            if now < lease.deadline {
                continue;
            }
            // Lease expired with no heartbeat: declare the assignment dead
            // and hand the job to a fresh worker. The epoch bump invalidates
            // whatever the old worker eventually returns.
            entry.epoch += 1;
            entry.phase = Phase::Queued { skip: false };
            entry.lease = None;
            entry.history.push(JobState::Queued { ahead: 0 });
            state.requeued.push_back(index);
            state.reassigned += 1;
            requeued_any = true;
        }
        if requeued_any {
            inner.work.notify_all();
            inner.changed.notify_all();
        }
        state = inner
            .changed
            .wait_timeout(state, interval)
            .expect("engine lock")
            .0;
    }
}

/// Work the committer performs outside the lock.
enum CommitStep {
    Skip,
    Cancelled,
    Outcome(Box<JobOutcome>),
    Exit,
}

fn committer_loop(inner: &Inner, mut ledger: Ledger) {
    loop {
        let (step, index) = {
            let mut state = inner.state.lock().expect("engine lock");
            loop {
                let i = state.next_commit;
                if i < state.entries.len() {
                    match state.entries[i].phase {
                        Phase::Settled => {
                            let outcome = state.entries[i].outcome.take().expect("settled outcome");
                            break (CommitStep::Outcome(Box::new(outcome)), i);
                        }
                        Phase::Cancelled => break (CommitStep::Cancelled, i),
                        Phase::Queued { skip: true } => break (CommitStep::Skip, i),
                        _ => {}
                    }
                }
                // Exit once nothing ahead can ever settle: shutdown was
                // requested and every worker has exited, so any entry still
                // unsettled (queued, requeued, abandoned mid-drain) will
                // stay that way — a restarted daemon re-runs it from the
                // journal.
                if state.shutdown && state.live_workers == 0 {
                    break (CommitStep::Exit, i);
                }
                state = inner.changed.wait(state).expect("engine lock");
            }
        };
        match step {
            CommitStep::Exit => break,
            CommitStep::Skip => {
                // The resume journal already records this benchmark: count
                // it like campaign's skip path so a converging failures.txt
                // reports the same completed total.
                ledger.note_skipped();
                let mut state = inner.state.lock().expect("engine lock");
                state.entries[index].phase = Phase::Done {
                    ok: true,
                    attempts: 0,
                };
                state.entries[index].history.push(JobState::Done {
                    ok: true,
                    attempts: 0,
                });
                state.done += 1;
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Cancelled => {
                let mut state = inner.state.lock().expect("engine lock");
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Outcome(mut outcome) => {
                let (name, profilers, job_bench, attempts) = {
                    let mut state = inner.state.lock().expect("engine lock");
                    let wall = outcome.metrics.wall;
                    let queue_wait = outcome.metrics.queue_wait;
                    state.busy += wall;
                    state.wait_sum += queue_wait;
                    state.settled += 1;
                    let e = &state.entries[index];
                    // Lease-aware accounting: how many workers this job
                    // burned, not just how many attempts the committed
                    // assignment made.
                    outcome.metrics.assignments = e.assignments;
                    (
                        e.job.bench.name,
                        e.profilers.clone(),
                        e.job.bench.clone(),
                        outcome.attempts,
                    )
                };
                let ok = outcome.result.is_ok();
                let metrics = outcome.metrics;
                match outcome.result {
                    Ok(run) => {
                        let completed = CompletedBench {
                            run: SuiteRun {
                                bench: job_bench,
                                run,
                            },
                            attempts,
                        };
                        ledger.commit_completed(&completed, metrics, &profilers);
                    }
                    Err(error) => {
                        let failed = FailedBench {
                            name,
                            attempts,
                            error,
                        };
                        ledger.commit_failed(&failed, metrics);
                    }
                }
                inner.live.mark_settled(name, ok);
                let mut state = inner.state.lock().expect("engine lock");
                state.entries[index].phase = Phase::Done { ok, attempts };
                state.entries[index]
                    .history
                    .push(JobState::Done { ok, attempts });
                state.done_names.insert(name.to_owned());
                if ok {
                    state.done += 1;
                } else {
                    state.failed += 1;
                }
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
        }
    }
    // Final act: metrics.txt, the one host-timing artifact.
    ledger.finish(ExecSummary {
        workers: inner.workers,
        wall: inner.started.elapsed(),
    });
}
