//! `tipd` — the TIP profiling daemon.
//!
//! ```text
//! tipd --listen 127.0.0.1:7421 --out runs/service [--jobs N] [--resume]
//!      [--max-conns N] [--io-timeout-ms N]
//! ```
//!
//! Listens for TIPW requests, runs submitted jobs on a worker pool, and
//! persists byte-stable campaign artifacts to `--out`. Exits on a wire
//! `Shutdown` request (`tipctl shutdown`), draining in-flight jobs and
//! journaling them so `--resume` continues the campaign.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tip_serve::server::{serve, ServerConfig};

fn usage() -> String {
    "usage: tipd --listen HOST:PORT --out DIR [--jobs N] [--resume] \
     [--max-conns N] [--io-timeout-ms N]"
        .to_owned()
}

fn parse(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut listen: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut workers = tip_bench::default_workers();
    let mut resume = false;
    let mut max_conns = 32usize;
    let mut io_timeout = Duration::from_secs(5);
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs HOST:PORT")?),
            "--out" => out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a dir")?)),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a worker count")?;
                workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs: bad worker count `{v}`"))?;
            }
            "--max-conns" => {
                let v = args.next().ok_or("--max-conns needs a count")?;
                max_conns = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--max-conns: bad count `{v}`"))?;
            }
            "--io-timeout-ms" => {
                let v = args.next().ok_or("--io-timeout-ms needs milliseconds")?;
                io_timeout = Duration::from_millis(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--io-timeout-ms: bad value `{v}`"))?,
                );
            }
            "--resume" => resume = true,
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let mut config =
        ServerConfig::new(out_dir.ok_or_else(|| format!("--out is required\n{}", usage()))?);
    config.listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    config.workers = workers;
    config.resume = resume;
    config.max_conns = max_conns;
    config.io_timeout = io_timeout;
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tipd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tipd: bind {} failed: {e}", config.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tipd: listening on {} ({} workers, out {})",
        handle.addr(),
        config.workers,
        config.out_dir.display()
    );
    let engine = handle.engine().clone();
    handle.join();
    let stats = engine.stats();
    eprintln!(
        "tipd: drained and exiting (done={} failed={} cancelled={})",
        stats.done, stats.failed, stats.cancelled
    );
    if stats.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
