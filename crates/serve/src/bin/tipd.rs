//! `tipd` — the TIP profiling daemon.
//!
//! ```text
//! tipd --listen 127.0.0.1:7421 --out runs/service [--jobs N] [--resume]
//!      [--coordinator] [--max-conns N] [--io-timeout-ms N]
//!      [--write-timeout-ms N] [--lease-ms N] [--shed-watermark N]
//!      [--retry-after-ms N] [--max-frames-per-sec N]
//! tipd --join HOST:PORT [--jobs N] [--name NAME] [--give-up-ms N]
//! ```
//!
//! Three modes:
//!
//! * Plain daemon (default): listens for TIPW requests, runs submitted
//!   jobs on a local worker pool, persists byte-stable campaign artifacts
//!   to `--out`.
//! * `--coordinator`: same wire surface, but no local workers — jobs are
//!   sharded across fleet daemons that `--join` this address, and their
//!   streamed results are committed through one in-order ledger.
//! * `--join HOST:PORT`: the fleet daemon half. Registers with a
//!   coordinator, polls for assignments, runs them locally, pushes the
//!   rendered results back. Exits when the coordinator drains.
//!
//! Exits on a wire `Shutdown` request (`tipctl shutdown`), draining
//! in-flight jobs and journaling them so `--resume` continues the
//! campaign. Every failure kind maps to a distinct nonzero exit code
//! (printed to stderr with detail): 1 usage, 2 bind, 3 out-dir I/O,
//! 4 unreadable resume journal, 5 failed jobs at exit, 6 fleet join
//! failure.

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tip_serve::server::{serve, Backend, ServerConfig};
use tip_serve::{run_agent, AgentConfig, ClientError, DEFAULT_FLEET_LEASE};

fn usage() -> String {
    "usage: tipd --listen HOST:PORT --out DIR [--jobs N] [--resume] [--coordinator] \
     [--max-conns N] [--io-timeout-ms N] [--write-timeout-ms N] [--lease-ms N] \
     [--shed-watermark N] [--retry-after-ms N] [--max-frames-per-sec N]\n\
     \u{20}      tipd --join HOST:PORT [--jobs N] [--name NAME] [--give-up-ms N]"
        .to_owned()
}

/// Why tipd is exiting nonzero — one distinct code per failure kind, so
/// supervisors can tell "fix the invocation" (1) from "the port is taken"
/// (2), "the disk is the problem" (3, 4), "the campaign had failures" (5),
/// and "the coordinator is gone" (6).
enum DaemonError {
    /// Bad arguments: the caller's problem.
    Usage(String),
    /// Could not bind the listen address.
    Bind {
        /// The address we tried.
        listen: String,
        /// What the OS said.
        error: io::Error,
    },
    /// Could not create or write the campaign directory.
    OutDir {
        /// The directory we tried.
        dir: PathBuf,
        /// What the OS said.
        error: io::Error,
    },
    /// `--resume` was asked for but the journal exists and is unreadable.
    Resume {
        /// The directory whose journal failed.
        dir: PathBuf,
        /// What the OS said.
        error: io::Error,
    },
    /// The campaign drained with failed jobs.
    FailedJobs {
        /// How many jobs exhausted their attempts.
        failed: u32,
    },
    /// `--join` never registered, or the coordinator stayed unreachable
    /// past the give-up window.
    Join(ClientError),
}

fn exit_code(e: &DaemonError) -> u8 {
    match e {
        DaemonError::Usage(_) => 1,
        DaemonError::Bind { .. } => 2,
        DaemonError::OutDir { .. } => 3,
        DaemonError::Resume { .. } => 4,
        DaemonError::FailedJobs { .. } => 5,
        DaemonError::Join(_) => 6,
    }
}

fn message(e: &DaemonError) -> String {
    match e {
        DaemonError::Usage(m) => m.clone(),
        DaemonError::Bind { listen, error } => format!("bind {listen} failed: {error}"),
        DaemonError::OutDir { dir, error } => {
            format!("out dir {} unusable: {error}", dir.display())
        }
        DaemonError::Resume { dir, error } => {
            format!("resume journal in {} unreadable: {error}", dir.display())
        }
        DaemonError::FailedJobs { failed } => format!("{failed} job(s) failed"),
        DaemonError::Join(e) => format!("fleet join failed: {e}"),
    }
}

/// What one invocation asks for: serve (plain or coordinator) or join a
/// fleet.
enum Mode {
    Serve(ServerConfig),
    Join(AgentConfig),
}

fn ms_flag(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<Duration, String> {
    let v = args.next().ok_or(format!("{flag} needs milliseconds"))?;
    Ok(Duration::from_millis(
        v.parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("{flag}: bad value `{v}`"))?,
    ))
}

#[allow(clippy::too_many_lines)]
fn parse(args: impl Iterator<Item = String>) -> Result<Mode, String> {
    let mut listen: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut join: Option<String> = None;
    let mut name: Option<String> = None;
    let mut give_up: Option<Duration> = None;
    let mut workers: Option<usize> = None;
    let mut resume = false;
    let mut coordinator = false;
    let mut max_conns = 32usize;
    let mut io_timeout = Duration::from_secs(5);
    let mut write_timeout: Option<Duration> = None;
    let mut lease: Option<Duration> = None;
    let mut shed_watermark: Option<usize> = None;
    let mut retry_after_ms: Option<u32> = None;
    let mut max_frames_per_sec: Option<u32> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs HOST:PORT")?),
            "--out" => out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a dir")?)),
            "--join" => join = Some(args.next().ok_or("--join needs HOST:PORT")?),
            "--name" => name = Some(args.next().ok_or("--name needs a name")?),
            "--give-up-ms" => give_up = Some(ms_flag(&mut args, "--give-up-ms")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a worker count")?;
                workers = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--jobs: bad worker count `{v}`"))?,
                );
            }
            "--max-conns" => {
                let v = args.next().ok_or("--max-conns needs a count")?;
                max_conns = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--max-conns: bad count `{v}`"))?;
            }
            "--io-timeout-ms" => io_timeout = ms_flag(&mut args, "--io-timeout-ms")?,
            "--write-timeout-ms" => {
                write_timeout = Some(ms_flag(&mut args, "--write-timeout-ms")?);
            }
            "--lease-ms" => lease = Some(ms_flag(&mut args, "--lease-ms")?),
            "--shed-watermark" => {
                let v = args.next().ok_or("--shed-watermark needs a depth")?;
                shed_watermark = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--shed-watermark: bad depth `{v}`"))?,
                );
            }
            "--retry-after-ms" => {
                let v = args.next().ok_or("--retry-after-ms needs milliseconds")?;
                retry_after_ms = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--retry-after-ms: bad value `{v}`"))?,
                );
            }
            "--max-frames-per-sec" => {
                let v = args.next().ok_or("--max-frames-per-sec needs a rate")?;
                max_frames_per_sec = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--max-frames-per-sec: bad rate `{v}`"))?,
                );
            }
            "--resume" => resume = true,
            "--coordinator" => coordinator = true,
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    if let Some(coordinator_addr) = join {
        if listen.is_some() || out_dir.is_some() || resume || coordinator {
            return Err(format!(
                "--join takes no serve flags (--listen/--out/--resume/--coordinator)\n{}",
                usage()
            ));
        }
        let mut config = AgentConfig::new(coordinator_addr);
        if let Some(n) = name {
            config.name = n;
        }
        if let Some(w) = workers {
            config.workers = w;
        }
        if let Some(g) = give_up {
            config.give_up_after = g;
        }
        return Ok(Mode::Join(config));
    }
    if name.is_some() || give_up.is_some() {
        return Err(format!(
            "--name/--give-up-ms only apply to --join\n{}",
            usage()
        ));
    }
    let mut config =
        ServerConfig::new(out_dir.ok_or_else(|| format!("--out is required\n{}", usage()))?);
    config.listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    config.workers = workers.unwrap_or_else(tip_bench::default_workers);
    config.resume = resume;
    config.coordinator = coordinator;
    config.max_conns = max_conns;
    config.io_timeout = io_timeout;
    if let Some(t) = write_timeout {
        config.write_timeout = t;
    }
    config.lease = lease.unwrap_or(if coordinator {
        DEFAULT_FLEET_LEASE
    } else {
        config.lease
    });
    if let Some(w) = shed_watermark {
        config.shed_watermark = w;
    }
    if let Some(r) = retry_after_ms {
        config.retry_after_ms = r;
    }
    if let Some(f) = max_frames_per_sec {
        config.max_frames_per_sec = f;
    }
    Ok(Mode::Serve(config))
}

fn run_serve(config: &ServerConfig) -> Result<(), DaemonError> {
    std::fs::create_dir_all(&config.out_dir).map_err(|error| DaemonError::OutDir {
        dir: config.out_dir.clone(),
        error,
    })?;
    if config.resume {
        let journal = config.out_dir.join("journal.txt");
        if journal.exists() {
            std::fs::read_to_string(&journal).map_err(|error| DaemonError::Resume {
                dir: config.out_dir.clone(),
                error,
            })?;
        }
    }
    let handle = serve(config).map_err(|error| DaemonError::Bind {
        listen: config.listen.clone(),
        error,
    })?;
    eprintln!(
        "tipd: listening on {} ({} workers, out {})",
        handle.addr(),
        config.workers,
        config.out_dir.display()
    );
    // Keep a stats source that survives `join` consuming the handle.
    let stats_source = match handle.backend() {
        Backend::Local(e) => Backend::Local(e.clone()),
        Backend::Fleet(c) => Backend::Fleet(c.clone()),
    };
    handle.join();
    let stats = stats_source.stats();
    eprintln!(
        "tipd: drained and exiting (done={} failed={} cancelled={})",
        stats.done, stats.failed, stats.cancelled
    );
    if stats.failed > 0 {
        return Err(DaemonError::FailedJobs {
            failed: stats.failed,
        });
    }
    Ok(())
}

fn run_join(config: &AgentConfig) -> Result<(), DaemonError> {
    eprintln!(
        "tipd: joining fleet at {} as {} ({} workers)",
        config.coordinator, config.name, config.workers
    );
    run_agent(config).map_err(DaemonError::Join)?;
    eprintln!("tipd: coordinator drained; exiting");
    Ok(())
}

fn main() -> ExitCode {
    let mode = match parse(std::env::args().skip(1)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tipd: {e}");
            return ExitCode::from(exit_code(&DaemonError::Usage(e)));
        }
    };
    let result = match mode {
        Mode::Serve(config) => run_serve(&config),
        Mode::Join(config) => run_join(&config),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tipd: {}", message(&e));
            ExitCode::from(exit_code(&e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_failure_kind_maps_to_a_distinct_nonzero_exit_code() {
        let failures = [
            DaemonError::Usage("bad flag".to_owned()),
            DaemonError::Bind {
                listen: "127.0.0.1:1".to_owned(),
                error: io::Error::other("in use"),
            },
            DaemonError::OutDir {
                dir: PathBuf::from("/dev/null/nope"),
                error: io::Error::other("not a directory"),
            },
            DaemonError::Resume {
                dir: PathBuf::from("runs/x"),
                error: io::Error::other("permission denied"),
            },
            DaemonError::FailedJobs { failed: 2 },
            DaemonError::Join(ClientError::Io(io::Error::other("refused"))),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &failures {
            let code = exit_code(e);
            assert_ne!(code, 0, "{} must exit nonzero", message(e));
            assert!(seen.insert(code), "duplicate exit code {code}");
            assert!(!message(e).is_empty());
        }
    }

    #[test]
    fn parse_separates_the_three_modes() {
        fn to_args(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(str::to_owned)
        }
        match parse(to_args("--listen 127.0.0.1:0 --out runs/x --jobs 3")) {
            Ok(Mode::Serve(c)) => {
                assert!(!c.coordinator);
                assert_eq!(c.workers, 3);
            }
            _ => panic!("expected plain serve mode"),
        }
        match parse(to_args("--listen 127.0.0.1:0 --out runs/x --coordinator")) {
            Ok(Mode::Serve(c)) => {
                assert!(c.coordinator);
                assert_eq!(c.lease, DEFAULT_FLEET_LEASE, "fleet lease default");
            }
            _ => panic!("expected coordinator mode"),
        }
        match parse(to_args("--join 127.0.0.1:7421 --jobs 2 --name d1")) {
            Ok(Mode::Join(a)) => {
                assert_eq!(a.coordinator, "127.0.0.1:7421");
                assert_eq!(a.workers, 2);
                assert_eq!(a.name, "d1");
            }
            _ => panic!("expected join mode"),
        }
        // Mixing join and serve flags is a usage error, as are join-only
        // flags without --join.
        assert!(parse(to_args("--join 127.0.0.1:1 --out runs/x")).is_err());
        assert!(parse(to_args("--listen 127.0.0.1:0 --out runs/x --name d1")).is_err());
    }
}
