//! `tipd` — the TIP profiling daemon.
//!
//! ```text
//! tipd --listen 127.0.0.1:7421 --out runs/service [--jobs N] [--resume]
//!      [--max-conns N] [--io-timeout-ms N] [--write-timeout-ms N]
//!      [--lease-ms N] [--shed-watermark N] [--retry-after-ms N]
//!      [--max-frames-per-sec N]
//! ```
//!
//! Listens for TIPW requests, runs submitted jobs on a worker pool, and
//! persists byte-stable campaign artifacts to `--out`. Exits on a wire
//! `Shutdown` request (`tipctl shutdown`), draining in-flight jobs and
//! journaling them so `--resume` continues the campaign.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use tip_serve::server::{serve, ServerConfig};

fn usage() -> String {
    "usage: tipd --listen HOST:PORT --out DIR [--jobs N] [--resume] \
     [--max-conns N] [--io-timeout-ms N] [--write-timeout-ms N] [--lease-ms N] \
     [--shed-watermark N] [--retry-after-ms N] [--max-frames-per-sec N]"
        .to_owned()
}

fn ms_flag(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<Duration, String> {
    let v = args.next().ok_or(format!("{flag} needs milliseconds"))?;
    Ok(Duration::from_millis(
        v.parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("{flag}: bad value `{v}`"))?,
    ))
}

fn parse(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut listen: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut workers = tip_bench::default_workers();
    let mut resume = false;
    let mut max_conns = 32usize;
    let mut io_timeout = Duration::from_secs(5);
    let mut write_timeout: Option<Duration> = None;
    let mut lease: Option<Duration> = None;
    let mut shed_watermark: Option<usize> = None;
    let mut retry_after_ms: Option<u32> = None;
    let mut max_frames_per_sec: Option<u32> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs HOST:PORT")?),
            "--out" => out_dir = Some(PathBuf::from(args.next().ok_or("--out needs a dir")?)),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a worker count")?;
                workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs: bad worker count `{v}`"))?;
            }
            "--max-conns" => {
                let v = args.next().ok_or("--max-conns needs a count")?;
                max_conns = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--max-conns: bad count `{v}`"))?;
            }
            "--io-timeout-ms" => io_timeout = ms_flag(&mut args, "--io-timeout-ms")?,
            "--write-timeout-ms" => {
                write_timeout = Some(ms_flag(&mut args, "--write-timeout-ms")?);
            }
            "--lease-ms" => lease = Some(ms_flag(&mut args, "--lease-ms")?),
            "--shed-watermark" => {
                let v = args.next().ok_or("--shed-watermark needs a depth")?;
                shed_watermark = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--shed-watermark: bad depth `{v}`"))?,
                );
            }
            "--retry-after-ms" => {
                let v = args.next().ok_or("--retry-after-ms needs milliseconds")?;
                retry_after_ms = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--retry-after-ms: bad value `{v}`"))?,
                );
            }
            "--max-frames-per-sec" => {
                let v = args.next().ok_or("--max-frames-per-sec needs a rate")?;
                max_frames_per_sec = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--max-frames-per-sec: bad rate `{v}`"))?,
                );
            }
            "--resume" => resume = true,
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let mut config =
        ServerConfig::new(out_dir.ok_or_else(|| format!("--out is required\n{}", usage()))?);
    config.listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    config.workers = workers;
    config.resume = resume;
    config.max_conns = max_conns;
    config.io_timeout = io_timeout;
    if let Some(t) = write_timeout {
        config.write_timeout = t;
    }
    if let Some(l) = lease {
        config.lease = l;
    }
    if let Some(w) = shed_watermark {
        config.shed_watermark = w;
    }
    if let Some(r) = retry_after_ms {
        config.retry_after_ms = r;
    }
    if let Some(f) = max_frames_per_sec {
        config.max_frames_per_sec = f;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tipd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tipd: bind {} failed: {e}", config.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "tipd: listening on {} ({} workers, out {})",
        handle.addr(),
        config.workers,
        config.out_dir.display()
    );
    let engine = handle.engine().clone();
    handle.join();
    let stats = engine.stats();
    eprintln!(
        "tipd: drained and exiting (done={} failed={} cancelled={})",
        stats.done, stats.failed, stats.cancelled
    );
    if stats.failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
