//! `tipctl` — client for the `tipd` profiling daemon.
//!
//! ```text
//! tipctl [--addr HOST:PORT] submit <bench|fig08> [test|small|full] [--seed N]
//! tipctl [--addr HOST:PORT] status <job>
//! tipctl [--addr HOST:PORT] watch <job>
//! tipctl [--addr HOST:PORT] result <job>
//! tipctl [--addr HOST:PORT] cancel <job>
//! tipctl [--addr HOST:PORT] stats
//! tipctl [--addr HOST:PORT] shutdown [--no-drain]
//! ```
//!
//! `submit fig08` enqueues the whole suite with the fig08 campaign's
//! six-profiler set — the service-side equivalent of running the fig08
//! campaign locally, with byte-identical artifacts in the daemon's
//! `--out` directory.

use std::process::ExitCode;

use tip_bench::hostbench::FIG08_PROFILERS;
use tip_serve::client::Client;
use tip_serve::proto::{JobSpec, JobState};
use tip_workloads::{SuiteScale, BENCHMARK_NAMES};

const DEFAULT_ADDR: &str = "127.0.0.1:7421";

fn usage() -> &'static str {
    "usage: tipctl [--addr HOST:PORT] \
     <submit <bench|fig08> [test|small|full] [--seed N] | status N | watch N | \
     result N | cancel N | stats | shutdown [--no-drain]>"
}

fn state_line(state: JobState) -> String {
    match state {
        JobState::Queued { ahead } => format!("queued ahead={ahead}"),
        JobState::Running { worker } => format!("running worker={worker}"),
        JobState::Done { ok, attempts } => format!(
            "done status={} attempts={attempts}",
            if ok { "ok" } else { "failed" }
        ),
        JobState::Cancelled => "cancelled".to_owned(),
    }
}

fn parse_job(arg: Option<String>) -> Result<u64, String> {
    let v = arg.ok_or("missing job id")?;
    v.parse().map_err(|_| format!("bad job id `{v}`"))
}

fn run(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut cmd = args.next().ok_or(usage())?;
    if cmd == "--addr" {
        addr = args.next().ok_or("--addr needs HOST:PORT")?;
        cmd = args.next().ok_or(usage())?;
    }
    let client = Client::new(&addr);
    match cmd.as_str() {
        "submit" => {
            let target = args
                .next()
                .ok_or("submit needs a benchmark name or `fig08`")?;
            let mut scale = SuiteScale::Small;
            let mut seed: Option<u64> = None;
            let mut rest = args.peekable();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "test" => scale = SuiteScale::Test,
                    "small" => scale = SuiteScale::Small,
                    "full" => scale = SuiteScale::Full,
                    "--seed" => {
                        let v = rest.next().ok_or("--seed needs a value")?;
                        seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let benches: Vec<&str> = if target == "fig08" {
                BENCHMARK_NAMES.to_vec()
            } else {
                vec![target.as_str()]
            };
            for bench in benches {
                let mut spec = JobSpec::new(bench, scale);
                if target == "fig08" {
                    // Match the fig08 binary's profiler set exactly, so the
                    // daemon's out dir is byte-identical to a local run.
                    spec.profilers = FIG08_PROFILERS.to_vec();
                }
                if let Some(seed) = seed {
                    spec.seed = seed;
                }
                let job = client.submit(&spec).map_err(|e| e.to_string())?;
                println!("submitted job={job} bench={bench}");
            }
            Ok(())
        }
        "status" => {
            let job = parse_job(args.next())?;
            let state = client.status(job).map_err(|e| e.to_string())?;
            println!("job={job} {}", state_line(state));
            Ok(())
        }
        "watch" => {
            let job = parse_job(args.next())?;
            let last = client
                .watch(job, |state| println!("job={job} {}", state_line(state)))
                .map_err(|e| e.to_string())?;
            match last {
                JobState::Done { ok: true, .. } => Ok(()),
                JobState::Done { ok: false, .. } => Err(format!("job {job} failed")),
                other => Err(format!("job {job} ended {}", state_line(other))),
            }
        }
        "result" => {
            let job = parse_job(args.next())?;
            let body = client.result(job).map_err(|e| e.to_string())?;
            print!("{body}");
            Ok(())
        }
        "cancel" => {
            let job = parse_job(args.next())?;
            let ok = client.cancel(job).map_err(|e| e.to_string())?;
            println!(
                "job={job} {}",
                if ok { "cancelled" } else { "not cancellable" }
            );
            Ok(())
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            print!("{}", stats.render());
            Ok(())
        }
        "shutdown" => {
            let drain = match args.next().as_deref() {
                None => true,
                Some("--no-drain") => false,
                Some(other) => return Err(format!("unexpected argument `{other}`")),
            };
            client.shutdown(drain).map_err(|e| e.to_string())?;
            println!("shutting down (drain={drain})");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tipctl: {e}");
            ExitCode::FAILURE
        }
    }
}
