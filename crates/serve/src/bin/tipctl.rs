//! `tipctl` — client for the `tipd` profiling daemon.
//!
//! ```text
//! tipctl [--addr HOST:PORT] [--connect-timeout MS] [--max-retries N]
//!        [--retry-seed N] <command>
//!
//! commands:
//!   submit <bench|fig08|pgo <bench>> [test|small|full] [--seed N]
//!   status <job> | watch <job> | result <job> | cancel <job>
//!   top [--bench B] [--profiler NAME] [-n N] [--live]
//!   stats | shutdown [--no-drain]
//! ```
//!
//! `submit fig08` enqueues the whole suite with the fig08 campaign's
//! six-profiler set — the service-side equivalent of running the fig08
//! campaign locally, with byte-identical artifacts in the daemon's
//! `--out` directory.
//!
//! `submit pgo <bench>` enqueues the profile-guided-optimization loop for
//! one benchmark: the daemon profiles it, applies the TIP-guided `tip-pgo`
//! pass, proves the rewrite semantics-preserving, and re-simulates — the
//! job's result file is the *optimized* program's run in the ordinary
//! ledger format, so `tipctl result` diffs cleanly against a plain run of
//! the same benchmark.
//!
//! `top` asks the daemon's live aggregate for the heaviest symbols of the
//! campaign *so far* — streamed from running workers, so it answers
//! mid-campaign. `--live` keeps refreshing until the daemon reports no
//! queued or running jobs; `watch` likewise renders the streamed
//! simulated-cycle count next to each state change.
//!
//! # Exit codes
//!
//! Every refusal kind maps to a distinct nonzero exit code (printed to
//! stderr), so shell harnesses can branch on *why* a call failed:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | usage error, or the watched job failed |
//! | 2 | typed server refusal (`Error{code}`) |
//! | 3 | server at its connection limit (`Busy`) |
//! | 4 | server shedding load (`Overloaded`) |
//! | 5 | transport failure (connect/read/write) |
//! | 6 | protocol damage (bad frame on the wire) |
//! | 7 | unexpected reply (wrong frame, closed stream) |

use std::process::ExitCode;
use std::time::Duration;

use tip_bench::hostbench::FIG08_PROFILERS;
use tip_core::ProfilerId;
use tip_serve::client::{Client, ClientError};
use tip_serve::proto::{JobSpec, JobState, QueryKind, QueryRow};
use tip_workloads::{SuiteScale, BENCHMARK_NAMES};

const DEFAULT_ADDR: &str = "127.0.0.1:7421";

/// Refresh cadence of `top --live`.
const LIVE_REFRESH: Duration = Duration::from_millis(400);

fn usage() -> &'static str {
    "usage: tipctl [--addr HOST:PORT] [--connect-timeout MS] [--max-retries N] \
     [--retry-seed N] \
     <submit <bench|fig08|pgo <bench>> [test|small|full] [--seed N] | status N | watch N | \
     result N | cancel N | top [--bench B] [--profiler NAME] [-n N] [--live] | \
     stats | shutdown [--no-drain]>"
}

/// Why tipctl is exiting nonzero.
enum CliError {
    /// Bad arguments or a failed job: the caller's problem.
    Usage(String),
    /// The server (or the wire) refused or failed the call.
    Client(ClientError),
}

/// The process exit code for a failure — one distinct code per refusal
/// kind, so scripts can tell "retry later" (3, 4, 5) from "fix the
/// request" (1, 2).
fn exit_code(e: &CliError) -> u8 {
    match e {
        CliError::Usage(_) => 1,
        CliError::Client(c) => match c {
            ClientError::Server { .. } => 2,
            ClientError::Busy { .. } => 3,
            ClientError::Overloaded { .. } => 4,
            ClientError::Io(_) => 5,
            ClientError::Proto(_) => 6,
            ClientError::UnexpectedReply(_) => 7,
        },
    }
}

fn message(e: &CliError) -> String {
    match e {
        CliError::Usage(m) => m.clone(),
        CliError::Client(c) => c.to_string(),
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_owned())
    }
}

impl From<ClientError> for CliError {
    fn from(e: ClientError) -> Self {
        CliError::Client(e)
    }
}

/// Global (pre-command) options: where to dial and how persistently.
struct Opts {
    addr: String,
    connect_timeout: Option<Duration>,
    max_retries: Option<u32>,
    retry_seed: Option<u64>,
}

impl Opts {
    fn client(&self) -> Client {
        let mut client = Client::new(&self.addr);
        if let Some(t) = self.connect_timeout {
            client = client.with_connect_timeout(t);
        }
        if let Some(n) = self.max_retries {
            client = client
                .with_retry(n, Duration::from_millis(100))
                .with_request_retries(n);
        }
        if let Some(s) = self.retry_seed {
            client = client.with_seed(s);
        }
        client
    }
}

/// Parses the global flags, returning them plus the command word.
fn parse_globals(args: &mut impl Iterator<Item = String>) -> Result<(Opts, String), String> {
    let mut opts = Opts {
        addr: DEFAULT_ADDR.to_owned(),
        connect_timeout: None,
        max_retries: None,
        retry_seed: None,
    };
    loop {
        let arg = args.next().ok_or_else(|| usage().to_owned())?;
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--connect-timeout" => {
                let v = args.next().ok_or("--connect-timeout needs milliseconds")?;
                let ms: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--connect-timeout: bad value `{v}`"))?;
                opts.connect_timeout = Some(Duration::from_millis(ms));
            }
            "--max-retries" => {
                let v = args.next().ok_or("--max-retries needs a count")?;
                opts.max_retries = Some(
                    v.parse::<u32>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("--max-retries: bad count `{v}`"))?,
                );
            }
            "--retry-seed" => {
                let v = args.next().ok_or("--retry-seed needs a value")?;
                opts.retry_seed = Some(v.parse().map_err(|_| format!("bad retry seed `{v}`"))?);
            }
            _ => return Ok((opts, arg)),
        }
    }
}

fn state_line(state: JobState) -> String {
    match state {
        JobState::Queued { ahead } => format!("queued ahead={ahead}"),
        JobState::Running { worker } => format!("running worker={worker}"),
        JobState::Done { ok, attempts } => format!(
            "done status={} attempts={attempts}",
            if ok { "ok" } else { "failed" }
        ),
        JobState::Cancelled => "cancelled".to_owned(),
    }
}

fn parse_job(arg: Option<String>) -> Result<u64, String> {
    let v = arg.ok_or("missing job id")?;
    v.parse().map_err(|_| format!("bad job id `{v}`"))
}

/// Maps a profiler name (the paper's figure labels, case-insensitive) to
/// its id; `oracle` means the golden reference (`None`).
fn parse_profiler(name: &str) -> Result<Option<ProfilerId>, String> {
    if name.eq_ignore_ascii_case("oracle") {
        return Ok(None);
    }
    ProfilerId::ALL
        .iter()
        .chain(std::iter::once(&ProfilerId::TipLastCommitDrain))
        .copied()
        .find(|p| p.label().eq_ignore_ascii_case(name))
        .map(Some)
        .ok_or_else(|| format!("unknown profiler `{name}` (try TIP, NCI, oracle, ...)"))
}

/// Renders one `top` snapshot: rows grouped by benchmark, share first.
fn render_top(rows: &[QueryRow]) {
    if rows.is_empty() {
        println!("(no streamed data yet)");
        return;
    }
    let mut current: Option<&str> = None;
    for row in rows {
        if current != Some(row.bench.as_str()) {
            current = Some(row.bench.as_str());
            let source = row.profiler.map_or("Oracle", ProfilerId::label);
            println!("{} [{source}]:", row.bench);
        }
        #[allow(clippy::cast_possible_truncation)]
        let units = row.value as i64;
        println!("  {:6.2}%  {units:>14}  {}", row.share * 100.0, row.label);
    }
}

fn run(mut args: impl Iterator<Item = String>) -> Result<(), CliError> {
    let (opts, cmd) = parse_globals(&mut args)?;
    let client = opts.client();
    match cmd.as_str() {
        "submit" => {
            let mut target = args
                .next()
                .ok_or("submit needs a benchmark name, `fig08`, or `pgo <bench>`")?;
            let pgo = target == "pgo";
            if pgo {
                target = args.next().ok_or("submit pgo needs a benchmark name")?;
            }
            let mut scale = SuiteScale::Small;
            let mut seed: Option<u64> = None;
            let mut rest = args.peekable();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "test" => scale = SuiteScale::Test,
                    "small" => scale = SuiteScale::Small,
                    "full" => scale = SuiteScale::Full,
                    "--seed" => {
                        let v = rest.next().ok_or("--seed needs a value")?;
                        seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
                    }
                    other => return Err(format!("unexpected argument `{other}`").into()),
                }
            }
            let benches: Vec<&str> = if target == "fig08" {
                BENCHMARK_NAMES.to_vec()
            } else {
                vec![target.as_str()]
            };
            for bench in benches {
                let mut spec = JobSpec::new(bench, scale);
                spec.pgo = pgo;
                if target == "fig08" {
                    // Match the fig08 binary's profiler set exactly, so the
                    // daemon's out dir is byte-identical to a local run.
                    spec.profilers = FIG08_PROFILERS.to_vec();
                }
                if let Some(seed) = seed {
                    spec.seed = seed;
                }
                let job = client.submit(&spec)?;
                println!(
                    "submitted job={job} bench={bench}{}",
                    if pgo { " (pgo)" } else { "" }
                );
            }
            Ok(())
        }
        "status" => {
            let job = parse_job(args.next())?;
            let state = client.status(job)?;
            println!("job={job} {}", state_line(state));
            Ok(())
        }
        "watch" => {
            let job = parse_job(args.next())?;
            let last = client.watch_live(job, |state, cycles| {
                if cycles > 0 {
                    println!("job={job} {} cycles={cycles}", state_line(state));
                } else {
                    println!("job={job} {}", state_line(state));
                }
            })?;
            match last {
                JobState::Done { ok: true, .. } => Ok(()),
                JobState::Done { ok: false, .. } => Err(format!("job {job} failed").into()),
                other => Err(format!("job {job} ended {}", state_line(other)).into()),
            }
        }
        "top" => {
            let mut bench = String::new();
            let mut profiler: Option<ProfilerId> = None;
            let mut n: u32 = 0;
            let mut live = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--bench" => bench = args.next().ok_or("--bench needs a name")?,
                    "--profiler" => {
                        let v = args.next().ok_or("--profiler needs a name")?;
                        profiler = parse_profiler(&v)?;
                    }
                    "-n" => {
                        let v = args.next().ok_or("-n needs a count")?;
                        n = v
                            .parse()
                            .ok()
                            .filter(|&x| x >= 1)
                            .ok_or(format!("-n: bad count `{v}`"))?;
                    }
                    "--live" => live = true,
                    other => return Err(format!("unexpected argument `{other}`").into()),
                }
            }
            loop {
                let rows = client.query(QueryKind::TopN, &bench, profiler, n)?;
                if !live {
                    render_top(&rows);
                    return Ok(());
                }
                // Live mode: redraw until the daemon has nothing queued or
                // running, then print the (now final) view once more.
                let stats = client.stats()?;
                println!(
                    "--- queued={} running={} deltas={}",
                    stats.queued, stats.running, stats.deltas
                );
                render_top(&rows);
                if stats.queued == 0 && stats.running == 0 {
                    return Ok(());
                }
                std::thread::sleep(LIVE_REFRESH);
            }
        }
        "result" => {
            let job = parse_job(args.next())?;
            let body = client.result(job)?;
            print!("{body}");
            Ok(())
        }
        "cancel" => {
            let job = parse_job(args.next())?;
            let ok = client.cancel(job)?;
            println!(
                "job={job} {}",
                if ok { "cancelled" } else { "not cancellable" }
            );
            Ok(())
        }
        "stats" => {
            let stats = client.stats()?;
            print!("{}", stats.render());
            Ok(())
        }
        "shutdown" => {
            let drain = match args.next().as_deref() {
                None => true,
                Some("--no-drain") => false,
                Some(other) => return Err(format!("unexpected argument `{other}`").into()),
            };
            client.shutdown(drain)?;
            println!("shutting down (drain={drain})");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tipctl: {}", message(&e));
            ExitCode::from(exit_code(&e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use tip_serve::proto::ErrorCode;
    use tip_trace::TraceError;

    #[test]
    fn every_refusal_kind_maps_to_a_distinct_nonzero_exit_code() {
        let cases: Vec<(CliError, u8)> = vec![
            (CliError::Usage("bad".to_owned()), 1),
            (
                CliError::Client(ClientError::Server {
                    code: ErrorCode::UnknownBench,
                    message: "no such bench".to_owned(),
                }),
                2,
            ),
            (
                CliError::Client(ClientError::Busy {
                    active: 32,
                    limit: 32,
                }),
                3,
            ),
            (
                CliError::Client(ClientError::Overloaded {
                    retry_after_ms: 500,
                    queued: 300,
                }),
                4,
            ),
            (
                CliError::Client(ClientError::Io(io::Error::other("gone"))),
                5,
            ),
            (
                CliError::Client(ClientError::Proto(TraceError::Corrupt { offset: 0 })),
                6,
            ),
            (
                CliError::Client(ClientError::UnexpectedReply("eof".to_owned())),
                7,
            ),
        ];
        let mut seen = std::collections::HashSet::new();
        for (err, want) in &cases {
            assert_eq!(exit_code(err), *want, "{}", message(err));
            assert_ne!(*want, 0);
            assert!(seen.insert(*want), "exit code {want} reused");
            assert!(!message(err).is_empty());
        }
    }

    #[test]
    fn profiler_names_parse_case_insensitively_and_oracle_is_none() {
        assert_eq!(parse_profiler("TIP"), Ok(Some(ProfilerId::Tip)));
        assert_eq!(parse_profiler("tip"), Ok(Some(ProfilerId::Tip)));
        assert_eq!(parse_profiler("nci+ilp"), Ok(Some(ProfilerId::NciIlp)));
        assert_eq!(parse_profiler("Oracle"), Ok(None));
        assert!(parse_profiler("perf").is_err());
    }

    #[test]
    fn stats_render_carries_the_streaming_aggregate_fields() {
        let stats = tip_serve::proto::ServerStats {
            deltas: 42,
            streamed: 3,
            ..Default::default()
        };
        let rendered = stats.render();
        assert!(rendered.contains("deltas=42\n"), "{rendered}");
        assert!(rendered.contains("streamed=3\n"), "{rendered}");
    }

    #[test]
    fn global_flags_parse_before_the_command() {
        let mut args = [
            "--addr",
            "10.0.0.1:7421",
            "--connect-timeout",
            "250",
            "--max-retries",
            "7",
            "--retry-seed",
            "99",
            "stats",
        ]
        .iter()
        .map(|s| (*s).to_owned());
        let (opts, cmd) = parse_globals(&mut args).expect("parses");
        assert_eq!(cmd, "stats");
        assert_eq!(opts.addr, "10.0.0.1:7421");
        assert_eq!(opts.connect_timeout, Some(Duration::from_millis(250)));
        assert_eq!(opts.max_retries, Some(7));
        assert_eq!(opts.retry_seed, Some(99));
    }

    #[test]
    fn bad_global_flag_values_are_usage_errors() {
        for args in [
            vec!["--connect-timeout", "0", "stats"],
            vec!["--connect-timeout", "soon", "stats"],
            vec!["--max-retries", "0", "stats"],
            vec!["--retry-seed", "many", "stats"],
        ] {
            let mut it = args.iter().map(|s| (*s).to_owned());
            assert!(parse_globals(&mut it).is_err(), "{args:?}");
        }
    }
}
