//! `chaosnet` — a seeded fault-injecting TCP proxy between `tipctl` and
//! `tipd`.
//!
//! ```text
//! chaosnet --listen 127.0.0.1:7422 --upstream 127.0.0.1:7421 --seed 42
//!          [--drop-one-in N] [--delay-one-in N --delay-ms MS]
//!          [--corrupt-one-in N] [--split-max BYTES]
//!          [--disconnect-after BYTES] [--half-close-after BYTES]
//!          [--direction up|down|both] [--run-for-ms N]
//! ```
//!
//! Forwards TIPW traffic while injecting reproducible wire faults; point
//! `tipctl --addr` at the proxy instead of the daemon. Runs until killed
//! (Ctrl-C) — or, with `--run-for-ms`, shuts down after the given window
//! and prints an end-of-run summary of per-direction fault counters.
//! While running, aggregate counters are printed every 10 s to stderr.

use std::process::ExitCode;
use std::time::Duration;

use tip_serve::chaosnet::{chaos_proxy, ChaosConfig};
use tip_trace::fault::{Fault, FaultPlan};

fn usage() -> String {
    "usage: chaosnet --listen HOST:PORT --upstream HOST:PORT [--seed N] \
     [--drop-one-in N] [--delay-one-in N --delay-ms MS] [--corrupt-one-in N] \
     [--split-max BYTES] [--disconnect-after BYTES] [--half-close-after BYTES] \
     [--direction up|down|both] [--run-for-ms N]"
        .to_owned()
}

fn num<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let v = args.next().ok_or(format!("{flag} needs a value"))?;
    v.parse::<T>()
        .map_err(|_| format!("{flag}: bad value `{v}`"))
}

fn parse(args: impl Iterator<Item = String>) -> Result<(ChaosConfig, Option<Duration>), String> {
    let mut listen: Option<String> = None;
    let mut upstream: Option<String> = None;
    let mut seed = 42u64;
    let mut faults = Vec::new();
    let mut delay_one_in: Option<u32> = None;
    let mut delay_ms = 50u32;
    let mut direction = "both".to_owned();
    let mut run_for: Option<Duration> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs HOST:PORT")?),
            "--upstream" => upstream = Some(args.next().ok_or("--upstream needs HOST:PORT")?),
            "--seed" => seed = num(&mut args, "--seed")?,
            "--run-for-ms" => {
                run_for = Some(Duration::from_millis(num(&mut args, "--run-for-ms")?));
            }
            "--drop-one-in" => faults.push(Fault::DropChunks {
                one_in: num(&mut args, "--drop-one-in")?,
            }),
            "--delay-one-in" => delay_one_in = Some(num(&mut args, "--delay-one-in")?),
            "--delay-ms" => delay_ms = num(&mut args, "--delay-ms")?,
            "--corrupt-one-in" => faults.push(Fault::CorruptChunks {
                one_in: num(&mut args, "--corrupt-one-in")?,
            }),
            "--split-max" => faults.push(Fault::SplitChunks {
                max: num(&mut args, "--split-max")?,
            }),
            "--disconnect-after" => faults.push(Fault::Disconnect {
                after_bytes: num(&mut args, "--disconnect-after")?,
            }),
            "--half-close-after" => faults.push(Fault::HalfClose {
                after_bytes: num(&mut args, "--half-close-after")?,
            }),
            "--direction" => {
                direction = args.next().ok_or("--direction needs up|down|both")?;
                if !matches!(direction.as_str(), "up" | "down" | "both") {
                    return Err(format!("--direction: bad value `{direction}`"));
                }
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    if let Some(one_in) = delay_one_in {
        faults.push(Fault::DelayChunks {
            one_in,
            ms: delay_ms,
        });
    }
    let mut config = ChaosConfig::new(
        &upstream.ok_or_else(|| format!("--upstream is required\n{}", usage()))?,
        FaultPlan::new(seed, faults),
    );
    config.listen = listen.ok_or_else(|| format!("--listen is required\n{}", usage()))?;
    config.fault_upstream = direction != "down";
    config.fault_downstream = direction != "up";
    Ok((config, run_for))
}

fn main() -> ExitCode {
    let (config, run_for) = match parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaosnet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match chaos_proxy(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("chaosnet: bind {} failed: {e}", config.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "chaosnet: {} -> {} (seed {}, {} faults)",
        handle.addr(),
        config.upstream,
        config.plan.seed,
        config.plan.faults.len()
    );
    let started = std::time::Instant::now();
    loop {
        let tick = run_for.map_or(Duration::from_secs(10), |left| {
            left.saturating_sub(started.elapsed())
                .min(Duration::from_secs(10))
        });
        std::thread::sleep(tick);
        if run_for.is_some_and(|d| started.elapsed() >= d) {
            break;
        }
        let s = handle.stats();
        let t = s.total();
        eprintln!(
            "chaosnet: conns={} fwd={}B dropped={} delayed={} corrupted={} cut={} half-closed={}",
            s.connections,
            t.forwarded_bytes,
            t.dropped_chunks,
            t.delayed_chunks,
            t.corrupted_chunks,
            t.disconnects,
            t.half_closes
        );
    }
    let stats = handle.stats();
    handle.shutdown();
    eprintln!("chaosnet: shut down after {:?}", started.elapsed());
    for line in stats.summary().lines() {
        eprintln!("chaosnet: {line}");
    }
    ExitCode::SUCCESS
}
