//! Fleet coordination: one coordinator shards a campaign across N
//! registered daemons and merges their streamed results through a single
//! in-order committer — the engine's determinism story, lifted one level.
//!
//! # Shape
//!
//! The [`Coordinator`] is the fleet-scale analogue of
//! [`crate::engine::Engine`]: it owns the job queue, the campaign
//! [`Ledger`], the per-assignment leases, and the commit order. What it
//! does *not* own is workers — daemons dial in over TIPW v3 frames
//! ([`crate::proto::Request::Register`] /
//! [`crate::proto::Request::PollJob`] / [`crate::proto::Request::PushResult`]),
//! pull assignments, simulate locally, and push back **pre-rendered**
//! result bodies ([`tip_bench::ledger::render_completed`] /
//! [`tip_bench::ledger::render_failed`]). The coordinator's committer
//! writes those bytes through the shared [`Ledger`] in submission order, so
//! `journal.txt`, every `<bench>.result`, and `failures.txt` are
//! byte-identical to a local [`tip_bench::campaign`] run at any
//! (daemon × worker) fan-out.
//!
//! # Failure domains
//!
//! * **Daemon death / partition** — every assignment carries a lease; any
//!   contact from the holding daemon (beacon, poll, push) extends all of
//!   its leases. The reaper requeues assignments whose lease expired under
//!   a bumped epoch; a resurrected daemon pushing a result under the old
//!   epoch is refused (`accepted=false`) and counted in `stale`. Exactly
//!   one assignment's result ever reaches the ledger.
//! * **Coordinator death** — the ledger is crash-consistent (atomic
//!   renames, journal rewritten per commit). A restarted coordinator with
//!   `resume` skips the journalled prefix exactly like a local resumed
//!   campaign; daemons holding pre-crash assignments get
//!   [`crate::proto::ErrorCode::UnknownDaemon`] and re-register, and their
//!   stale pushes are discarded.
//! * **Overload** — the server layer sheds `Submit`s past the queue
//!   watermark with a typed `Overloaded`, exactly as for a local engine
//!   ([`Coordinator::queue_depth`] feeds the same check).
//! * **Drain** — `PollJob` answers `NoWork{draining:true}` (agents exit),
//!   in-flight pushes still commit, and the committer exits once nothing
//!   assigned remains; the journal then covers a clean prefix for resume.
//!
//! The agent half ([`run_agent`]) is what `tipd --join` runs: worker
//! threads polling/running/pushing plus one process-level beacon thread —
//! daemon-granular liveness, since a dead process takes all its workers
//! with it.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::client::{Client, ClientError};
use crate::engine::SubmitError;
use crate::proto::{DeltaFrame, ErrorCode, JobSpec, JobState, RemoteOutcome, ServerStats};
use tip_bench::campaign::{CompletedBench, FailedBench};
use tip_bench::executor::{run_job_streaming, Heartbeat, Job, JobMetrics, SpecRunner};
use tip_bench::experiments::SuiteRun;
use tip_bench::ledger::{one_line, render_completed, render_failed, result_path, Ledger};
use tip_bench::live::{DeltaEvent, DeltaSink, LiveAggregate};
use tip_bench::run::MAX_CYCLES;
use tip_isa::{Granularity, SymbolId};
use tip_ooo::CoreConfig;
use tip_workloads::{benchmark, SuiteScale, BENCHMARK_NAMES};

/// Default assignment lease. Shorter than the engine's worker lease: a
/// daemon beacons at `lease / 4` from a dedicated thread regardless of how
/// long its simulations run, so the lease only has to outlive network
/// jitter, not a benchmark attempt.
pub const DEFAULT_FLEET_LEASE: Duration = Duration::from_secs(10);

/// How many leases of total silence before a daemon's *registration* is
/// dropped (its assignments were already requeued after one lease); a
/// dropped daemon's next call gets `UnknownDaemon` and it re-registers.
const DEREGISTER_LEASES: u32 = 4;

/// How the coordinator runs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Campaign directory: journal, result files, failure report, metrics.
    pub out_dir: PathBuf,
    /// Skip benchmarks the directory's journal already records as done.
    pub resume: bool,
    /// Assignment lease: a daemon silent longer than this has its
    /// assignments requeued under a bumped epoch.
    pub lease: Duration,
    /// Live streaming aggregate daemon-pushed deltas are folded into;
    /// `None` creates a private one.
    pub live: Option<Arc<LiveAggregate>>,
}

impl CoordinatorConfig {
    /// A config with production defaults: fresh (no resume),
    /// [`DEFAULT_FLEET_LEASE`].
    #[must_use]
    pub fn new(out_dir: PathBuf) -> Self {
        CoordinatorConfig {
            out_dir,
            resume: false,
            lease: DEFAULT_FLEET_LEASE,
            live: None,
        }
    }
}

/// One registered daemon.
#[derive(Debug)]
struct DaemonInfo {
    /// Self-reported name (host:port or free text), for metrics and logs.
    #[allow(dead_code)]
    name: String,
    /// Worker threads the daemon runs (sizes the stats `workers` figure).
    workers: u32,
    /// Last time any frame arrived from this daemon.
    last_seen: Instant,
    /// Whether a poll has been answered `NoWork{draining: true}` — the
    /// daemon knows to exit, so a graceful shutdown may close the
    /// listener without stranding it.
    told_draining: bool,
}

/// What a fleet poll handed out.
#[derive(Debug, Clone, PartialEq)]
pub enum PollReply {
    /// One leased assignment.
    Assignment {
        /// Task id (echoed back in the push).
        task: u64,
        /// Lease epoch (echoed back in the push).
        epoch: u64,
        /// The job to run.
        spec: JobSpec,
    },
    /// Nothing assignable; `draining` means nothing ever will be again.
    NoWork {
        /// The coordinator is draining.
        draining: bool,
    },
}

/// Internal lifecycle of one fleet queue entry — the engine's phase
/// machine with `Running{worker}` generalized to `Assigned{daemon}`.
#[derive(Debug)]
enum Phase {
    Queued {
        skip: bool,
    },
    Assigned {
        daemon: u64,
    },
    /// Result received; parked for the committer.
    Settled,
    Done {
        ok: bool,
        attempts: u32,
    },
    Cancelled,
}

struct Entry {
    spec: JobSpec,
    /// The benchmark's canonical `&'static str` name (validated at submit).
    name: &'static str,
    phase: Phase,
    enqueued: Instant,
    /// Queue wait of the committed assignment (recorded at assignment).
    queue_wait: Duration,
    outcome: Option<RemoteOutcome>,
    /// Bumped on every reassignment; a push under a stale epoch is
    /// discarded.
    epoch: u64,
    /// Times the job was assigned to a daemon.
    assignments: u32,
    /// Lease deadline while `Assigned`.
    deadline: Option<Instant>,
    history: Vec<JobState>,
}

struct State {
    entries: Vec<Entry>,
    next_assign: usize,
    /// Reassigned tasks, handed out before the FIFO prefix.
    requeued: VecDeque<usize>,
    next_commit: usize,
    draining: bool,
    shutdown: bool,
    daemons: HashMap<u64, DaemonInfo>,
    next_daemon: u64,
    done_names: HashSet<String>,
    dedup: HashMap<u64, u64>,
    busy: Duration,
    wait_sum: Duration,
    settled: u32,
    done: u32,
    failed: u32,
    cancelled: u32,
    reassigned: u32,
    stale_results: u32,
    /// A daemon was reaped without ever being told the queue is
    /// draining — it may be partitioned rather than dead, so a graceful
    /// drain waits a full deregistration cutoff for it to re-register.
    reaped_untold: bool,
}

impl State {
    fn assigned_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Assigned { .. }))
            .count()
    }
}

struct Inner {
    state: Mutex<State>,
    /// Committer, reaper, and watchers sleep here for any state change.
    changed: Condvar,
    lease: Duration,
    started: Instant,
    out_dir: PathBuf,
    /// The streaming aggregate daemon-pushed delta flushes land in.
    live: Arc<LiveAggregate>,
}

/// The shared fleet coordinator. Cheap to clone; all clones drive one
/// queue.
#[derive(Clone)]
pub struct Coordinator {
    inner: Arc<Inner>,
    threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Coordinator {
    /// Opens the ledger (resuming the settled prefix if asked) and starts
    /// the committer and lease-reaper threads.
    #[must_use]
    pub fn start(config: &CoordinatorConfig) -> Coordinator {
        let ledger = Ledger::open(Some(&config.out_dir), config.resume);
        let done_names: HashSet<String> = ledger.done_names().into_iter().collect();
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_assign: 0,
                requeued: VecDeque::new(),
                next_commit: 0,
                draining: false,
                shutdown: false,
                daemons: HashMap::new(),
                next_daemon: 1,
                done_names,
                dedup: HashMap::new(),
                busy: Duration::ZERO,
                wait_sum: Duration::ZERO,
                settled: 0,
                done: 0,
                failed: 0,
                cancelled: 0,
                reassigned: 0,
                stale_results: 0,
                reaped_untold: false,
            }),
            changed: Condvar::new(),
            lease: config.lease.max(Duration::from_millis(1)),
            started: Instant::now(),
            out_dir: config.out_dir.clone(),
            live: config.live.clone().unwrap_or_default(),
        });
        let mut threads = Vec::with_capacity(2);
        {
            let inner = Arc::clone(&inner);
            threads.push(thread::spawn(move || committer_loop(&inner, ledger)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(thread::spawn(move || reaper_loop(&inner)));
        }
        Coordinator {
            inner,
            threads: Arc::new(Mutex::new(threads)),
        }
    }

    /// Registers a daemon, returning its fresh id and the lease duration
    /// in milliseconds. Every registration gets a new id — a restarted
    /// daemon never aliases its dead predecessor's leases.
    pub fn register(&self, name: &str, workers: u32) -> (u64, u64) {
        let mut state = self.inner.state.lock().expect("fleet lock");
        let id = state.next_daemon;
        state.next_daemon += 1;
        state.daemons.insert(
            id,
            DaemonInfo {
                name: name.to_owned(),
                workers: workers.max(1),
                last_seen: Instant::now(),
                told_draining: false,
            },
        );
        drop(state);
        self.inner.changed.notify_all();
        (id, self.inner.lease.as_millis() as u64)
    }

    /// A daemon's heartbeat: extends the leases of every assignment it
    /// holds and returns how many that is.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownDaemon`] if the id is not registered (the
    /// coordinator restarted or dropped the daemon as dead) — the daemon
    /// must re-register.
    pub fn beacon(&self, daemon: u64) -> Result<u32, ErrorCode> {
        let mut state = self.inner.state.lock().expect("fleet lock");
        touch(&mut state, daemon, self.inner.lease)
    }

    /// Hands the daemon one leased assignment, or `NoWork`. Polling also
    /// counts as a heartbeat. Reassigned tasks go out before the FIFO
    /// prefix (their watchers are already stalled), and keep going out
    /// during a drain so surviving daemons fill holes left by dead ones;
    /// fresh FIFO work stops at drain.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownDaemon`] — see [`Coordinator::beacon`].
    pub fn poll_job(&self, daemon: u64) -> Result<PollReply, ErrorCode> {
        let mut state = self.inner.state.lock().expect("fleet lock");
        touch(&mut state, daemon, self.inner.lease)?;
        let index = if let Some(index) = state.requeued.pop_front() {
            index
        } else {
            // Skip entries that will never need a daemon (cancelled,
            // resume-skips — the committer acknowledges those).
            while state.next_assign < state.entries.len()
                && !matches!(
                    state.entries[state.next_assign].phase,
                    Phase::Queued { skip: false }
                )
            {
                state.next_assign += 1;
                self.inner.changed.notify_all();
            }
            if state.next_assign < state.entries.len() && !state.draining {
                let index = state.next_assign;
                state.next_assign += 1;
                index
            } else {
                let draining = state.draining || state.shutdown;
                if draining {
                    if let Some(info) = state.daemons.get_mut(&daemon) {
                        info.told_draining = true;
                    }
                    drop(state);
                    self.inner.changed.notify_all();
                }
                return Ok(PollReply::NoWork { draining });
            }
        };
        let wait = state.entries[index].enqueued.elapsed();
        let entry = &mut state.entries[index];
        entry.phase = Phase::Assigned { daemon };
        entry.assignments += 1;
        entry.queue_wait = wait;
        entry.deadline = Some(Instant::now() + self.inner.lease);
        #[allow(clippy::cast_possible_truncation)]
        entry.history.push(JobState::Running {
            worker: daemon as u32,
        });
        let reply = PollReply::Assignment {
            task: index as u64 + 1,
            epoch: entry.epoch,
            spec: entry.spec.clone(),
        };
        drop(state);
        self.inner.changed.notify_all();
        Ok(reply)
    }

    /// Accepts one pushed result. Returns whether it was (or already had
    /// been) committed under this epoch; `false` means the epoch was stale
    /// — the task was reassigned while the daemon was silent — and the
    /// result was discarded. Duplicate pushes for an already-settled task
    /// under the live epoch are acked `true` without committing twice, so
    /// a daemon retrying a lost ack is safe.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownDaemon`] — see [`Coordinator::beacon`].
    pub fn push_result(
        &self,
        daemon: u64,
        task: u64,
        epoch: u64,
        outcome: RemoteOutcome,
    ) -> Result<bool, ErrorCode> {
        let mut state = self.inner.state.lock().expect("fleet lock");
        touch(&mut state, daemon, self.inner.lease)?;
        let Some(index) = task
            .checked_sub(1)
            .and_then(|i| usize::try_from(i).ok())
            .filter(|&i| i < state.entries.len())
        else {
            return Ok(false);
        };
        let entry = &mut state.entries[index];
        if entry.epoch != epoch {
            state.stale_results += 1;
            return Ok(false);
        }
        match entry.phase {
            Phase::Assigned { .. } => {
                entry.outcome = Some(outcome);
                entry.phase = Phase::Settled;
                entry.deadline = None;
                drop(state);
                self.inner.changed.notify_all();
                Ok(true)
            }
            // Same epoch, already settled or committed: the daemon is
            // retrying a push whose ack got lost. Idempotent.
            Phase::Settled | Phase::Done { .. } => Ok(true),
            _ => {
                state.stale_results += 1;
                Ok(false)
            }
        }
    }

    /// Folds one daemon-pushed delta flush into the live aggregate.
    /// Counts as a heartbeat (streaming *is* liveness). Returns whether
    /// the flush was accepted: a daemon pushing for a benchmark it does
    /// not currently hold — its lease expired and the job was reassigned —
    /// is refused, so a resurrected daemon cannot pollute the fresh
    /// assignment's slot. Purely observational either way.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownDaemon`] — see [`Coordinator::beacon`].
    pub fn accept_delta(&self, daemon: u64, event: &DeltaEvent) -> Result<bool, ErrorCode> {
        let mut state = self.inner.state.lock().expect("fleet lock");
        touch(&mut state, daemon, self.inner.lease)?;
        let holds = state.entries.iter().any(|e| {
            e.name == event.bench && matches!(e.phase, Phase::Assigned { daemon: d } if d == daemon)
        });
        drop(state);
        if holds {
            self.inner.live.ingest(event);
        }
        Ok(holds)
    }

    /// The coordinator's live streaming aggregate.
    #[must_use]
    pub fn live(&self) -> Arc<LiveAggregate> {
        Arc::clone(&self.inner.live)
    }

    /// The submitted scale of `bench`, for server-side symbol resolution.
    /// `None` until a job for that benchmark has been submitted.
    #[must_use]
    pub fn scale_of(&self, bench: &str) -> Option<SuiteScale> {
        let state = self.inner.state.lock().expect("fleet lock");
        state
            .entries
            .iter()
            .find(|e| e.name == bench)
            .map(|e| e.spec.scale)
    }

    /// Human-readable names for `syms` of `bench` at granularity `g`.
    /// The coordinator never resolves programs itself (daemons do), so
    /// this regenerates the benchmark — callers should cache.
    #[must_use]
    pub fn symbol_names(&self, bench: &str, g: Granularity, syms: &[u32]) -> Option<Vec<String>> {
        let scale = self.scale_of(bench)?;
        let name = BENCHMARK_NAMES.iter().find(|&&n| n == bench)?;
        let program = benchmark(name, scale).program;
        let n = program.num_symbols(g) as u32;
        Some(
            syms.iter()
                .map(|&s| {
                    if s < n {
                        program.symbol_name(g, SymbolId(s))
                    } else {
                        format!("sym{s}")
                    }
                })
                .collect(),
        )
    }

    /// Enqueues a job with an idempotency key — the fleet analogue of
    /// [`crate::engine::Engine::submit_deduped`], with identical
    /// validation and resume-skip semantics. The program itself is *not*
    /// generated here: daemons regenerate it from the bench name, which
    /// keeps assignments small and artifacts byte-identical.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for an unknown benchmark or core preset, or when
    /// the coordinator is draining.
    pub fn submit_deduped(&self, spec: &JobSpec, req_id: u64) -> Result<u64, SubmitError> {
        let Some(&name) = BENCHMARK_NAMES.iter().find(|&&n| n == spec.bench) else {
            return Err(SubmitError::UnknownBench(spec.bench.clone()));
        };
        resolve_core(&spec.core)?;
        let mut state = self.inner.state.lock().expect("fleet lock");
        if req_id != 0 {
            if let Some(&id) = state.dedup.get(&req_id) {
                return Ok(id);
            }
        }
        if state.draining || state.shutdown {
            return Err(SubmitError::Draining);
        }
        let skip = state.done_names.contains(name);
        let ahead = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count() as u32;
        state.entries.push(Entry {
            spec: spec.clone(),
            name,
            phase: Phase::Queued { skip },
            enqueued: Instant::now(),
            queue_wait: Duration::ZERO,
            outcome: None,
            epoch: 0,
            assignments: 0,
            deadline: None,
            history: vec![JobState::Queued { ahead }],
        });
        let id = state.entries.len() as u64;
        if req_id != 0 {
            state.dedup.insert(req_id, id);
        }
        drop(state);
        self.inner.changed.notify_all();
        Ok(id)
    }

    /// The benchmark name a job runs, for live-view lookups. `None` for an
    /// unknown id.
    #[must_use]
    pub fn bench_of(&self, job: u64) -> Option<String> {
        let state = self.inner.state.lock().expect("fleet lock");
        let index = job_index(&state, job)?;
        Some(state.entries[index].name.to_owned())
    }

    /// The job's current externally visible state, or `None` for an
    /// unknown id.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobState> {
        let state = self.inner.state.lock().expect("fleet lock");
        let index = job_index(&state, job)?;
        Some(match state.entries[index].phase {
            Phase::Queued { .. } => JobState::Queued {
                ahead: state.entries[state.next_assign.min(index)..index]
                    .iter()
                    .filter(|e| matches!(e.phase, Phase::Queued { .. }))
                    .count() as u32,
            },
            #[allow(clippy::cast_possible_truncation)]
            Phase::Assigned { daemon } => JobState::Running {
                worker: daemon as u32,
            },
            // Settled-but-uncommitted reports as still running: `Done`
            // must imply the result file is on disk.
            Phase::Settled => JobState::Running { worker: 0 },
            Phase::Done { ok, attempts } => JobState::Done { ok, attempts },
            Phase::Cancelled => JobState::Cancelled,
        })
    }

    /// The job's progress history from `from_seq` on; `None` for an
    /// unknown id.
    #[must_use]
    pub fn history_from(&self, job: u64, from_seq: u64) -> Option<Vec<(u64, JobState)>> {
        let state = self.inner.state.lock().expect("fleet lock");
        let index = job_index(&state, job)?;
        Some(history_tail(&state.entries[index], from_seq))
    }

    /// Blocks until the job's history grows past `from_seq` (or the
    /// timeout elapses). `None` for an unknown id.
    #[must_use]
    pub fn wait_history(
        &self,
        job: u64,
        from_seq: u64,
        timeout: Duration,
    ) -> Option<Vec<(u64, JobState)>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("fleet lock");
        let index = job_index(&state, job)?;
        loop {
            let tail = history_tail(&state.entries[index], from_seq);
            if !tail.is_empty() {
                return Some(tail);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(tail);
            }
            state = self
                .inner
                .changed
                .wait_timeout(state, left)
                .expect("fleet lock")
                .0;
        }
    }

    /// Jobs waiting in the queue — the server's load-shedding figure.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        let state = self.inner.state.lock().expect("fleet lock");
        state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count()
    }

    /// Cancels a still-queued job (same rules as the engine: never
    /// assigned, not a resume-skip).
    #[must_use]
    pub fn cancel(&self, job: u64) -> bool {
        let mut state = self.inner.state.lock().expect("fleet lock");
        let Some(index) = job_index(&state, job) else {
            return false;
        };
        if index < state.next_assign
            || !matches!(state.entries[index].phase, Phase::Queued { skip: false })
        {
            return false;
        }
        state.entries[index].phase = Phase::Cancelled;
        state.entries[index].history.push(JobState::Cancelled);
        state.cancelled += 1;
        drop(state);
        self.inner.changed.notify_all();
        true
    }

    /// Reads a finished job's result file back.
    ///
    /// # Errors
    ///
    /// A one-line reason when the job is unknown, not finished, cancelled,
    /// or its file cannot be read.
    pub fn result(&self, job: u64) -> Result<String, String> {
        let bench = {
            let state = self.inner.state.lock().expect("fleet lock");
            let Some(index) = job_index(&state, job) else {
                return Err(format!("unknown job {job}"));
            };
            match state.entries[index].phase {
                Phase::Done { .. } => state.entries[index].name.to_owned(),
                Phase::Cancelled => return Err(format!("job {job} was cancelled")),
                _ => return Err(format!("job {job} has not finished")),
            }
        };
        std::fs::read_to_string(result_path(&self.inner.out_dir, &bench))
            .map_err(|e| format!("result file unreadable: {e}"))
    }

    /// A snapshot of the coordinator's counters (`connections` and `shed`
    /// are left 0 for the server layer).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let state = self.inner.state.lock().expect("fleet lock");
        let queued = state
            .entries
            .iter()
            .filter(|e| matches!(e.phase, Phase::Queued { .. }))
            .count() as u32;
        let running = state.assigned_count() as u32;
        let workers: u32 = state.daemons.values().map(|d| d.workers).sum();
        let uptime = self.inner.started.elapsed();
        let worker_seconds = uptime.as_secs_f64() * f64::from(workers.max(1));
        ServerStats {
            queued,
            running,
            done: state.done,
            failed: state.failed,
            cancelled: state.cancelled,
            workers,
            connections: 0,
            mean_queue_wait_ms: if state.settled > 0 {
                state.wait_sum.as_secs_f64() * 1e3 / f64::from(state.settled)
            } else {
                0.0
            },
            worker_utilization: if worker_seconds > 0.0 {
                (state.busy.as_secs_f64() / worker_seconds).min(1.0)
            } else {
                0.0
            },
            uptime_ms: uptime.as_millis() as u64,
            reassigned: state.reassigned,
            shed: 0,
            daemons: state.daemons.len() as u32,
            stale: state.stale_results,
            deltas: 0,
            streamed: 0,
        }
    }

    /// Stale pushes discarded so far (test observability).
    #[must_use]
    pub fn stale_results(&self) -> u32 {
        self.inner.state.lock().expect("fleet lock").stale_results
    }

    /// Stops handing out fresh work; reassignments still go out so
    /// surviving daemons can fill holes, and in-flight pushes still
    /// commit.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("fleet lock");
        state.draining = true;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// Blocks until every registered daemon has been answered with a
    /// draining `NoWork` — or has lapsed and been reaped — so a graceful
    /// shutdown can close the listener without stranding agents: they
    /// dial per request, and a listener that vanishes before the drain
    /// broadcast leaves them spinning out their give-up window.
    ///
    /// Sending the notice is not the same as the agent decoding it: a
    /// chaotic link can corrupt the one reply that carried it, and the
    /// agent's retry must still find the listener up. A told agent that
    /// got the notice exits and goes silent; one that missed it keeps
    /// dialing. So beyond `told_draining`, every registered daemon must
    /// also have been *quiet* for a settle window (longer than the
    /// client's retry backoff) before the wait releases.
    ///
    /// If any daemon was ever reaped *without* hearing the notice, it may
    /// be partitioned rather than dead (a chaotic link can silence an
    /// agent past the deregistration cutoff), so the wait holds for the
    /// full window regardless — a live agent re-registers well within it,
    /// gets its `NoWork{draining}`, and exits clean. Bounded either way:
    /// one deregistration cutoff (plus a settle window) past the call, a
    /// daemon that never contacted again is exactly a dead one.
    pub fn wait_agents_released(&self) {
        let cutoff = self.inner.lease * (DEREGISTER_LEASES + 1);
        let settle = self
            .inner
            .lease
            .clamp(Duration::from_secs(1), Duration::from_secs(2));
        let start = Instant::now();
        let deadline = start + cutoff;
        let hard_cap = deadline + settle;
        let mut state = self.inner.state.lock().expect("fleet lock");
        loop {
            let now = Instant::now();
            if now >= hard_cap {
                return;
            }
            let all_told = state.daemons.values().all(|d| d.told_draining);
            let quiet = state
                .daemons
                .values()
                .all(|d| now.duration_since(d.last_seen) >= settle);
            if all_told && quiet && (!state.reaped_untold || now >= deadline) {
                return;
            }
            let wait = (hard_cap - now).min(Duration::from_millis(50));
            let (guard, _) = self
                .inner
                .changed
                .wait_timeout(state, wait)
                .expect("fleet lock");
            state = guard;
        }
    }

    /// Shuts down and joins the committer and reaper, writing the final
    /// `metrics.txt`. With `drain`, waits for in-flight assignments to
    /// push (bounded by the lease: a dead daemon's assignment expires and
    /// is abandoned); without, assignments are force-expired so anything
    /// pushed afterwards is discarded as stale. Idempotent.
    pub fn shutdown(&self, drain: bool) {
        {
            let mut state = self.inner.state.lock().expect("fleet lock");
            state.draining = true;
            state.shutdown = true;
            if !drain {
                for index in 0..state.entries.len() {
                    let entry = &mut state.entries[index];
                    if matches!(entry.phase, Phase::Assigned { .. }) {
                        entry.epoch += 1;
                        entry.phase = Phase::Queued { skip: false };
                        entry.deadline = None;
                        entry.history.push(JobState::Queued { ahead: 0 });
                    }
                }
            }
        }
        self.inner.changed.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().expect("fleet threads"));
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Marks contact from a daemon: refreshes its registration and extends
/// every lease it holds. The common prologue of beacon/poll/push.
fn touch(state: &mut State, daemon: u64, lease: Duration) -> Result<u32, ErrorCode> {
    if !state.daemons.contains_key(&daemon) {
        return Err(ErrorCode::UnknownDaemon);
    }
    let now = Instant::now();
    if let Some(info) = state.daemons.get_mut(&daemon) {
        info.last_seen = now;
    }
    let mut tasks = 0;
    for entry in &mut state.entries {
        if matches!(entry.phase, Phase::Assigned { daemon: d } if d == daemon) {
            entry.deadline = Some(now + lease);
            tasks += 1;
        }
    }
    Ok(tasks)
}

fn history_tail(entry: &Entry, from_seq: u64) -> Vec<(u64, JobState)> {
    let start = usize::try_from(from_seq).unwrap_or(usize::MAX);
    entry
        .history
        .iter()
        .enumerate()
        .skip(start)
        .map(|(i, &s)| (i as u64, s))
        .collect()
}

fn job_index(state: &State, job: u64) -> Option<usize> {
    let index = usize::try_from(job.checked_sub(1)?).ok()?;
    (index < state.entries.len()).then_some(index)
}

fn resolve_core(preset: &str) -> Result<CoreConfig, SubmitError> {
    match preset {
        "" | "default" | "boom-4w" => Ok(CoreConfig::default()),
        other => Err(SubmitError::UnknownCore(other.to_owned())),
    }
}

/// The fleet lease reaper: requeues assignments whose lease expired with
/// no contact from the holding daemon, and drops registrations that have
/// been silent for [`DEREGISTER_LEASES`] leases.
fn reaper_loop(inner: &Inner) {
    let interval = (inner.lease / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
    let mut state = inner.state.lock().expect("fleet lock");
    loop {
        if state.shutdown && state.assigned_count() == 0 {
            return;
        }
        let now = Instant::now();
        let mut requeued_any = false;
        for index in 0..state.entries.len() {
            let entry = &mut state.entries[index];
            if !matches!(entry.phase, Phase::Assigned { .. }) {
                continue;
            }
            let Some(deadline) = entry.deadline else {
                continue;
            };
            if now < deadline {
                continue;
            }
            // Lease expired: the daemon is silent or dead. Requeue under a
            // bumped epoch; whatever the daemon eventually pushes for the
            // old epoch is discarded.
            entry.epoch += 1;
            entry.phase = Phase::Queued { skip: false };
            entry.deadline = None;
            entry.history.push(JobState::Queued { ahead: 0 });
            state.requeued.push_back(index);
            state.reassigned += 1;
            requeued_any = true;
        }
        let cutoff = inner.lease * DEREGISTER_LEASES;
        let mut reaped_untold = false;
        state.daemons.retain(|_, info| {
            let keep = now.duration_since(info.last_seen) < cutoff;
            if !keep && !info.told_draining {
                // A daemon vanished without ever hearing the drain
                // notice. If it is merely partitioned (not dead), it
                // will re-register — a graceful drain must hold the
                // listener open long enough to tell it.
                reaped_untold = true;
            }
            keep
        });
        if reaped_untold {
            state.reaped_untold = true;
        }
        if requeued_any || reaped_untold {
            inner.changed.notify_all();
        }
        state = inner
            .changed
            .wait_timeout(state, interval)
            .expect("fleet lock")
            .0;
    }
}

/// Work the fleet committer performs outside the lock.
enum CommitStep {
    Skip,
    Cancelled,
    Outcome(Box<RemoteOutcome>),
    Exit,
}

fn committer_loop(inner: &Inner, mut ledger: Ledger) {
    loop {
        let (step, index) = {
            let mut state = inner.state.lock().expect("fleet lock");
            loop {
                let i = state.next_commit;
                if i < state.entries.len() {
                    match state.entries[i].phase {
                        Phase::Settled => {
                            let outcome = state.entries[i].outcome.take().expect("settled outcome");
                            break (CommitStep::Outcome(Box::new(outcome)), i);
                        }
                        Phase::Cancelled => break (CommitStep::Cancelled, i),
                        Phase::Queued { skip: true } => break (CommitStep::Skip, i),
                        _ => {}
                    }
                }
                // Exit once nothing ahead can ever settle: shutdown was
                // requested and no assignment is outstanding (a drain
                // waits at most one lease for dead daemons' assignments
                // to expire). Anything still unsettled stays unjournaled
                // — a restarted coordinator re-dispatches it from the
                // journal.
                if state.shutdown && state.assigned_count() == 0 {
                    break (CommitStep::Exit, i);
                }
                state = inner.changed.wait(state).expect("fleet lock");
            }
        };
        match step {
            CommitStep::Exit => break,
            CommitStep::Skip => {
                ledger.note_skipped();
                let mut state = inner.state.lock().expect("fleet lock");
                state.entries[index].phase = Phase::Done {
                    ok: true,
                    attempts: 0,
                };
                state.entries[index].history.push(JobState::Done {
                    ok: true,
                    attempts: 0,
                });
                state.done += 1;
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Cancelled => {
                let mut state = inner.state.lock().expect("fleet lock");
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
            CommitStep::Outcome(outcome) => {
                let (name, metrics) = {
                    let mut state = inner.state.lock().expect("fleet lock");
                    let wall = Duration::from_secs_f64(outcome.wall_ms.max(0.0) / 1e3);
                    let queue_wait = state.entries[index].queue_wait;
                    state.busy += wall;
                    state.wait_sum += queue_wait;
                    state.settled += 1;
                    let e = &state.entries[index];
                    // `Settled` already cleared the assignment; the last
                    // Running history entry carries the daemon that ran it.
                    let daemon = e
                        .history
                        .iter()
                        .rev()
                        .find_map(|s| match s {
                            JobState::Running { worker } => Some(*worker),
                            _ => None,
                        })
                        .unwrap_or(0);
                    let metrics = JobMetrics {
                        wall,
                        queue_wait,
                        worker: outcome.worker as usize,
                        assignments: e.assignments,
                        daemon,
                        cycles: outcome.cycles,
                        instructions: outcome.instructions,
                        ipc: outcome.ipc,
                    };
                    (e.name, metrics)
                };
                let ok = outcome.ok;
                let attempts = outcome.attempts;
                ledger.commit_remote(
                    name,
                    ok,
                    attempts,
                    &outcome.body,
                    &outcome.error_line,
                    metrics,
                );
                inner.live.mark_settled(name, ok);
                let mut state = inner.state.lock().expect("fleet lock");
                state.entries[index].phase = Phase::Done { ok, attempts };
                state.entries[index]
                    .history
                    .push(JobState::Done { ok, attempts });
                state.done_names.insert(name.to_owned());
                if ok {
                    state.done += 1;
                } else {
                    state.failed += 1;
                }
                state.next_commit += 1;
                drop(state);
                inner.changed.notify_all();
            }
        }
    }
    let workers: usize = {
        let state = inner.state.lock().expect("fleet lock");
        state.daemons.values().map(|d| d.workers as usize).sum()
    };
    ledger.finish(tip_bench::executor::ExecSummary {
        workers: workers.max(1),
        wall: inner.started.elapsed(),
    });
}

// ---------------------------------------------------------------------------
// Agent: the daemon half of the fleet (what `tipd --join` runs).
// ---------------------------------------------------------------------------

/// How a fleet agent runs.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Self-reported name (host:port or free text) for the coordinator's
    /// registry.
    pub name: String,
    /// Worker threads pulling assignments.
    pub workers: usize,
    /// Give up after this long without a single successful call — the
    /// coordinator is gone for good, not restarting. Generous by default
    /// so a `kill -9` + `--resume` restart window never strands the fleet.
    pub give_up_after: Duration,
}

impl AgentConfig {
    /// A config with production defaults: 1 worker, 60 s give-up window.
    #[must_use]
    pub fn new(coordinator: String) -> Self {
        AgentConfig {
            name: format!("agent@{coordinator}"),
            coordinator,
            workers: 1,
            give_up_after: Duration::from_secs(60),
        }
    }
}

/// Shared agent session: the current daemon id, re-registered on
/// [`ErrorCode::UnknownDaemon`] by whichever thread hits it first.
struct Session {
    client: Client,
    daemon: AtomicU64,
    lease_ms: AtomicU64,
    /// Set when the coordinator says it is draining; all threads exit.
    done: AtomicBool,
    /// Last successful call, for the give-up window.
    last_ok: Mutex<Instant>,
    registration: Mutex<()>,
    name: String,
    workers: u32,
}

impl Session {
    fn mark_ok(&self) {
        *self.last_ok.lock().expect("agent clock") = Instant::now();
    }

    fn silent_for(&self) -> Duration {
        self.last_ok.lock().expect("agent clock").elapsed()
    }

    /// (Re-)registers with the coordinator. Serialized so a burst of
    /// `UnknownDaemon` refusals across threads yields one new id, not N.
    fn reregister(&self, stale_id: u64) -> Result<(), ClientError> {
        let _guard = self.registration.lock().expect("agent registration");
        if self.daemon.load(Ordering::SeqCst) != stale_id {
            return Ok(()); // Another thread already re-registered.
        }
        let (daemon, lease_ms) = self.client.register(&self.name, self.workers)?;
        self.lease_ms.store(lease_ms.max(1), Ordering::SeqCst);
        self.daemon.store(daemon, Ordering::SeqCst);
        self.mark_ok();
        Ok(())
    }
}

/// Runs a fleet agent against `config.coordinator` until the coordinator
/// drains (clean exit) or stays unreachable past the give-up window.
///
/// Worker threads poll for assignments, regenerate and run the benchmark
/// locally through the exact [`run_job`] retry ladder a local campaign
/// uses, render the result-file bytes on the spot, and push them back. One
/// beacon thread heartbeats at a quarter of the coordinator's lease —
/// process-level liveness, since a dead process takes every worker with
/// it. Any thread refused with `UnknownDaemon` re-registers (the
/// coordinator restarted); in-flight results pushed under the old
/// registration are discarded by the coordinator's epoch check, and the
/// re-dispatched assignment re-runs them deterministically.
///
/// # Errors
///
/// [`ClientError`] when registration never succeeds or the coordinator
/// stays unreachable past `config.give_up_after`.
pub fn run_agent(config: &AgentConfig) -> Result<(), ClientError> {
    let client = Client::new(&config.coordinator);
    #[allow(clippy::cast_possible_truncation)]
    let workers = config.workers.max(1) as u32;
    let (daemon, lease_ms) = client.register(&config.name, workers)?;
    let session = Arc::new(Session {
        client,
        daemon: AtomicU64::new(daemon),
        lease_ms: AtomicU64::new(lease_ms.max(1)),
        done: AtomicBool::new(false),
        last_ok: Mutex::new(Instant::now()),
        registration: Mutex::new(()),
        name: config.name.clone(),
        workers,
    });
    let give_up = config.give_up_after;

    let beacon = {
        let session = Arc::clone(&session);
        thread::spawn(move || beacon_loop(&session, give_up))
    };
    let mut workers_joined = Vec::new();
    for worker in 0..config.workers.max(1) {
        let session = Arc::clone(&session);
        workers_joined.push(thread::spawn(move || {
            worker_loop(&session, worker, give_up)
        }));
    }
    let mut result = Ok(());
    for t in workers_joined {
        if let Ok(Err(e)) = t.join().map_err(|_| ()) {
            result = Err(e);
        }
    }
    session.done.store(true, Ordering::SeqCst);
    let _ = beacon.join();
    result
}

/// One call's outcome, folded into the agent's liveness accounting.
fn note<T>(session: &Session, res: &Result<T, ClientError>) {
    if res.is_ok() {
        session.mark_ok();
    }
}

/// Handles an `UnknownDaemon` refusal: re-register under a fresh id.
/// Returns whether the caller should retry its operation.
fn handle_unknown(session: &Session, stale_id: u64) -> bool {
    match session.reregister(stale_id) {
        Ok(()) => true,
        Err(_) => false,
    }
}

fn is_unknown_daemon(err: &ClientError) -> bool {
    matches!(
        err,
        ClientError::Server {
            code: ErrorCode::UnknownDaemon,
            ..
        }
    )
}

fn beacon_loop(session: &Session, give_up: Duration) {
    loop {
        let lease_ms = session.lease_ms.load(Ordering::SeqCst);
        let pause = Duration::from_millis((lease_ms / 4).max(1));
        let deadline = Instant::now() + pause;
        while Instant::now() < deadline {
            if session.done.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(10));
        }
        let id = session.daemon.load(Ordering::SeqCst);
        let res = session.client.beacon(id);
        note(session, &res);
        match res {
            Ok(_) => {}
            Err(e) if is_unknown_daemon(&e) => {
                let _ = handle_unknown(session, id);
            }
            Err(_) => {
                if session.silent_for() > give_up {
                    return;
                }
            }
        }
    }
}

/// Pause between empty polls: short enough to keep Test-scale campaigns
/// snappy, long enough not to hammer the coordinator.
const POLL_PAUSE: Duration = Duration::from_millis(20);

fn worker_loop(
    session: &Arc<Session>,
    worker: usize,
    give_up: Duration,
) -> Result<(), ClientError> {
    loop {
        if session.done.load(Ordering::SeqCst) {
            return Ok(());
        }
        let id = session.daemon.load(Ordering::SeqCst);
        let res = session.client.poll_job(id);
        note(session, &res);
        let (task, epoch, spec) = match res {
            Ok(PollReply::Assignment { task, epoch, spec }) => (task, epoch, spec),
            Ok(PollReply::NoWork { draining: true }) => {
                session.done.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(PollReply::NoWork { draining: false }) => {
                thread::sleep(POLL_PAUSE);
                continue;
            }
            Err(e) if is_unknown_daemon(&e) => {
                if !handle_unknown(session, id) && session.silent_for() > give_up {
                    return Err(e);
                }
                continue;
            }
            Err(e) => {
                if session.silent_for() > give_up {
                    return Err(e);
                }
                thread::sleep(POLL_PAUSE);
                continue;
            }
        };
        // Stream delta flushes to the coordinator as the run progresses —
        // the "piggybacked on pushes" half of fleet liveness: each flush
        // extends the leases like a beacon. Best-effort by design: a lost
        // or refused frame costs live visibility, never correctness (the
        // authoritative result still travels in the final push).
        let sink = {
            let session = Arc::clone(session);
            DeltaSink::new(move |event| {
                let id = session.daemon.load(Ordering::SeqCst);
                let frame = DeltaFrame::from_event(&event);
                let res = session.client.push_delta(id, &frame);
                note(&session, &res);
            })
        };
        let outcome = run_assignment(&spec, worker, task, &sink);
        // Push until acked; a lost ack retries idempotently, a stale epoch
        // or unknown-task refusal just drops the result (the coordinator
        // reassigned it).
        loop {
            let id = session.daemon.load(Ordering::SeqCst);
            let res = session.client.push_result(id, task, epoch, &outcome);
            note(session, &res);
            match res {
                Ok(_accepted) => break,
                Err(e) if is_unknown_daemon(&e) => {
                    // The coordinator restarted: this result belongs to a
                    // dead incarnation's assignment. Re-register and drop
                    // it; the re-dispatched job re-runs deterministically.
                    let _ = handle_unknown(session, id);
                    break;
                }
                Err(e) => {
                    if session.silent_for() > give_up {
                        return Err(e);
                    }
                    thread::sleep(POLL_PAUSE);
                }
            }
        }
    }
}

/// Runs one assignment exactly like a local campaign worker would and
/// renders the result-file bytes the coordinator will persist verbatim.
/// Delta flushes stream through `sink` while the run progresses.
fn run_assignment(spec: &JobSpec, worker: usize, task: u64, sink: &DeltaSink) -> RemoteOutcome {
    let Some(&name) = BENCHMARK_NAMES.iter().find(|&&n| n == spec.bench) else {
        return refused_outcome(worker, &format!("unknown bench {:?}", spec.bench));
    };
    let Ok(core) = resolve_core(&spec.core) else {
        return refused_outcome(worker, &format!("unknown core {:?}", spec.core));
    };
    let bench = benchmark(name, spec.scale);
    let job = Job {
        bench,
        seed: spec.seed,
        core,
        sampler: spec.sampler,
        profilers: spec.profilers.clone(),
        checkpoint: None,
        max_attempts: spec.max_attempts.max(1),
        max_cycles: MAX_CYCLES,
        pgo: spec.pgo,
    };
    let index = usize::try_from(task.saturating_sub(1)).unwrap_or(0);
    let outcome = run_job_streaming(
        index,
        &job,
        &SpecRunner,
        Duration::ZERO,
        worker,
        &Heartbeat::live(),
        sink,
    );
    let attempts = outcome.attempts;
    let metrics = outcome.metrics;
    #[allow(clippy::cast_possible_truncation)]
    let worker = worker as u32;
    match outcome.result {
        Ok(run) => {
            let completed = CompletedBench {
                run: SuiteRun {
                    bench: job.bench,
                    run,
                },
                attempts,
            };
            let body = render_completed(&completed, &spec.profilers);
            RemoteOutcome {
                ok: true,
                attempts,
                body,
                error_line: String::new(),
                wall_ms: metrics.wall.as_secs_f64() * 1e3,
                worker,
                cycles: metrics.cycles,
                instructions: metrics.instructions,
                ipc: metrics.ipc,
            }
        }
        Err(error) => {
            let failed = FailedBench {
                name,
                attempts,
                error,
            };
            let body = render_failed(&failed);
            let error_line = one_line(&failed.error.to_string());
            RemoteOutcome {
                ok: false,
                attempts,
                body,
                error_line,
                wall_ms: metrics.wall.as_secs_f64() * 1e3,
                worker,
                cycles: 0,
                instructions: 0,
                ipc: 0.0,
            }
        }
    }
}

/// An assignment the agent could not even start (a spec that validates on
/// the coordinator but not here means skewed builds). Reported as a failed
/// job rather than dropped, so the campaign settles instead of wedging.
fn refused_outcome(worker: usize, message: &str) -> RemoteOutcome {
    #[allow(clippy::cast_possible_truncation)]
    RemoteOutcome {
        ok: false,
        attempts: 0,
        body: format!("status=failed\nerror={message}\n"),
        error_line: message.to_owned(),
        wall_ms: 0.0,
        worker: worker as u32,
        cycles: 0,
        instructions: 0,
        ipc: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tip_workloads::SuiteScale;

    fn spec(bench: &str) -> JobSpec {
        let mut s = JobSpec::new(bench, SuiteScale::Test);
        s.profilers = vec![tip_core::ProfilerId::Tip];
        s
    }

    fn outcome_for(c: &Coordinator, spec_: &JobSpec, task: u64) -> RemoteOutcome {
        let _ = c; // Coordinator-independent: the agent renders locally.
        run_assignment(spec_, 0, task, &DeltaSink::noop())
    }

    #[test]
    fn register_assign_push_commits_in_order() {
        let dir = std::env::temp_dir().join(format!("tip-fleet-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let c = Coordinator::start(&CoordinatorConfig {
            out_dir: dir.clone(),
            resume: false,
            lease: Duration::from_secs(30),
            live: None,
        });
        let (daemon, lease_ms) = c.register("unit", 2);
        assert!(daemon >= 1);
        assert_eq!(lease_ms, 30_000);
        let a = c.submit_deduped(&spec("mcf"), 0).expect("submit");
        let b = c.submit_deduped(&spec("exchange2"), 0).expect("submit");
        assert_eq!((a, b), (1, 2));

        // Pull both, push out of order; the committer still writes in
        // submission order and both reach Done.
        let Ok(PollReply::Assignment {
            task: t1,
            epoch: e1,
            spec: s1,
        }) = c.poll_job(daemon)
        else {
            panic!("expected assignment")
        };
        let Ok(PollReply::Assignment {
            task: t2,
            epoch: e2,
            spec: s2,
        }) = c.poll_job(daemon)
        else {
            panic!("expected assignment")
        };
        assert_eq!((t1, t2), (1, 2));
        let o2 = outcome_for(&c, &s2, t2);
        let o1 = outcome_for(&c, &s1, t1);
        assert!(c.push_result(daemon, t2, e2, o2).expect("push"));
        assert!(c.push_result(daemon, t1, e1, o1.clone()).expect("push"));
        // Duplicate push (lost ack): still acked, not double-committed.
        assert!(c.push_result(daemon, t1, e1, o1).expect("push"));

        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let done = matches!(c.status(1), Some(JobState::Done { ok: true, .. }))
                && matches!(c.status(2), Some(JobState::Done { ok: true, .. }));
            if done {
                break;
            }
            assert!(Instant::now() < deadline, "commit timed out");
            thread::sleep(Duration::from_millis(10));
        }
        c.shutdown(true);
        let journal = std::fs::read_to_string(dir.join("journal.txt")).expect("journal");
        assert_eq!(journal, "done mcf\ndone exchange2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_reassigns_and_discards_the_stale_push() {
        let dir = std::env::temp_dir().join(format!("tip-fleet-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let c = Coordinator::start(&CoordinatorConfig {
            out_dir: dir.clone(),
            resume: false,
            lease: Duration::from_millis(40),
            live: None,
        });
        let (dead, _) = c.register("dead", 1);
        assert_eq!(c.submit_deduped(&spec("mcf"), 0).expect("submit"), 1);
        let Ok(PollReply::Assignment {
            task,
            epoch,
            spec: s,
        }) = c.poll_job(dead)
        else {
            panic!("expected assignment")
        };
        // Go silent past the lease; the reaper requeues under a new epoch.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if c.stats().reassigned >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "reaper never fired");
            thread::sleep(Duration::from_millis(10));
        }
        // The dead daemon may have been deregistered outright (silence past
        // DEREGISTER_LEASES); both refusal shapes discard the result.
        let o = outcome_for(&c, &s, task);
        match c.push_result(dead, task, epoch, o.clone()) {
            Ok(accepted) => {
                assert!(!accepted, "stale push must be refused");
                assert_eq!(c.stale_results(), 1);
            }
            Err(code) => assert_eq!(code, ErrorCode::UnknownDaemon),
        }
        // A live daemon picks the job back up and settles it for real.
        let (live, _) = c.register("live", 1);
        let Ok(PollReply::Assignment {
            task: t2,
            epoch: e2,
            spec: s2,
        }) = c.poll_job(live)
        else {
            panic!("expected reassignment")
        };
        assert_eq!(t2, task);
        assert!(e2 > epoch);
        assert_eq!(s2, s);
        // The result bytes are deterministic — same spec, same task — so
        // the dead daemon's rendered outcome is exactly what the live one
        // would produce. The tiny test lease may keep expiring while we
        // push, so chase the epoch until a push lands.
        let mut accepted = c.push_result(live, t2, e2, o.clone()).expect("push");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !accepted {
            assert!(Instant::now() < deadline, "push never landed");
            match c.poll_job(live) {
                Ok(PollReply::Assignment {
                    task: t, epoch: e, ..
                }) => {
                    assert_eq!(t, task);
                    accepted = c.push_result(live, t, e, o.clone()).expect("push");
                }
                _ => thread::sleep(Duration::from_millis(5)),
            }
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if matches!(c.status(1), Some(JobState::Done { ok: true, .. })) {
                break;
            }
            assert!(Instant::now() < deadline, "commit timed out");
            thread::sleep(Duration::from_millis(10));
        }
        assert!(c.stats().reassigned >= 1);
        c.shutdown(true);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_the_settled_prefix_and_unknown_daemons_must_reregister() {
        let dir = std::env::temp_dir().join(format!("tip-fleet-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("journal.txt"), "done mcf\n").expect("seed journal");
        let c = Coordinator::start(&CoordinatorConfig {
            out_dir: dir.clone(),
            resume: true,
            lease: Duration::from_secs(30),
            live: None,
        });
        // A daemon id from a previous coordinator incarnation is unknown.
        assert_eq!(c.beacon(99), Err(ErrorCode::UnknownDaemon));
        assert_eq!(c.poll_job(99).unwrap_err(), ErrorCode::UnknownDaemon);

        assert_eq!(c.submit_deduped(&spec("mcf"), 7).expect("submit"), 1);
        // Idempotent resubmission returns the same id.
        assert_eq!(c.submit_deduped(&spec("mcf"), 7).expect("submit"), 1);
        let (daemon, _) = c.register("fresh", 1);
        // The journalled bench is a resume-skip: no assignment goes out.
        assert_eq!(
            c.poll_job(daemon).expect("poll"),
            PollReply::NoWork { draining: false }
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if matches!(
                c.status(1),
                Some(JobState::Done {
                    ok: true,
                    attempts: 0
                })
            ) {
                break;
            }
            assert!(Instant::now() < deadline, "skip-ack timed out");
            thread::sleep(Duration::from_millis(10));
        }
        c.shutdown(true);
        let journal = std::fs::read_to_string(dir.join("journal.txt")).expect("journal");
        assert_eq!(journal, "done mcf\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accept_delta_requires_the_daemon_to_hold_the_assignment() {
        use tip_core::{BankDeltas, ProfileDelta, NUM_CATEGORIES};

        let event = |seq: u64| DeltaEvent {
            bench: "mcf".to_owned(),
            attempt: 1,
            deltas: BankDeltas {
                seq,
                per_profiler: vec![(
                    tip_core::ProfilerId::Tip,
                    ProfileDelta::from_entries(Granularity::Function, 8, [(0, 840)]),
                )],
                oracle: ProfileDelta::from_entries(Granularity::Function, 8, [(1, 840)]),
                stack: vec![0; NUM_CATEGORIES],
                cycles: seq * 1_000,
            },
        };

        let dir = std::env::temp_dir().join(format!("tip-fleet-delta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let c = Coordinator::start(&CoordinatorConfig {
            out_dir: dir.clone(),
            resume: false,
            lease: Duration::from_secs(30),
            live: None,
        });
        let (holder, _) = c.register("holder", 1);
        assert_eq!(c.submit_deduped(&spec("mcf"), 0).expect("submit"), 1);

        // Before the assignment goes out nobody holds the bench: the push is
        // acked-but-dropped, and nothing reaches the aggregate.
        assert_eq!(c.accept_delta(holder, &event(1)), Ok(false));
        assert!(c.live().view().bench("mcf").is_none());
        // A daemon the coordinator never met is refused outright.
        assert_eq!(c.accept_delta(99, &event(1)), Err(ErrorCode::UnknownDaemon));

        let Ok(PollReply::Assignment { .. }) = c.poll_job(holder) else {
            panic!("expected assignment")
        };
        assert_eq!(c.accept_delta(holder, &event(1)), Ok(true));
        let view = c.live().view();
        assert_eq!(view.bench("mcf").map(|b| b.flushes), Some(1));

        // A registered bystander that does not hold the lease is fenced off:
        // its (stale-epoch) stream must not corrupt the holder's slot.
        let (bystander, _) = c.register("bystander", 1);
        assert_eq!(c.accept_delta(bystander, &event(2)), Ok(false));
        assert_eq!(c.live().view().bench("mcf").map(|b| b.flushes), Some(1));
        c.shutdown(false);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
