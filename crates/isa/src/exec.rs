//! Functional execution: turning a static [`Program`] into dynamic
//! instruction streams.
//!
//! [`Executor`] yields the *correct-path* stream the timing core will fetch
//! from (and against which all profilers are evaluated). Page faults are
//! interposed inline: a faulting load appears once flagged
//! [`DynInstr::fault`], followed by the designated handler function's
//! instructions, followed by a re-execution of the load.
//!
//! [`WrongPath`] yields the speculative stream a front-end fetches after a
//! mispredicted branch or past a faulting load, by statically walking the
//! CFG from a given instruction.

use crate::behavior::{BranchState, MemState};
use crate::kind::InstrKind;
use crate::program::{InstrAddr, InstrIdx, Program};
use crate::snap::{self, SnapError, SnapReader};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// One dynamic (correct-path) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInstr {
    /// Position in the correct-path stream (0-based).
    pub seq: u64,
    /// The static instruction this is an execution of.
    pub idx: InstrIdx,
    /// Its address.
    pub addr: InstrAddr,
    /// Its kind (copied out for convenience).
    pub kind: InstrKind,
    /// Branch direction, for branches.
    pub taken: Option<bool>,
    /// Effective address, for loads/stores.
    pub mem_addr: Option<u64>,
    /// Whether this execution page-faults (loads only). The stream continues
    /// with the fault handler and then a non-faulting re-execution.
    pub fault: bool,
    /// Address of the next correct-path instruction (`None` at stream end).
    /// The front-end uses this to check its predictions.
    pub next_addr: Option<InstrAddr>,
}

#[derive(Debug, Clone, Copy)]
enum Frame {
    /// Normal call: resume at this instruction after `ret`.
    Call { resume: u32 },
    /// Fault handler: re-execute this load (at this address) after `ret`.
    Fault { load_idx: u32, mem_addr: u64 },
}

impl Frame {
    fn snapshot_into(self, out: &mut Vec<u8>) {
        match self {
            Frame::Call { resume } => {
                snap::put_u8(out, 0);
                snap::put_u32(out, resume);
            }
            Frame::Fault { load_idx, mem_addr } => {
                snap::put_u8(out, 1);
                snap::put_u32(out, load_idx);
                snap::put_u64(out, mem_addr);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Frame::Call { resume: r.u32()? }),
            1 => Ok(Frame::Fault {
                load_idx: r.u32()?,
                mem_addr: r.u64()?,
            }),
            _ => Err(SnapError::Malformed("stack frame tag")),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RawDyn {
    idx: u32,
    taken: Option<bool>,
    mem_addr: Option<u64>,
    fault: bool,
}

impl RawDyn {
    fn snapshot_into(self, out: &mut Vec<u8>) {
        snap::put_u32(out, self.idx);
        snap::put_u8(
            out,
            match self.taken {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            },
        );
        snap::put_opt_u64(out, self.mem_addr);
        snap::put_bool(out, self.fault);
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RawDyn {
            idx: r.u32()?,
            taken: match r.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                _ => return Err(SnapError::Malformed("taken tag")),
            },
            mem_addr: r.opt_u64()?,
            fault: r.bool()?,
        })
    }
}

/// Lazily generates the correct-path dynamic instruction stream of a
/// [`Program`].
///
/// Deterministic: the same program and seed produce the same stream. The
/// stream ends when a `halt` commits architecturally or when the entry
/// function returns.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    /// Next instruction to execute; `None` when finished.
    pc: Option<u32>,
    stack: Vec<Frame>,
    branch_states: Vec<Option<BranchState>>,
    mem_states: Vec<Option<MemState>>,
    /// Dynamic execution count of each load (drives fault injection).
    exec_counts: Vec<u64>,
    /// Pending re-execution of a faulting load after its handler returned.
    reexec: Option<(u32, u64)>,
    seed: u64,
    seq: u64,
    lookahead: Option<RawDyn>,
    primed: bool,
}

impl<'p> Executor<'p> {
    /// Creates an executor for `program` with the given behaviour seed.
    ///
    /// # Panics
    ///
    /// In debug builds, panics with the typed [`crate::ValidateError`] if
    /// `program` violates a structural invariant ([`Program::validate`]) —
    /// malformed CFGs (hand-assembled or rewritten) fail fast here instead
    /// of mis-simulating.
    #[must_use]
    pub fn new(program: &'p Program, seed: u64) -> Self {
        #[cfg(debug_assertions)]
        if let Err(e) = program.validate() {
            panic!("malformed program `{}`: {e}", program.name());
        }
        let n = program.len();
        let entry = program.function(program.entry()).entry_block();
        let pc = program.block(entry).first_instr().index() as u32;
        Executor {
            program,
            pc: Some(pc),
            stack: Vec::new(),
            branch_states: vec![None; n],
            mem_states: vec![None; n],
            exec_counts: vec![0; n],
            reexec: None,
            seed,
            seq: 0,
            lookahead: None,
            primed: false,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Serializes the executor's full mid-stream state for a checkpoint.
    ///
    /// The program itself is not captured — restore pairs the bytes with the
    /// same [`Program`], exactly as the core re-attaches to it.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_opt_u32(out, self.pc);
        snap::put_len(out, self.stack.len());
        for frame in &self.stack {
            frame.snapshot_into(out);
        }
        // Behaviour states are created lazily: encode only the live ones.
        let live = self.branch_states.iter().filter(|s| s.is_some()).count();
        snap::put_len(out, live);
        for (i, state) in self.branch_states.iter().enumerate() {
            if let Some(s) = state {
                snap::put_u32(out, i as u32);
                s.snapshot_into(out);
            }
        }
        let live = self.mem_states.iter().filter(|s| s.is_some()).count();
        snap::put_len(out, live);
        for (i, state) in self.mem_states.iter().enumerate() {
            if let Some(s) = state {
                snap::put_u32(out, i as u32);
                s.snapshot_into(out);
            }
        }
        snap::put_len(out, self.exec_counts.len());
        for &c in &self.exec_counts {
            snap::put_u64(out, c);
        }
        match self.reexec {
            Some((idx, addr)) => {
                snap::put_u8(out, 1);
                snap::put_u32(out, idx);
                snap::put_u64(out, addr);
            }
            None => snap::put_u8(out, 0),
        }
        snap::put_u64(out, self.seed);
        snap::put_u64(out, self.seq);
        match self.lookahead {
            Some(raw) => {
                snap::put_u8(out, 1);
                raw.snapshot_into(out);
            }
            None => snap::put_u8(out, 0),
        }
        snap::put_bool(out, self.primed);
    }

    /// Restores an executor captured by [`Executor::snapshot_into`] against
    /// the same `program`.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the bytes are truncated, malformed, or refer to
    /// instruction indices outside `program`.
    pub fn restore(program: &'p Program, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = program.len();
        let check_idx = |idx: u32| -> Result<u32, SnapError> {
            if (idx as usize) < n {
                Ok(idx)
            } else {
                Err(SnapError::Malformed("instruction index out of range"))
            }
        };
        let pc = r.opt_u32()?.map(check_idx).transpose()?;
        let stack_len = r.len()?;
        let mut stack = Vec::with_capacity(stack_len);
        for _ in 0..stack_len {
            stack.push(Frame::restore(r)?);
        }
        let mut branch_states = vec![None; n];
        let live = r.len()?;
        for _ in 0..live {
            let idx = check_idx(r.u32()?)? as usize;
            branch_states[idx] = Some(BranchState::restore(r)?);
        }
        let mut mem_states = vec![None; n];
        let live = r.len()?;
        for _ in 0..live {
            let idx = check_idx(r.u32()?)? as usize;
            mem_states[idx] = Some(MemState::restore(r)?);
        }
        let exec_len = r.len_of(8)?;
        if exec_len != n {
            return Err(SnapError::Malformed("exec_counts length"));
        }
        let mut exec_counts = vec![0u64; n];
        for c in &mut exec_counts {
            *c = r.u64()?;
        }
        let reexec = match r.u8()? {
            0 => None,
            1 => Some((check_idx(r.u32()?)?, r.u64()?)),
            _ => return Err(SnapError::Malformed("reexec tag")),
        };
        let seed = r.u64()?;
        let seq = r.u64()?;
        let lookahead = match r.u8()? {
            0 => None,
            1 => Some(RawDyn::restore(r)?),
            _ => return Err(SnapError::Malformed("lookahead tag")),
        };
        let primed = r.bool()?;
        if let Some(raw) = &lookahead {
            check_idx(raw.idx)?;
        }
        Ok(Executor {
            program,
            pc,
            stack,
            branch_states,
            mem_states,
            exec_counts,
            reexec,
            seed,
            seq,
            lookahead,
            primed,
        })
    }

    // Behaviour states are seeded from the instruction's *behaviour key*,
    // not its index: keys survive CFG relayout (`ProgramEditor`), so a moved
    // branch or load replays the same directions/addresses it had before the
    // rewrite. Builder-built programs have key == index, making this
    // bit-identical to seeding by index.
    fn branch_state(&mut self, idx: u32) -> &mut BranchState {
        let seed = self.seed;
        let key = self.program.behavior_key(InstrIdx(idx));
        self.branch_states[idx as usize]
            .get_or_insert_with(|| BranchState::new(seed ^ (u64::from(key) << 1 | 1)))
    }

    fn mem_state(&mut self, idx: u32) -> &mut MemState {
        let seed = self.seed;
        let key = self.program.behavior_key(InstrIdx(idx));
        self.mem_states[idx as usize]
            .get_or_insert_with(|| MemState::new(seed ^ (u64::from(key) << 17 | 3)))
    }

    /// Advances architectural state by one instruction and returns its raw
    /// record, or `None` at program end.
    fn step(&mut self) -> Option<RawDyn> {
        // A faulting load's handler has returned: re-execute the load.
        if let Some((load_idx, mem_addr)) = self.reexec.take() {
            self.pc = Some(load_idx + 1);
            return Some(RawDyn {
                idx: load_idx,
                taken: None,
                mem_addr: Some(mem_addr),
                fault: false,
            });
        }

        let pc = self.pc?;
        // Copy the `&'p Program` out of `self` so `instr` does not borrow
        // `self` — behaviours can then be passed by reference to the state
        // machines below instead of cloned per dynamic instruction (the
        // `Pattern` branch behaviour owns a `Vec`, so that clone allocated).
        let program = self.program;
        let instr = &program.instrs()[pc as usize];
        let mut raw = RawDyn {
            idx: pc,
            taken: None,
            mem_addr: None,
            fault: false,
        };

        match instr.kind() {
            InstrKind::Branch => {
                let behavior = instr.branch_behavior().expect("validated branch");
                let taken = self.branch_state(pc).next_outcome(behavior);
                raw.taken = Some(taken);
                if taken {
                    let target = instr.taken_target().expect("validated branch");
                    self.pc = Some(program.block(target).first_instr().index() as u32);
                } else {
                    self.pc = Some(pc + 1);
                }
            }
            InstrKind::Jump => {
                let target = instr.jump_target.expect("validated jump");
                self.pc = Some(self.program.block(target).first_instr().index() as u32);
            }
            InstrKind::Call => {
                let callee = instr.callee().expect("validated call");
                // Resume at the first instruction of the block following the
                // call's block.
                let call_block = self.program.block_of(InstrIdx(pc));
                let next_block = crate::program::BlockId(call_block.index() as u32 + 1);
                let resume = self.program.block(next_block).first_instr().index() as u32;
                self.stack.push(Frame::Call { resume });
                let entry = self.program.function(callee).entry_block();
                self.pc = Some(self.program.block(entry).first_instr().index() as u32);
            }
            InstrKind::Ret => match self.stack.pop() {
                Some(Frame::Call { resume }) => self.pc = Some(resume),
                Some(Frame::Fault { load_idx, mem_addr }) => {
                    self.reexec = Some((load_idx, mem_addr));
                    self.pc = None; // replaced on re-exec
                }
                None => self.pc = None, // entry function returned: done
            },
            InstrKind::Halt => {
                self.pc = None;
            }
            InstrKind::Load => {
                let behavior = instr.mem_behavior().expect("validated load");
                let addr = self.mem_state(pc).next_addr(behavior);
                raw.mem_addr = Some(addr);
                let n = self.exec_counts[pc as usize];
                self.exec_counts[pc as usize] += 1;
                if instr.fault_spec().is_some_and(|f| f.faults_on(n))
                    && self.program.fault_handler().is_some()
                {
                    raw.fault = true;
                    // Divert to the handler; re-execute the load on return.
                    self.stack.push(Frame::Fault {
                        load_idx: pc,
                        mem_addr: addr,
                    });
                    let handler = self.program.fault_handler().expect("checked above");
                    let entry = self.program.function(handler).entry_block();
                    self.pc = Some(self.program.block(entry).first_instr().index() as u32);
                } else {
                    self.pc = Some(pc + 1);
                }
            }
            InstrKind::Store => {
                let behavior = instr.mem_behavior().expect("validated store");
                raw.mem_addr = Some(self.mem_state(pc).next_addr(behavior));
                self.pc = Some(pc + 1);
            }
            _ => {
                self.pc = Some(pc + 1);
            }
        }
        Some(raw)
    }

    fn to_dyn(&self, raw: RawDyn, next: Option<&RawDyn>) -> DynInstr {
        let idx = InstrIdx(raw.idx);
        DynInstr {
            seq: self.seq,
            idx,
            addr: self.program.addr_of(idx),
            kind: self.program.instr(idx).kind(),
            taken: raw.taken,
            mem_addr: raw.mem_addr,
            fault: raw.fault,
            next_addr: next.map(|n| self.program.addr_of(InstrIdx(n.idx))),
        }
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInstr;

    fn next(&mut self) -> Option<DynInstr> {
        if !self.primed {
            self.lookahead = self.step();
            self.primed = true;
        }
        let current = self.lookahead.take()?;
        self.lookahead = self.step();
        let out = self.to_dyn(current, self.lookahead.as_ref());
        self.seq += 1;
        Some(out)
    }
}

/// One speculative (wrong-path) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrongPathInstr {
    /// The static instruction fetched.
    pub idx: InstrIdx,
    /// Its address.
    pub addr: InstrAddr,
    /// Its kind.
    pub kind: InstrKind,
    /// A synthetic effective address for speculative loads/stores.
    pub mem_addr: Option<u64>,
}

/// Statically walks the CFG from a start instruction, producing the stream a
/// front-end fetches down a wrong path (branches follow fall-through, jumps
/// and calls are followed, returns pop a synthetic stack).
#[derive(Debug)]
pub struct WrongPath<'p> {
    program: &'p Program,
    pc: Option<u32>,
    stack: Vec<u32>,
    rng: SmallRng,
}

impl<'p> WrongPath<'p> {
    /// Creates a wrong-path walker starting at `start`.
    #[must_use]
    pub fn new(program: &'p Program, start: InstrIdx, seed: u64) -> Self {
        let pc = (start.index() < program.len()).then_some(start.index() as u32);
        WrongPath {
            program,
            pc,
            stack: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Serializes the walker's mid-stream state for a checkpoint.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) {
        snap::put_opt_u32(out, self.pc);
        snap::put_len(out, self.stack.len());
        for &resume in &self.stack {
            snap::put_u32(out, resume);
        }
        snap::put_rng(out, &self.rng);
    }

    /// Restores a walker captured by [`WrongPath::snapshot_into`] against the
    /// same `program`.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the bytes are truncated, malformed, or refer to
    /// instruction indices outside `program`.
    pub fn restore(program: &'p Program, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = program.len();
        let check_idx = |idx: u32| -> Result<u32, SnapError> {
            if (idx as usize) < n {
                Ok(idx)
            } else {
                Err(SnapError::Malformed("instruction index out of range"))
            }
        };
        let pc = r.opt_u32()?.map(check_idx).transpose()?;
        let stack_len = r.len_of(4)?;
        let mut stack = Vec::with_capacity(stack_len);
        for _ in 0..stack_len {
            stack.push(check_idx(r.u32()?)?);
        }
        let rng = snap::get_rng(r)?;
        Ok(WrongPath {
            program,
            pc,
            stack,
            rng,
        })
    }
}

impl Iterator for WrongPath<'_> {
    type Item = WrongPathInstr;

    fn next(&mut self) -> Option<WrongPathInstr> {
        let pc = self.pc?;
        let program = self.program;
        let instr = &program.instrs()[pc as usize];
        let kind = instr.kind();

        let mem_addr = instr.mem_behavior().map(|b| match *b {
            crate::behavior::MemBehavior::Stride {
                base, footprint, ..
            } => base + self.rng.random_range(0..footprint.max(64) / 64) * 64,
            crate::behavior::MemBehavior::RandomIn { base, footprint } => {
                base + self.rng.random_range(0..footprint.max(8) / 8) * 8
            }
            crate::behavior::MemBehavior::Fixed { addr } => addr,
        });

        self.pc = match kind {
            // Wrong paths follow fall-through at branches.
            InstrKind::Branch => Some(pc + 1),
            InstrKind::Jump => {
                let target = instr.jump_target.expect("validated jump");
                Some(program.block(target).first_instr().index() as u32)
            }
            InstrKind::Call => {
                let callee = instr.callee().expect("validated call");
                let call_block = program.block_of(InstrIdx(pc));
                let next_block = crate::program::BlockId(call_block.index() as u32 + 1);
                self.stack
                    .push(program.block(next_block).first_instr().index() as u32);
                let entry = program.function(callee).entry_block();
                Some(program.block(entry).first_instr().index() as u32)
            }
            InstrKind::Ret => self.stack.pop(),
            InstrKind::Halt => None,
            _ => {
                let next = pc + 1;
                ((next as usize) < program.len()).then_some(next)
            }
        };

        let idx = InstrIdx(pc);
        Some(WrongPathInstr {
            idx,
            addr: program.addr_of(idx),
            kind,
            mem_addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{BranchBehavior, FaultSpec, MemBehavior};
    use crate::builder::ProgramBuilder;
    use crate::program::TEXT_BASE;
    use crate::reg::Reg;
    use crate::Instr;

    fn loop_program(taken_iters: u32) -> Program {
        let mut b = ProgramBuilder::named("loop");
        let main = b.function("main");
        let body = b.block(main);
        b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            body,
            Instr::branch(body, BranchBehavior::Loop { taken_iters }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    #[test]
    fn loop_unrolls_correctly() {
        let p = loop_program(2);
        let stream: Vec<DynInstr> = Executor::new(&p, 0).collect();
        // 3 iterations of (alu, br) then halt.
        assert_eq!(stream.len(), 7);
        assert_eq!(stream[1].taken, Some(true));
        assert_eq!(stream[3].taken, Some(true));
        assert_eq!(stream[5].taken, Some(false));
        assert_eq!(stream[6].kind, InstrKind::Halt);
        // seq is consecutive.
        for (i, d) in stream.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn next_addr_links_the_stream() {
        let p = loop_program(1);
        let stream: Vec<DynInstr> = Executor::new(&p, 0).collect();
        for pair in stream.windows(2) {
            assert_eq!(pair[0].next_addr, Some(pair[1].addr));
        }
        assert_eq!(stream.last().unwrap().next_addr, None);
    }

    #[test]
    fn executor_is_deterministic() {
        let p = loop_program(3);
        let a: Vec<DynInstr> = Executor::new(&p, 9).collect();
        let b: Vec<DynInstr> = Executor::new(&p, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let callee = b.function("callee");
        let m0 = b.block(main);
        b.push(m0, Instr::call(callee));
        let m1 = b.block(main);
        b.push(m1, Instr::halt());
        let c0 = b.block(callee);
        b.push(c0, Instr::nop());
        b.push(c0, Instr::ret());
        let p = b.build().expect("valid");

        let kinds: Vec<InstrKind> = Executor::new(&p, 0).map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                InstrKind::Call,
                InstrKind::Nop,
                InstrKind::Ret,
                InstrKind::Halt
            ]
        );
    }

    #[test]
    fn entry_function_return_ends_stream() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let m0 = b.block(main);
        b.push(m0, Instr::nop());
        b.push(m0, Instr::ret());
        let p = b.build().expect("valid");
        assert_eq!(Executor::new(&p, 0).count(), 2);
    }

    #[test]
    fn fault_interposes_handler_and_reexecutes() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let handler = b.function("os_handler");
        let m0 = b.block(main);
        b.push(
            m0,
            Instr::load(Some(Reg::int(1)), None, MemBehavior::Fixed { addr: 0xF000 })
                .with_fault(FaultSpec { every: 1 }),
        );
        b.push(m0, Instr::halt());
        let h0 = b.block(handler);
        b.push(h0, Instr::nop());
        b.push(h0, Instr::ret());
        b.set_fault_handler(handler);
        let p = b.build().expect("valid");

        let stream: Vec<DynInstr> = Executor::new(&p, 0).collect();
        let kinds: Vec<InstrKind> = stream.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                InstrKind::Load, // faulting execution
                InstrKind::Nop,  // handler
                InstrKind::Ret,
                InstrKind::Load, // re-execution
                InstrKind::Halt,
            ]
        );
        assert!(stream[0].fault);
        assert!(!stream[3].fault);
        assert_eq!(stream[0].mem_addr, stream[3].mem_addr);
        // The faulting load's correct-path successor is the handler entry.
        assert_eq!(stream[0].next_addr, Some(stream[1].addr));
    }

    #[test]
    fn wrong_path_follows_fall_through() {
        let p = loop_program(2);
        // Start at the branch: wrong path must fall through to halt.
        let wp: Vec<WrongPathInstr> = WrongPath::new(&p, InstrIdx(1), 0).take(8).collect();
        assert_eq!(wp[0].kind, InstrKind::Branch);
        assert_eq!(wp[1].kind, InstrKind::Halt);
        assert_eq!(wp.len(), 2);
    }

    #[test]
    fn wrong_path_addresses_match_program() {
        let p = loop_program(2);
        for w in WrongPath::new(&p, InstrIdx(0), 1).take(4) {
            assert_eq!(w.addr, p.addr_of(w.idx));
            assert!(w.addr.raw() >= TEXT_BASE);
        }
    }

    #[test]
    fn executor_snapshot_resumes_identically() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let handler = b.function("os_handler");
        let m0 = b.block(main);
        b.push(
            m0,
            Instr::load(
                Some(Reg::int(1)),
                None,
                MemBehavior::RandomIn {
                    base: 0x2000,
                    footprint: 4096,
                },
            )
            .with_fault(FaultSpec { every: 5 }),
        );
        b.push(
            m0,
            Instr::branch(m0, BranchBehavior::Bernoulli { taken_prob: 0.7 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        let h0 = b.block(handler);
        b.push(h0, Instr::nop());
        b.push(h0, Instr::ret());
        b.set_fault_handler(handler);
        let p = b.build().expect("valid");

        for stop in [0usize, 1, 7, 23] {
            let mut exec = Executor::new(&p, 42);
            let mut reference = Executor::new(&p, 42);
            let prefix: Vec<DynInstr> = (&mut exec).take(stop).collect();
            let ref_prefix: Vec<DynInstr> = (&mut reference).take(stop).collect();
            assert_eq!(prefix, ref_prefix);

            let mut buf = Vec::new();
            exec.snapshot_into(&mut buf);
            let restored = Executor::restore(&p, &mut SnapReader::new(&buf)).expect("restores");
            let suffix: Vec<DynInstr> = restored.take(200).collect();
            let ref_suffix: Vec<DynInstr> = reference.take(200).collect();
            assert_eq!(suffix, ref_suffix, "suffix diverged after stop={stop}");
        }
    }

    #[test]
    fn executor_restore_rejects_damage() {
        let p = loop_program(4);
        let mut exec = Executor::new(&p, 1);
        let _ = (&mut exec).take(3).count();
        let mut buf = Vec::new();
        exec.snapshot_into(&mut buf);
        // Truncations at every prefix must error, never panic.
        for cut in 0..buf.len() {
            assert!(Executor::restore(&p, &mut SnapReader::new(&buf[..cut])).is_err());
        }
    }

    #[test]
    fn wrong_path_snapshot_resumes_identically() {
        let p = loop_program(5);
        let mut wp = WrongPath::new(&p, InstrIdx(0), 9);
        let _ = (&mut wp).take(1).count();
        let mut reference = WrongPath::new(&p, InstrIdx(0), 9);
        let _ = (&mut reference).take(1).count();

        let mut buf = Vec::new();
        wp.snapshot_into(&mut buf);
        let restored = WrongPath::restore(&p, &mut SnapReader::new(&buf)).expect("restores");
        let a: Vec<WrongPathInstr> = restored.take(8).collect();
        let b: Vec<WrongPathInstr> = reference.take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loads_have_memory_addresses() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let m0 = b.block(main);
        b.push(
            m0,
            Instr::load(
                Some(Reg::int(1)),
                None,
                MemBehavior::Stride {
                    base: 0x10_0000,
                    stride: 8,
                    footprint: 64,
                },
            ),
        );
        b.push(
            m0,
            Instr::branch(m0, BranchBehavior::Loop { taken_iters: 3 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        let p = b.build().expect("valid");

        let addrs: Vec<u64> = Executor::new(&p, 0)
            .filter(|d| d.kind == InstrKind::Load)
            .map(|d| d.mem_addr.expect("load has address"))
            .collect();
        assert_eq!(addrs, vec![0x10_0000, 0x10_0008, 0x10_0010, 0x10_0018]);
    }
}
