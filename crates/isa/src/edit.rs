//! CFG editing: semantics-preserving rewrites of built [`Program`]s.
//!
//! A [`ProgramEditor`] decomposes a program into editable per-function block
//! lists with *stable block keys*, applies edits (instruction
//! insert/remove/fuse, block reordering, branch inversion), and re-assembles
//! a validated program with [`ProgramEditor::finish`]. Re-assembly fixes
//! fall-throughs automatically: a block whose layout successor changed gets
//! an explicit jump appended (plain blocks) or a one-jump *trampoline* block
//! inserted after it (branch- and call-ended blocks, whose fall-through is
//! positional by ISA definition).
//!
//! Two mechanisms make rewrites observationally equivalent:
//!
//! - every moved instruction keeps its **behaviour key**
//!   ([`Program::behavior_key`]), so its seeded branch directions and memory
//!   addresses replay identically at its new index;
//! - [`Provenance`] maps each output instruction back to the original
//!   instruction(s) it descends from (1:1 for moved code, 2:1 for fused
//!   pairs, 0 for inserted trampolines), which is what lets an equivalence
//!   checker align the two dynamic streams and a profile be re-attributed
//!   onto the rewritten program.

use crate::kind::InstrKind;
use crate::program::{BasicBlock, BlockId, Function, FunctionId, Instr, InstrIdx, Program};
use crate::validate::ValidateError;
use std::error::Error;
use std::fmt;

/// Stable identifier of a block under edit: survives reordering and
/// insertion, unlike layout-order [`BlockId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey(u32);

/// Errors from [`ProgramEditor`] operations and re-assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// A block key does not name a block of this editor.
    UnknownBlock,
    /// A function id does not name a function of this editor.
    UnknownFunction,
    /// An instruction position is out of range for its block.
    BadPosition,
    /// A block order is not a permutation of the function's blocks.
    NotAPermutation,
    /// A block order does not keep the function's entry block first.
    EntryMoved,
    /// A block lost all instructions and has no fall-through to become a
    /// jump to.
    EmptyBlock,
    /// The re-assembled program failed invariant validation.
    Invalid(ValidateError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownBlock => write!(f, "unknown block key"),
            EditError::UnknownFunction => write!(f, "unknown function"),
            EditError::BadPosition => write!(f, "instruction position out of range"),
            EditError::NotAPermutation => {
                write!(f, "block order is not a permutation of the function")
            }
            EditError::EntryMoved => write!(f, "block order moves the function entry"),
            EditError::EmptyBlock => {
                write!(f, "block became empty with no fall-through to preserve")
            }
            EditError::Invalid(e) => write!(f, "rewritten program is invalid: {e}"),
        }
    }
}

impl Error for EditError {}

impl From<ValidateError> for EditError {
    fn from(e: ValidateError) -> Self {
        EditError::Invalid(e)
    }
}

/// Maps each instruction of a rewritten program back to the original
/// instruction(s) it descends from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Output index -> original indices (empty for inserted instructions).
    map: Vec<Vec<InstrIdx>>,
}

impl Provenance {
    /// The identity provenance for an untouched `n`-instruction program.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Provenance {
            map: (0..n as u32).map(|i| vec![InstrIdx(i)]).collect(),
        }
    }

    /// Number of output instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map covers no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The original instructions output instruction `idx` descends from:
    /// one for moved code, two for a fused pair, none for an inserted
    /// trampoline or hoisted copy.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn origins(&self, idx: InstrIdx) -> &[InstrIdx] {
        &self.map[idx.index()]
    }

    /// Chains provenances: `second` describes a rewrite applied to the
    /// output of `first`; the result maps `second`'s output all the way back
    /// to `first`'s input.
    #[must_use]
    pub fn compose(first: &Provenance, second: &Provenance) -> Provenance {
        Provenance {
            map: second
                .map
                .iter()
                .map(|mids| {
                    mids.iter()
                        .flat_map(|m| first.map[m.index()].iter().copied())
                        .collect()
                })
                .collect(),
        }
    }

    /// Re-attributes per-instruction weights of the *original* program onto
    /// the rewritten one: output instruction `i` receives the sum of its
    /// origins' weights. Weight of deleted instructions is dropped; inserted
    /// instructions receive zero.
    #[must_use]
    pub fn fold_weights(&self, original: &[f64]) -> Vec<f64> {
        self.map
            .iter()
            .map(|origs| {
                origs
                    .iter()
                    .map(|o| original.get(o.index()).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
struct EditInstr {
    instr: Instr,
    /// Behaviour key carried to the output program.
    key: u32,
    /// Original instructions this one descends from.
    prov: Vec<InstrIdx>,
}

#[derive(Debug, Clone)]
struct EditBlock {
    key: u32,
    /// The block control flow falls through to (branch not-taken, call
    /// return, or plain fall-through), independent of layout position.
    fall_through: Option<u32>,
    instrs: Vec<EditInstr>,
}

#[derive(Debug, Clone)]
struct EditFunc {
    name: String,
    blocks: Vec<EditBlock>,
}

/// An editable decomposition of a [`Program`]; see the module docs.
///
/// Branch/jump targets held by instructions inside the editor are expressed
/// in *block-key* space and remapped to layout [`BlockId`]s at
/// [`finish`](ProgramEditor::finish).
#[derive(Debug, Clone)]
pub struct ProgramEditor {
    name: String,
    funcs: Vec<EditFunc>,
    fault_handler: Option<FunctionId>,
    next_block_key: u32,
    next_behavior_key: u32,
}

impl ProgramEditor {
    /// Decomposes `program` for editing. Original blocks keep their
    /// [`BlockId`] as their [`BlockKey`].
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut funcs = Vec::with_capacity(program.functions().len());
        for func in program.functions() {
            let mut blocks = Vec::new();
            for bi in func.block_range() {
                let block = &program.blocks()[bi];
                let instrs = block
                    .instr_range()
                    .map(|gi| EditInstr {
                        instr: program.instrs()[gi].clone(),
                        key: program.behavior_keys[gi],
                        prov: vec![InstrIdx(gi as u32)],
                    })
                    .collect::<Vec<_>>();
                let last_kind = instrs.last().map(|e| e.instr.kind);
                let falls = !matches!(
                    last_kind,
                    Some(InstrKind::Jump | InstrKind::Ret | InstrKind::Halt)
                );
                let fall_through = (falls && bi + 1 < func.block_range().end)
                    .then(|| program.blocks()[bi + 1].id.0);
                blocks.push(EditBlock {
                    key: block.id.0,
                    fall_through,
                    instrs,
                });
            }
            funcs.push(EditFunc {
                name: func.name.clone(),
                blocks,
            });
        }
        ProgramEditor {
            name: program.name().to_owned(),
            funcs,
            fault_handler: program.fault_handler(),
            next_block_key: program.blocks().len() as u32,
            next_behavior_key: program.len() as u32,
        }
    }

    /// The [`BlockKey`] of an original block of the source program.
    #[must_use]
    pub fn key_of(id: BlockId) -> BlockKey {
        BlockKey(id.0)
    }

    fn locate(&self, key: BlockKey) -> Result<(usize, usize), EditError> {
        for (fi, func) in self.funcs.iter().enumerate() {
            if let Some(bi) = func.blocks.iter().position(|b| b.key == key.0) {
                return Ok((fi, bi));
            }
        }
        Err(EditError::UnknownBlock)
    }

    fn block(&self, key: BlockKey) -> Result<&EditBlock, EditError> {
        let (fi, bi) = self.locate(key)?;
        Ok(&self.funcs[fi].blocks[bi])
    }

    fn block_mut(&mut self, key: BlockKey) -> Result<&mut EditBlock, EditError> {
        let (fi, bi) = self.locate(key)?;
        Ok(&mut self.funcs[fi].blocks[bi])
    }

    /// Current block keys of `func`, in layout order.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownFunction`] if `func` is out of range.
    pub fn block_keys(&self, func: FunctionId) -> Result<Vec<BlockKey>, EditError> {
        let f = self
            .funcs
            .get(func.index())
            .ok_or(EditError::UnknownFunction)?;
        Ok(f.blocks.iter().map(|b| BlockKey(b.key)).collect())
    }

    /// Number of instructions currently in block `key`.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] if `key` is unknown.
    pub fn block_len(&self, key: BlockKey) -> Result<usize, EditError> {
        Ok(self.block(key)?.instrs.len())
    }

    /// The instruction at `pos` in block `key`.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] / [`EditError::BadPosition`].
    pub fn instr(&self, key: BlockKey, pos: usize) -> Result<&Instr, EditError> {
        self.block(key)?
            .instrs
            .get(pos)
            .map(|e| &e.instr)
            .ok_or(EditError::BadPosition)
    }

    /// The block that control falls through to from `key` (branch not-taken,
    /// call return, or plain fall-through), if any.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] if `key` is unknown.
    pub fn fall_through(&self, key: BlockKey) -> Result<Option<BlockKey>, EditError> {
        Ok(self.block(key)?.fall_through.map(BlockKey))
    }

    /// The taken-target block of the branch ending block `key`, if the block
    /// ends in a conditional branch.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] if `key` is unknown.
    pub fn taken_target(&self, key: BlockKey) -> Result<Option<BlockKey>, EditError> {
        Ok(self
            .block(key)?
            .instrs
            .last()
            .and_then(|e| e.instr.taken_target)
            .map(|t| BlockKey(t.0)))
    }

    /// Removes the instruction at `pos` from block `key`. Its profile weight
    /// and provenance disappear with it.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] / [`EditError::BadPosition`].
    pub fn remove_instr(&mut self, key: BlockKey, pos: usize) -> Result<(), EditError> {
        let block = self.block_mut(key)?;
        if pos >= block.instrs.len() {
            return Err(EditError::BadPosition);
        }
        block.instrs.remove(pos);
        Ok(())
    }

    /// Inserts `instr` at `pos` in block `key` (shifting later instructions
    /// right). The new instruction gets a fresh behaviour key and empty
    /// provenance.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] / [`EditError::BadPosition`].
    pub fn insert_instr(
        &mut self,
        key: BlockKey,
        pos: usize,
        instr: Instr,
    ) -> Result<(), EditError> {
        let fresh = self.next_behavior_key;
        let block = self.block_mut(key)?;
        if pos > block.instrs.len() {
            return Err(EditError::BadPosition);
        }
        block.instrs.insert(
            pos,
            EditInstr {
                instr,
                key: fresh,
                prov: Vec::new(),
            },
        );
        self.next_behavior_key += 1;
        Ok(())
    }

    /// Replaces the adjacent pair at `pos`, `pos + 1` in block `key` with
    /// the single `fused` instruction, which inherits the first
    /// instruction's behaviour key and the *combined* provenance of both —
    /// the superinstruction primitive.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] / [`EditError::BadPosition`] (the pair
    /// must be fully inside the block).
    pub fn fuse_adjacent(
        &mut self,
        key: BlockKey,
        pos: usize,
        fused: Instr,
    ) -> Result<(), EditError> {
        let block = self.block_mut(key)?;
        if pos + 1 >= block.instrs.len() {
            return Err(EditError::BadPosition);
        }
        let second = block.instrs.remove(pos + 1);
        let first = &mut block.instrs[pos];
        first.prov.extend(second.prov);
        first.instr = fused;
        Ok(())
    }

    /// Inserts a fresh, empty block at the front of `func`, making it the
    /// function's new entry, and returns its key. The previous entry keeps
    /// its own key — branch, jump, and call targets referencing it are
    /// untouched — so loop back-edges into the old entry still bypass the
    /// new block: it executes once per activation of the function, the
    /// classic loop-preheader position. The new block falls through to the
    /// old entry; populate it with
    /// [`insert_instr`](ProgramEditor::insert_instr) (left empty it degrades
    /// to a jump at [`finish`](ProgramEditor::finish)).
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownFunction`] if `func` is out of range.
    pub fn prepend_block(&mut self, func: FunctionId) -> Result<BlockKey, EditError> {
        let key = self.next_block_key;
        let f = self
            .funcs
            .get_mut(func.index())
            .ok_or(EditError::UnknownFunction)?;
        let old_entry = f.blocks.first().map(|b| b.key);
        self.next_block_key += 1;
        f.blocks.insert(
            0,
            EditBlock {
                key,
                fall_through: old_entry,
                instrs: Vec::new(),
            },
        );
        Ok(BlockKey(key))
    }

    /// Reorders the blocks of `func` to `order` (a permutation of its
    /// current keys that keeps the entry block first). Fall-through edges
    /// are positional in the ISA, so [`finish`](ProgramEditor::finish)
    /// repairs any broken by the new layout with jumps or trampolines.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownFunction`], [`EditError::NotAPermutation`], or
    /// [`EditError::EntryMoved`].
    pub fn set_block_order(
        &mut self,
        func: FunctionId,
        order: &[BlockKey],
    ) -> Result<(), EditError> {
        let f = self
            .funcs
            .get_mut(func.index())
            .ok_or(EditError::UnknownFunction)?;
        let mut have: Vec<u32> = f.blocks.iter().map(|b| b.key).collect();
        let mut want: Vec<u32> = order.iter().map(|k| k.0).collect();
        have.sort_unstable();
        want.sort_unstable();
        if have != want {
            return Err(EditError::NotAPermutation);
        }
        if order.first().map(|k| k.0) != f.blocks.first().map(|b| b.key) {
            return Err(EditError::EntryMoved);
        }
        let mut by_key: std::collections::HashMap<u32, EditBlock> =
            f.blocks.drain(..).map(|b| (b.key, b)).collect();
        f.blocks = order
            .iter()
            .map(|k| by_key.remove(&k.0).expect("checked permutation"))
            .collect();
        Ok(())
    }

    /// Inverts the conditional branch ending block `key`: its taken target
    /// and fall-through swap, and its direction behaviour is replaced by the
    /// analytic negation ([`crate::BranchBehavior::inverted`]). Returns
    /// `false` (no change) when the block does not end in a branch, the
    /// behaviour is not invertible, or the branch has no fall-through edge
    /// recorded.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownBlock`] if `key` is unknown.
    pub fn invert_branch(&mut self, key: BlockKey) -> Result<bool, EditError> {
        let block = self.block_mut(key)?;
        let Some(ft) = block.fall_through else {
            return Ok(false);
        };
        let Some(last) = block.instrs.last_mut() else {
            return Ok(false);
        };
        if last.instr.kind != InstrKind::Branch {
            return Ok(false);
        }
        let (Some(target), Some(behavior)) =
            (last.instr.taken_target, last.instr.branch_behavior.as_ref())
        else {
            return Ok(false);
        };
        let Some(inverted) = behavior.inverted() else {
            return Ok(false);
        };
        last.instr.taken_target = Some(BlockId(ft));
        last.instr.branch_behavior = Some(inverted);
        block.fall_through = Some(target.0);
        Ok(true)
    }

    /// Re-assembles a validated [`Program`] plus the [`Provenance`] of the
    /// rewrite. Fall-throughs broken by relayout are repaired: plain blocks
    /// get an explicit jump appended; branch- and call-ended blocks get a
    /// one-jump trampoline block inserted after them; emptied blocks become
    /// a jump to their fall-through.
    ///
    /// # Errors
    ///
    /// [`EditError::EmptyBlock`] if a block lost all instructions and has no
    /// fall-through, or [`EditError::Invalid`] if the result violates a
    /// program invariant.
    pub fn finish(mut self) -> Result<(Program, Provenance), EditError> {
        // Repair fall-throughs block by block. Trampolines are inserted
        // in-place, so iterate with an explicit index.
        for func in &mut self.funcs {
            let mut bi = 0;
            while bi < func.blocks.len() {
                let next_key = func.blocks.get(bi + 1).map(|b| b.key);
                let block = &mut func.blocks[bi];
                let Some(ft) = block.fall_through else {
                    if block.instrs.is_empty() {
                        return Err(EditError::EmptyBlock);
                    }
                    bi += 1;
                    continue;
                };
                match block.instrs.last().map(|e| e.instr.kind) {
                    None => {
                        // Emptied block: degrade to a jump to its successor.
                        block.instrs.push(EditInstr {
                            instr: Instr::jump(BlockId(ft)),
                            key: self.next_behavior_key,
                            prov: Vec::new(),
                        });
                        self.next_behavior_key += 1;
                        block.fall_through = None;
                        bi += 1;
                    }
                    Some(InstrKind::Branch | InstrKind::Call) => {
                        if next_key == Some(ft) {
                            bi += 1;
                        } else {
                            // Positional fall-through: reroute through a
                            // trampoline placed right after this block.
                            let tramp_key = self.next_block_key;
                            self.next_block_key += 1;
                            block.fall_through = Some(tramp_key);
                            let tramp = EditBlock {
                                key: tramp_key,
                                fall_through: None,
                                instrs: vec![EditInstr {
                                    instr: Instr::jump(BlockId(ft)),
                                    key: self.next_behavior_key,
                                    prov: Vec::new(),
                                }],
                            };
                            self.next_behavior_key += 1;
                            func.blocks.insert(bi + 1, tramp);
                            bi += 2;
                        }
                    }
                    Some(InstrKind::Jump | InstrKind::Ret | InstrKind::Halt) => {
                        // Terminated by an absolute transfer: the recorded
                        // fall-through is vestigial (e.g. a removed branch).
                        block.fall_through = None;
                        bi += 1;
                    }
                    Some(_) => {
                        if next_key == Some(ft) {
                            bi += 1;
                        } else {
                            block.instrs.push(EditInstr {
                                instr: Instr::jump(BlockId(ft)),
                                key: self.next_behavior_key,
                                prov: Vec::new(),
                            });
                            self.next_behavior_key += 1;
                            block.fall_through = None;
                            bi += 1;
                        }
                    }
                }
            }
        }

        // Lay out and remap key-space targets to layout BlockIds.
        let mut key_to_id = std::collections::HashMap::new();
        let mut id = 0u32;
        for func in &self.funcs {
            for block in &func.blocks {
                key_to_id.insert(block.key, BlockId(id));
                id += 1;
            }
        }

        let mut functions = Vec::with_capacity(self.funcs.len());
        let mut blocks = Vec::new();
        let mut instrs = Vec::new();
        let mut instr_block = Vec::new();
        let mut instr_func = Vec::new();
        let mut behavior_keys = Vec::new();
        let mut prov_map = Vec::new();

        for (fi, func) in self.funcs.iter().enumerate() {
            let block_start = blocks.len() as u32;
            for block in &func.blocks {
                let new_id = BlockId(blocks.len() as u32);
                let start = instrs.len() as u32;
                for e in &block.instrs {
                    let mut instr = e.instr.clone();
                    for t in [&mut instr.taken_target, &mut instr.jump_target]
                        .into_iter()
                        .flatten()
                    {
                        *t = *key_to_id.get(&t.0).ok_or(EditError::UnknownBlock)?;
                    }
                    instr_block.push(new_id.0);
                    instr_func.push(fi as u32);
                    behavior_keys.push(e.key);
                    prov_map.push(e.prov.clone());
                    instrs.push(instr);
                }
                blocks.push(BasicBlock {
                    id: new_id,
                    function: FunctionId(fi as u32),
                    start,
                    end: instrs.len() as u32,
                });
            }
            functions.push(Function {
                id: FunctionId(fi as u32),
                name: func.name.clone(),
                block_start,
                block_end: blocks.len() as u32,
            });
        }

        let program = Program {
            name: self.name,
            functions,
            blocks,
            instrs,
            instr_block,
            instr_func,
            fault_handler: self.fault_handler,
            behavior_keys,
        };
        program.validate()?;
        Ok((program, Provenance { map: prov_map }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BranchBehavior;
    use crate::builder::ProgramBuilder;
    use crate::exec::{DynInstr, Executor};
    use crate::reg::Reg;

    fn diamond() -> Program {
        // main: entry -> (branch) -> left | right -> join -> halt
        let mut b = ProgramBuilder::named("diamond");
        let main = b.function("main");
        let entry = b.block(main);
        let left = b.block(main);
        let right = b.block(main);
        let join = b.block(main);
        b.push(entry, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            entry,
            Instr::branch(
                right,
                BranchBehavior::Pattern {
                    pattern: vec![true, false, false],
                },
            ),
        );
        b.push(left, Instr::int_alu(Some(Reg::int(2)), [None, None]));
        b.push(left, Instr::jump(join));
        b.push(right, Instr::int_alu(Some(Reg::int(3)), [None, None]));
        b.push(right, Instr::jump(join));
        b.push(
            join,
            Instr::branch(entry, BranchBehavior::Loop { taken_iters: 5 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b.build().expect("valid")
    }

    fn arch_stream(
        p: &Program,
        prov: Option<&Provenance>,
        seed: u64,
    ) -> Vec<(InstrKind, Vec<u32>, Option<u64>)> {
        Executor::new(p, seed)
            .filter(|d: &DynInstr| {
                !matches!(
                    d.kind,
                    InstrKind::Jump | InstrKind::Nop | InstrKind::CsrFlush | InstrKind::Fence
                )
            })
            .map(|d| {
                let origins = match prov {
                    Some(pr) => pr.origins(d.idx).iter().map(|o| o.raw()).collect(),
                    None => vec![d.idx.raw()],
                };
                (d.kind, origins, d.mem_addr)
            })
            .collect()
    }

    #[test]
    fn no_edit_round_trips_identically() {
        let p = diamond();
        let (q, prov) = ProgramEditor::new(&p).finish().expect("round trip");
        assert_eq!(p, q);
        assert_eq!(prov, Provenance::identity(p.len()));
    }

    #[test]
    fn reorder_preserves_dynamic_behavior() {
        let p = diamond();
        let mut ed = ProgramEditor::new(&p);
        let main = p.entry();
        let keys = ed.block_keys(main).expect("keys");
        // Move `left` (index 1) to the end: entry, right, join, exit, left.
        let order = vec![keys[0], keys[2], keys[3], keys[4], keys[1]];
        ed.set_block_order(main, &order).expect("reorder");
        let (q, prov) = ed.finish().expect("assemble");
        assert_eq!(q.validate(), Ok(()));
        // entry ends in a branch whose fall-through (left) moved: trampoline.
        assert!(q.blocks().len() > p.blocks().len());
        for seed in [0u64, 7, 42] {
            assert_eq!(
                arch_stream(&p, None, seed),
                arch_stream(&q, Some(&prov), seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn invert_branch_preserves_dynamic_behavior() {
        let p = diamond();
        let mut ed = ProgramEditor::new(&p);
        let main = p.entry();
        let keys = ed.block_keys(main).expect("keys");
        // Lay the taken target (right) as the entry's layout successor and
        // inert the branch so the hot edge becomes a fall-through.
        assert_eq!(ed.taken_target(keys[0]).unwrap(), Some(keys[2]));
        let order = vec![keys[0], keys[2], keys[1], keys[3], keys[4]];
        ed.set_block_order(main, &order).expect("reorder");
        assert!(ed.invert_branch(keys[0]).expect("known block"));
        let (q, prov) = ed.finish().expect("assemble");
        // Inversion avoided the trampoline: same block count.
        assert_eq!(q.blocks().len(), p.blocks().len());
        for seed in [0u64, 9] {
            assert_eq!(
                arch_stream(&p, None, seed),
                arch_stream(&q, Some(&prov), seed)
            );
        }
    }

    #[test]
    fn remove_and_fuse_update_provenance() {
        let mut b = ProgramBuilder::named("pair");
        let main = b.function("main");
        let blk = b.block(main);
        b.push(blk, Instr::csr_flush());
        b.push(blk, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            blk,
            Instr::int_alu(Some(Reg::int(2)), [Some(Reg::int(1)), None]),
        );
        b.push(blk, Instr::halt());
        let p = b.build().expect("valid");

        let mut ed = ProgramEditor::new(&p);
        let key = ProgramEditor::key_of(p.blocks()[0].id());
        ed.remove_instr(key, 0).expect("remove flush");
        let fused = Instr::int_alu(Some(Reg::int(2)), [None, None]);
        ed.fuse_adjacent(key, 0, fused).expect("fuse pair");
        let (q, prov) = ed.finish().expect("assemble");
        assert_eq!(q.len(), 2); // fused alu + halt
        assert_eq!(prov.origins(InstrIdx(0)), &[InstrIdx(1), InstrIdx(2)]);
        assert_eq!(prov.origins(InstrIdx(1)), &[InstrIdx(3)]);
        // Weight re-attribution: the pair's weight merges, the flush's drops.
        let w = prov.fold_weights(&[0.4, 0.1, 0.2, 0.3]);
        assert_eq!(w, vec![0.1 + 0.2, 0.3]);
    }

    #[test]
    fn moved_instructions_keep_behavior_keys() {
        let p = diamond();
        let mut ed = ProgramEditor::new(&p);
        let main = p.entry();
        let keys = ed.block_keys(main).expect("keys");
        let order = vec![keys[0], keys[2], keys[3], keys[4], keys[1]];
        ed.set_block_order(main, &order).expect("reorder");
        let (q, prov) = ed.finish().expect("assemble");
        for i in 0..q.len() {
            let idx = InstrIdx(i as u32);
            if let [orig] = prov.origins(idx) {
                assert_eq!(q.behavior_key(idx), p.behavior_key(*orig));
            }
        }
    }

    #[test]
    fn entry_move_rejected() {
        let p = diamond();
        let mut ed = ProgramEditor::new(&p);
        let main = p.entry();
        let keys = ed.block_keys(main).expect("keys");
        let order = vec![keys[1], keys[0], keys[2], keys[3], keys[4]];
        assert_eq!(ed.set_block_order(main, &order), Err(EditError::EntryMoved));
        let bad = vec![keys[0], keys[0], keys[2], keys[3], keys[4]];
        assert_eq!(
            ed.set_block_order(main, &bad),
            Err(EditError::NotAPermutation)
        );
    }

    #[test]
    fn prepended_block_runs_once_outside_the_loop() {
        let p = diamond();
        let mut ed = ProgramEditor::new(&p);
        let pre = ed.prepend_block(p.entry()).expect("prepend");
        ed.insert_instr(pre, 0, Instr::csr_flush()).expect("insert");
        let (q, prov) = ed.finish().expect("assemble");
        assert_eq!(q.validate(), Ok(()));
        assert_eq!(q.blocks().len(), p.blocks().len() + 1);
        // The preheader's flush executes exactly once even though the old
        // entry block is a loop target (join branches back to it 5 times).
        let flushes = Executor::new(&q, 3)
            .filter(|d| d.kind == InstrKind::CsrFlush)
            .count();
        assert_eq!(flushes, 1);
        assert!(prov.origins(InstrIdx::new(0)).is_empty(), "inserted instr");
        for seed in [0u64, 9] {
            assert_eq!(
                arch_stream(&p, None, seed),
                arch_stream(&q, Some(&prov), seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn emptied_block_becomes_jump() {
        let mut b = ProgramBuilder::named("empties");
        let main = b.function("main");
        let b0 = b.block(main);
        b.push(b0, Instr::nop());
        let b1 = b.block(main);
        b.push(b1, Instr::halt());
        let p = b.build().expect("valid");

        let mut ed = ProgramEditor::new(&p);
        let key = ProgramEditor::key_of(p.blocks()[0].id());
        ed.remove_instr(key, 0).expect("remove nop");
        let (q, _) = ed.finish().expect("assemble");
        assert_eq!(q.instrs()[0].kind(), InstrKind::Jump);
        assert_eq!(Executor::new(&q, 0).count(), 2);
    }
}
