//! Programs: functions, basic blocks, instructions, addresses, and symbols.

use crate::behavior::{BranchBehavior, FaultSpec, MemBehavior};
use crate::kind::InstrKind;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Byte address of the first instruction of a program.
pub const TEXT_BASE: u64 = 0x1_0000;

/// Size in bytes of one encoded instruction.
pub const INSTR_BYTES: u64 = 4;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// The dense index of this function.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a basic block within a [`Program`] (global across functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The dense index of this block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of a static instruction within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrIdx(pub(crate) u32);

impl InstrIdx {
    /// Creates an index from a raw dense position.
    #[must_use]
    pub fn new(raw: u32) -> Self {
        InstrIdx(raw)
    }

    /// The dense index of this instruction.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw dense position.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Byte address of a static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrAddr(u64);

impl InstrAddr {
    /// Creates an address from a raw byte value.
    #[must_use]
    pub fn new(raw: u64) -> Self {
        InstrAddr(raw)
    }

    /// The raw byte address.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A static instruction: a kind, a register signature shaping dependencies,
/// and optional behaviour annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    pub(crate) kind: InstrKind,
    pub(crate) dst: Option<Reg>,
    pub(crate) srcs: [Option<Reg>; 2],
    /// Taken target (branches only); fall-through is the next block.
    pub(crate) taken_target: Option<BlockId>,
    /// Direction behaviour (branches only).
    pub(crate) branch_behavior: Option<BranchBehavior>,
    /// Jump/call target block (jumps: same function; calls: callee entry is
    /// derived from the target function).
    pub(crate) jump_target: Option<BlockId>,
    /// Callee (calls only).
    pub(crate) callee: Option<FunctionId>,
    /// Address behaviour (loads/stores only).
    pub(crate) mem: Option<MemBehavior>,
    /// Page-fault injection (loads only).
    pub(crate) fault: Option<FaultSpec>,
}

impl Instr {
    fn bare(kind: InstrKind) -> Self {
        Instr {
            kind,
            dst: None,
            srcs: [None, None],
            taken_target: None,
            branch_behavior: None,
            jump_target: None,
            callee: None,
            mem: None,
            fault: None,
        }
    }

    /// A plain instruction of `kind` with a register signature. Use the
    /// dedicated constructors for control flow and memory instructions.
    #[must_use]
    pub fn op(kind: InstrKind, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        let mut i = Instr::bare(kind);
        i.dst = dst;
        i.srcs = srcs;
        i
    }

    /// A single-cycle integer ALU instruction.
    #[must_use]
    pub fn int_alu(dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        Instr::op(InstrKind::IntAlu, dst, srcs)
    }

    /// A floating-point instruction of the given FP kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not `FpAlu`, `FpMul`, or `FpDiv`.
    #[must_use]
    pub fn fp(kind: InstrKind, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        assert!(
            matches!(kind, InstrKind::FpAlu | InstrKind::FpMul | InstrKind::FpDiv),
            "{kind} is not a floating-point kind"
        );
        Instr::op(kind, dst, srcs)
    }

    /// A load with the given address behaviour.
    #[must_use]
    pub fn load(dst: Option<Reg>, addr_src: Option<Reg>, mem: MemBehavior) -> Self {
        let mut i = Instr::op(InstrKind::Load, dst, [addr_src, None]);
        i.mem = Some(mem);
        i
    }

    /// A store with the given address behaviour; `data_src`/`addr_src` shape
    /// its dependencies.
    #[must_use]
    pub fn store(data_src: Option<Reg>, addr_src: Option<Reg>, mem: MemBehavior) -> Self {
        let mut i = Instr::op(InstrKind::Store, None, [data_src, addr_src]);
        i.mem = Some(mem);
        i
    }

    /// A conditional branch to `taken_target` with direction `behavior`.
    /// The fall-through is the next block of the same function.
    #[must_use]
    pub fn branch(taken_target: BlockId, behavior: BranchBehavior) -> Self {
        let mut i = Instr::bare(InstrKind::Branch);
        i.taken_target = Some(taken_target);
        i.branch_behavior = Some(behavior);
        i
    }

    /// A conditional branch whose condition reads `src` (adds a data
    /// dependency into the branch, e.g. on a preceding load).
    #[must_use]
    pub fn branch_on(src: Reg, taken_target: BlockId, behavior: BranchBehavior) -> Self {
        let mut i = Instr::branch(taken_target, behavior);
        i.srcs = [Some(src), None];
        i
    }

    /// An unconditional jump to `target` (same function).
    #[must_use]
    pub fn jump(target: BlockId) -> Self {
        let mut i = Instr::bare(InstrKind::Jump);
        i.jump_target = Some(target);
        i
    }

    /// A direct call to `callee`; execution resumes at the next block of the
    /// calling function when the callee returns.
    #[must_use]
    pub fn call(callee: FunctionId) -> Self {
        let mut i = Instr::bare(InstrKind::Call);
        i.callee = Some(callee);
        i
    }

    /// A function return.
    #[must_use]
    pub fn ret() -> Self {
        Instr::bare(InstrKind::Ret)
    }

    /// A CSR access that flushes the pipeline at commit.
    #[must_use]
    pub fn csr_flush() -> Self {
        Instr::bare(InstrKind::CsrFlush)
    }

    /// A memory fence (serializes dispatch).
    #[must_use]
    pub fn fence() -> Self {
        Instr::bare(InstrKind::Fence)
    }

    /// A no-operation.
    #[must_use]
    pub fn nop() -> Self {
        Instr::bare(InstrKind::Nop)
    }

    /// Terminates the program when committed.
    #[must_use]
    pub fn halt() -> Self {
        Instr::bare(InstrKind::Halt)
    }

    /// Attaches a page-fault injection spec (loads only; validated at build).
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The instruction kind.
    #[must_use]
    pub fn kind(&self) -> InstrKind {
        self.kind
    }

    /// Destination register, if any.
    #[must_use]
    pub fn dst(&self) -> Option<Reg> {
        self.dst
    }

    /// Source registers (up to two).
    #[must_use]
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        self.srcs
    }

    /// Taken target for branches.
    #[must_use]
    pub fn taken_target(&self) -> Option<BlockId> {
        self.taken_target
    }

    /// Direction behaviour for branches.
    #[must_use]
    pub fn branch_behavior(&self) -> Option<&BranchBehavior> {
        self.branch_behavior.as_ref()
    }

    /// Memory behaviour for loads/stores.
    #[must_use]
    pub fn mem_behavior(&self) -> Option<&MemBehavior> {
        self.mem.as_ref()
    }

    /// Fault spec for faulting loads.
    #[must_use]
    pub fn fault_spec(&self) -> Option<FaultSpec> {
        self.fault
    }

    /// Callee for calls.
    #[must_use]
    pub fn callee(&self) -> Option<FunctionId> {
        self.callee
    }
}

/// A basic block: a contiguous run of instructions within one function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    pub(crate) id: BlockId,
    pub(crate) function: FunctionId,
    /// Global instruction index range `[start, end)`.
    pub(crate) start: u32,
    pub(crate) end: u32,
}

impl BasicBlock {
    /// This block's id.
    #[must_use]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The function containing this block.
    #[must_use]
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// Global index of the first instruction.
    #[must_use]
    pub fn first_instr(&self) -> InstrIdx {
        InstrIdx(self.start)
    }

    /// Global indices `[start, end)` of the block's instructions.
    #[must_use]
    pub fn instr_range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block has no instructions (only possible pre-validation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A function: a named, contiguous sequence of basic blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub(crate) id: FunctionId,
    pub(crate) name: String,
    /// Global block index range `[start, end)`.
    pub(crate) block_start: u32,
    pub(crate) block_end: u32,
}

impl Function {
    /// This function's id.
    #[must_use]
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The function's symbol name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Global block indices `[start, end)` belonging to this function.
    #[must_use]
    pub fn block_range(&self) -> std::ops::Range<usize> {
        self.block_start as usize..self.block_end as usize
    }

    /// The function's entry block.
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        BlockId(self.block_start)
    }
}

/// Profile granularity: which symbols time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Individual static instructions.
    Instruction,
    /// Basic blocks.
    BasicBlock,
    /// Functions.
    Function,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Granularity::Instruction => f.write_str("instruction"),
            Granularity::BasicBlock => f.write_str("basic-block"),
            Granularity::Function => f.write_str("function"),
        }
    }
}

/// A symbol at some granularity: an instruction, block, or function index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

/// A validated program.
///
/// Construct with [`crate::ProgramBuilder`]. Instructions live at
/// `TEXT_BASE + 4 * global_index`, functions and blocks are contiguous, and
/// all control-flow targets have been checked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) functions: Vec<Function>,
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) instrs: Vec<Instr>,
    /// Per-instruction containing block.
    pub(crate) instr_block: Vec<u32>,
    /// Per-instruction containing function.
    pub(crate) instr_func: Vec<u32>,
    /// Designated page-fault handler, if any load carries a [`FaultSpec`].
    pub(crate) fault_handler: Option<FunctionId>,
    /// Per-instruction behaviour-seed key. Builder-built programs use the
    /// identity mapping (key = index); CFG rewrites preserve each moved
    /// instruction's original key so its seeded branch directions and memory
    /// addresses are unchanged by relayout.
    pub(crate) behavior_keys: Vec<u32>,
}

// Programs are shared immutably across executor worker threads (every
// `Core<'p>` borrows one); keep them `Send + Sync` by construction.
const _: () = {
    const fn send<T: Send>() {}
    const fn sync<T: Sync>() {}
    send::<Program>();
    sync::<Program>();
};

impl Program {
    /// The program's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All functions, in layout order.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All basic blocks, in layout order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All instructions, in layout order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true post-validation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn instr(&self, idx: InstrIdx) -> &Instr {
        &self.instrs[idx.index()]
    }

    /// The block with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// The entry function (the first one declared).
    #[must_use]
    pub fn entry(&self) -> FunctionId {
        FunctionId(0)
    }

    /// The designated page-fault handler, if any.
    #[must_use]
    pub fn fault_handler(&self) -> Option<FunctionId> {
        self.fault_handler
    }

    /// Address of the instruction at `idx`.
    #[must_use]
    pub fn addr_of(&self, idx: InstrIdx) -> InstrAddr {
        InstrAddr(TEXT_BASE + INSTR_BYTES * u64::from(idx.0))
    }

    /// Instruction index for `addr`, if it names an instruction of this
    /// program.
    #[must_use]
    pub fn idx_of_addr(&self, addr: InstrAddr) -> Option<InstrIdx> {
        let raw = addr.raw();
        if raw < TEXT_BASE || !(raw - TEXT_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = (raw - TEXT_BASE) / INSTR_BYTES;
        if (idx as usize) < self.instrs.len() {
            Some(InstrIdx(idx as u32))
        } else {
            None
        }
    }

    /// The block containing instruction `idx`.
    #[must_use]
    pub fn block_of(&self, idx: InstrIdx) -> BlockId {
        BlockId(self.instr_block[idx.index()])
    }

    /// The function containing instruction `idx`.
    #[must_use]
    pub fn function_of(&self, idx: InstrIdx) -> FunctionId {
        FunctionId(self.instr_func[idx.index()])
    }

    /// The behaviour-seed key of instruction `idx`: what the executor mixes
    /// into the seed of this instruction's branch/memory state. Equal to the
    /// raw index for builder-built programs; preserved across
    /// [`crate::ProgramEditor`] rewrites so moved instructions keep their
    /// dynamic behaviour.
    #[must_use]
    pub fn behavior_key(&self, idx: InstrIdx) -> u32 {
        self.behavior_keys[idx.index()]
    }

    /// The symbol of instruction `idx` at granularity `g`.
    #[must_use]
    pub fn symbol_of(&self, idx: InstrIdx, g: Granularity) -> SymbolId {
        match g {
            Granularity::Instruction => SymbolId(idx.0),
            Granularity::BasicBlock => SymbolId(self.instr_block[idx.index()]),
            Granularity::Function => SymbolId(self.instr_func[idx.index()]),
        }
    }

    /// Number of distinct symbols at granularity `g`.
    #[must_use]
    pub fn num_symbols(&self, g: Granularity) -> usize {
        match g {
            Granularity::Instruction => self.instrs.len(),
            Granularity::BasicBlock => self.blocks.len(),
            Granularity::Function => self.functions.len(),
        }
    }

    /// Human-readable name of a symbol at granularity `g`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is out of range for `g`.
    #[must_use]
    pub fn symbol_name(&self, g: Granularity, sym: SymbolId) -> String {
        match g {
            Granularity::Instruction => {
                let idx = InstrIdx(sym.0);
                let func = &self.functions[self.instr_func[idx.index()] as usize];
                format!(
                    "{}@{}<{}>",
                    self.addr_of(idx),
                    func.name,
                    self.instr(idx).kind()
                )
            }
            Granularity::BasicBlock => {
                let blk = &self.blocks[sym.0 as usize];
                let func = &self.functions[blk.function.index()];
                format!("{}.bb{}", func.name, sym.0)
            }
            Granularity::Function => self.functions[sym.0 as usize].name.clone(),
        }
    }

    /// A [`SymbolMap`] for fast address-to-symbol lookups at granularity `g`.
    #[must_use]
    pub fn symbol_map(&self, g: Granularity) -> SymbolMap {
        let table = (0..self.instrs.len() as u32)
            .map(|i| self.symbol_of(InstrIdx(i), g).0)
            .collect();
        SymbolMap {
            granularity: g,
            table,
            num_symbols: self.num_symbols(g) as u32,
        }
    }

    /// The static fall-through successor of instruction `idx` (the next
    /// instruction in layout order), if any.
    #[must_use]
    pub fn next_idx(&self, idx: InstrIdx) -> Option<InstrIdx> {
        let n = idx.0 + 1;
        ((n as usize) < self.instrs.len()).then_some(InstrIdx(n))
    }

    /// The address execution resumes at after the call at `call_idx` returns:
    /// the first instruction of the block following the call's block.
    /// This is what a return-address stack pushes.
    ///
    /// # Panics
    ///
    /// Panics if `call_idx` is not a call (validation guarantees calls have a
    /// following block in the same function).
    #[must_use]
    pub fn call_resume_addr(&self, call_idx: InstrIdx) -> InstrAddr {
        assert_eq!(
            self.instr(call_idx).kind(),
            crate::InstrKind::Call,
            "not a call"
        );
        let call_block = self.block_of(call_idx);
        let next_block = &self.blocks[call_block.index() + 1];
        self.addr_of(next_block.first_instr())
    }
}

/// Flat address-to-symbol lookup table for one granularity.
///
/// Profilers use this during post-processing, mirroring how the paper's
/// tooling maps sampled instruction addresses onto binary symbols.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolMap {
    granularity: Granularity,
    /// Per-instruction symbol index.
    table: Vec<u32>,
    num_symbols: u32,
}

impl SymbolMap {
    /// The granularity this map resolves to.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of symbols in the namespace.
    #[must_use]
    pub fn num_symbols(&self) -> usize {
        self.num_symbols as usize
    }

    /// The symbol of instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn symbol(&self, idx: InstrIdx) -> SymbolId {
        SymbolId(self.table[idx.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::BranchBehavior;

    fn two_function_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let helper = b.function("helper");

        let m0 = b.block(main);
        b.push(m0, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(m0, Instr::call(helper));
        let m1 = b.block(main);
        b.push(m1, Instr::halt());

        let h0 = b.block(helper);
        b.push(
            h0,
            Instr::int_alu(Some(Reg::int(2)), [Some(Reg::int(1)), None]),
        );
        b.push(h0, Instr::ret());

        b.build().expect("valid program")
    }

    #[test]
    fn addresses_round_trip() {
        let p = two_function_program();
        for i in 0..p.len() {
            let idx = InstrIdx(i as u32);
            let addr = p.addr_of(idx);
            assert_eq!(p.idx_of_addr(addr), Some(idx));
        }
        assert_eq!(p.idx_of_addr(InstrAddr::new(TEXT_BASE - 4)), None);
        assert_eq!(p.idx_of_addr(InstrAddr::new(TEXT_BASE + 1)), None);
        assert_eq!(
            p.idx_of_addr(InstrAddr::new(TEXT_BASE + INSTR_BYTES * p.len() as u64)),
            None
        );
    }

    #[test]
    fn symbols_at_all_granularities() {
        let p = two_function_program();
        assert_eq!(p.num_symbols(Granularity::Function), 2);
        assert_eq!(p.num_symbols(Granularity::BasicBlock), 3);
        assert_eq!(p.num_symbols(Granularity::Instruction), 5);

        // helper's instructions belong to function 1.
        let helper_instr = InstrIdx(3);
        assert_eq!(
            p.symbol_of(helper_instr, Granularity::Function),
            SymbolId(1)
        );
        assert_eq!(p.function_of(helper_instr), FunctionId(1));
        assert_eq!(p.symbol_name(Granularity::Function, SymbolId(1)), "helper");
    }

    #[test]
    fn symbol_map_matches_symbol_of() {
        let p = two_function_program();
        for g in [
            Granularity::Instruction,
            Granularity::BasicBlock,
            Granularity::Function,
        ] {
            let map = p.symbol_map(g);
            assert_eq!(map.granularity(), g);
            assert_eq!(map.num_symbols(), p.num_symbols(g));
            for i in 0..p.len() {
                let idx = InstrIdx(i as u32);
                assert_eq!(map.symbol(idx), p.symbol_of(idx, g));
            }
        }
    }

    #[test]
    fn block_layout_is_contiguous() {
        let p = two_function_program();
        let mut next = 0;
        for blk in p.blocks() {
            assert_eq!(blk.instr_range().start, next);
            next = blk.instr_range().end;
            assert!(!blk.is_empty());
        }
        assert_eq!(next, p.len());
    }

    #[test]
    fn branch_constructor_roundtrip() {
        let i = Instr::branch(BlockId(3), BranchBehavior::AlwaysTaken);
        assert_eq!(i.kind(), InstrKind::Branch);
        assert_eq!(i.taken_target(), Some(BlockId(3)));
        assert_eq!(i.branch_behavior(), Some(&BranchBehavior::AlwaysTaken));
    }
}
