//! Minimal binary codec for checkpoint snapshots.
//!
//! Simulator state is serialized by hand into little-endian byte streams —
//! the vendored `serde` is a no-op marker stub, and a hand-rolled format
//! keeps snapshots compact, versionable, and free of platform-dependent
//! layout. Every crate in the stack encodes its state with these helpers;
//! `tip-trace` wraps the result in the CRC-framed `TIPS` container.
//!
//! Encoding writes into a plain `Vec<u8>` via the `put_*` functions; decoding
//! goes through [`SnapReader`], which bounds-checks every read and surfaces
//! damage as a [`SnapError`] instead of panicking — a poisoned checkpoint
//! must be an error, not an abort.

use std::error::Error;
use std::fmt;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the expected field.
    UnexpectedEof,
    /// A field decoded to a structurally impossible value.
    Malformed(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof => write!(f, "snapshot truncated mid-field"),
            SnapError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl Error for SnapError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends an `Option<u64>` as a presence byte plus the value.
pub fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
        None => put_u8(out, 0),
    }
}

/// Appends an `Option<u32>` as a presence byte plus the value.
pub fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            put_u8(out, 1);
            put_u32(out, x);
        }
        None => put_u8(out, 0),
    }
}

/// Appends a collection length as a `u32` (snapshots never need more).
///
/// # Panics
///
/// Panics if `len` exceeds `u32::MAX` — no simulator structure gets there.
pub fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u32(
        out,
        u32::try_from(len).expect("snapshot collection fits u32"),
    );
}

/// A bounds-checked cursor over an encoded snapshot.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `data`, positioned at the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes (e.g. a length-prefixed nested stream).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte")),
        }
    }

    /// Reads an `Option<u64>` written by [`put_opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapError::Malformed("option tag")),
        }
    }

    /// Reads an `Option<u32>` written by [`put_opt_u32`].
    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapError::Malformed("option tag")),
        }
    }

    /// Reads a collection length written by [`put_len`], rejecting lengths
    /// that cannot fit in the remaining bytes at one byte per element (a
    /// cheap guard against allocating on garbage).
    pub fn len(&mut self) -> Result<usize, SnapError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(SnapError::Malformed("length exceeds snapshot"));
        }
        Ok(n)
    }

    /// Reads a length with an element width hint: `n * width_bytes` must fit
    /// in the remaining stream.
    pub fn len_of(&mut self, width_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u32()? as usize;
        if n.checked_mul(width_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(SnapError::Malformed("length exceeds snapshot"));
        }
        Ok(n)
    }
}

/// All instruction kinds in tag order — the snapshot format's stable
/// numbering (append-only; never reorder).
const KINDS: [crate::InstrKind; 16] = [
    crate::InstrKind::IntAlu,
    crate::InstrKind::IntMul,
    crate::InstrKind::IntDiv,
    crate::InstrKind::FpAlu,
    crate::InstrKind::FpMul,
    crate::InstrKind::FpDiv,
    crate::InstrKind::Load,
    crate::InstrKind::Store,
    crate::InstrKind::Branch,
    crate::InstrKind::Jump,
    crate::InstrKind::Call,
    crate::InstrKind::Ret,
    crate::InstrKind::CsrFlush,
    crate::InstrKind::Fence,
    crate::InstrKind::Nop,
    crate::InstrKind::Halt,
];

/// Appends an [`crate::InstrKind`] as its stable one-byte tag.
pub fn put_kind(out: &mut Vec<u8>, kind: crate::InstrKind) {
    let tag = KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("every kind has a tag");
    put_u8(out, tag as u8);
}

/// Reads an [`crate::InstrKind`] tag written by [`put_kind`].
pub fn get_kind(r: &mut SnapReader<'_>) -> Result<crate::InstrKind, SnapError> {
    KINDS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(SnapError::Malformed("instruction kind tag"))
}

/// Captures a [`rand::rngs::SmallRng`]'s state (4 little-endian words).
pub fn put_rng(out: &mut Vec<u8>, rng: &rand::rngs::SmallRng) {
    for w in rng.state() {
        put_u64(out, w);
    }
}

/// Restores a [`rand::rngs::SmallRng`] captured by [`put_rng`].
pub fn get_rng(r: &mut SnapReader<'_>) -> Result<rand::rngs::SmallRng, SnapError> {
    let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    Ok(rand::rngs::SmallRng::from_state(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.125);
        put_bool(&mut buf, true);
        put_opt_u64(&mut buf, None);
        put_opt_u64(&mut buf, Some(99));
        put_opt_u32(&mut buf, Some(3));
        put_len(&mut buf, 2);
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);

        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(99));
        assert_eq!(r.opt_u32().unwrap(), Some(3));
        let n = r.len().unwrap();
        assert_eq!(n, 2);
        assert_eq!((r.u8().unwrap(), r.u8().unwrap()), (1, 2));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        for cut in 0..8 {
            let mut r = SnapReader::new(&buf[..cut]);
            assert_eq!(r.u64(), Err(SnapError::UnexpectedEof));
        }
    }

    #[test]
    fn garbage_tags_are_malformed() {
        let mut r = SnapReader::new(&[2]);
        assert_eq!(r.bool(), Err(SnapError::Malformed("bool byte")));
        let mut r = SnapReader::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(r.opt_u64(), Err(SnapError::Malformed("option tag")));
    }

    #[test]
    fn hostile_length_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = SnapReader::new(&buf);
        assert!(r.len().is_err());
        let mut buf = Vec::new();
        put_u32(&mut buf, 10);
        put_u64(&mut buf, 0); // only 8 bytes follow, but 10 * 8 claimed
        let mut r = SnapReader::new(&buf);
        assert!(r.len_of(8).is_err());
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in KINDS {
            let mut buf = Vec::new();
            put_kind(&mut buf, kind);
            assert_eq!(get_kind(&mut SnapReader::new(&buf)).unwrap(), kind);
        }
        assert!(get_kind(&mut SnapReader::new(&[16])).is_err());
    }

    #[test]
    fn rng_state_roundtrips_mid_stream() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut buf = Vec::new();
        put_rng(&mut buf, &rng);
        let mut restored = get_rng(&mut SnapReader::new(&buf)).unwrap();
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
