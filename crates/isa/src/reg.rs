//! Logical (architectural) registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of logical registers per class.
pub const NUM_LOGICAL_REGS: u8 = 32;

/// Register class: integer or floating-point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// A logical (architectural) register: a class plus an index in `0..32`.
///
/// Workload generators assign logical registers to shape the dependency
/// structure (and hence the ILP) of a program; the simulator's renamer maps
/// them onto physical registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg {
    class: RegClass,
    index: u8,
}

impl Reg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!(
            index < NUM_LOGICAL_REGS,
            "integer register index {index} out of range"
        );
        Reg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!(
            index < NUM_LOGICAL_REGS,
            "fp register index {index} out of range"
        );
        Reg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register class.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class, in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.index
    }

    /// A dense index in `0..64` combining class and index (integer registers
    /// first), convenient for rename-map tables.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_LOGICAL_REGS as usize + self.index as usize,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "x{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_index_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_LOGICAL_REGS {
            assert!(seen.insert(Reg::int(i).dense_index()));
            assert!(seen.insert(Reg::fp(i).dense_index()));
        }
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&d| d < 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::int(5).to_string(), "x5");
        assert_eq!(Reg::fp(31).to_string(), "f31");
    }
}
