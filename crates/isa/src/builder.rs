//! Program construction and validation.

use crate::kind::InstrKind;
use crate::program::{BasicBlock, BlockId, Function, FunctionId, Instr, Program};
use std::error::Error;
use std::fmt;

/// Errors detected when validating a program in [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The program declares no functions.
    NoFunctions,
    /// A function has no blocks.
    EmptyFunction(String),
    /// A block has no instructions.
    EmptyBlock(u32),
    /// A control-flow instruction appears before the end of its block.
    TerminatorNotLast(u32),
    /// A branch's taken target is in a different function.
    CrossFunctionBranch(u32),
    /// A jump's target is in a different function.
    CrossFunctionJump(u32),
    /// A block falls through (or a call returns) past the end of its
    /// function.
    MissingFallThrough(u32),
    /// A branch is missing its direction behaviour or target.
    IncompleteBranch(u32),
    /// A memory instruction is missing its address behaviour.
    MissingMemBehavior(u32),
    /// A fault spec is attached to a non-load instruction.
    FaultOnNonLoad(u32),
    /// A load carries a fault spec but no fault handler was designated.
    MissingFaultHandler,
    /// The designated fault handler does not end with `ret`.
    HandlerMustReturn,
    /// A call targets an unknown function, or a branch/jump targets an
    /// unknown block.
    DanglingTarget(u32),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoFunctions => write!(f, "program declares no functions"),
            BuildError::EmptyFunction(name) => write!(f, "function `{name}` has no blocks"),
            BuildError::EmptyBlock(b) => write!(f, "block {b} has no instructions"),
            BuildError::TerminatorNotLast(i) => {
                write!(
                    f,
                    "control-flow instruction {i} is not the last in its block"
                )
            }
            BuildError::CrossFunctionBranch(i) => {
                write!(f, "branch {i} targets a block in another function")
            }
            BuildError::CrossFunctionJump(i) => {
                write!(f, "jump {i} targets a block in another function")
            }
            BuildError::MissingFallThrough(i) => {
                write!(
                    f,
                    "instruction {i} falls through past the end of its function"
                )
            }
            BuildError::IncompleteBranch(i) => {
                write!(f, "branch {i} lacks a target or direction behaviour")
            }
            BuildError::MissingMemBehavior(i) => {
                write!(f, "memory instruction {i} lacks an address behaviour")
            }
            BuildError::FaultOnNonLoad(i) => {
                write!(f, "fault spec attached to non-load instruction {i}")
            }
            BuildError::MissingFaultHandler => {
                write!(
                    f,
                    "a load carries a fault spec but no fault handler is designated"
                )
            }
            BuildError::HandlerMustReturn => {
                write!(f, "the fault handler's last block must end with `ret`")
            }
            BuildError::DanglingTarget(i) => {
                write!(f, "instruction {i} targets an unknown block or function")
            }
        }
    }
}

impl Error for BuildError {}

/// Incrementally builds a [`Program`]; [`build`](ProgramBuilder::build)
/// validates the control-flow structure.
///
/// Functions and blocks are laid out in creation order; block handles may be
/// created ahead of filling them, so forward branch targets are easy to
/// express.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    func_names: Vec<String>,
    /// Per-function list of its block ids, in creation order.
    func_blocks: Vec<Vec<u32>>,
    /// Per-block owning function and instruction list.
    block_func: Vec<u32>,
    block_instrs: Vec<Vec<Instr>>,
    fault_handler: Option<FunctionId>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program named `"anonymous"`.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            name: "anonymous".to_owned(),
            ..Default::default()
        }
    }

    /// Creates an empty builder for a program named `name`.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a function. The first function declared is the entry point.
    pub fn function(&mut self, name: impl Into<String>) -> FunctionId {
        let id = FunctionId(self.func_names.len() as u32);
        self.func_names.push(name.into());
        self.func_blocks.push(Vec::new());
        id
    }

    /// Appends a new empty block to `func` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `func` was not created by this builder.
    pub fn block(&mut self, func: FunctionId) -> BlockId {
        let id = BlockId(self.block_func.len() as u32);
        self.block_func.push(func.0);
        self.block_instrs.push(Vec::new());
        self.func_blocks[func.index()].push(id.0);
        id
    }

    /// Appends `instr` to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn push(&mut self, block: BlockId, instr: Instr) -> &mut Self {
        self.block_instrs[block.index()].push(instr);
        self
    }

    /// Designates `func` as the page-fault handler invoked by faulting loads.
    pub fn set_fault_handler(&mut self, func: FunctionId) -> &mut Self {
        self.fault_handler = Some(func);
        self
    }

    /// Number of instructions pushed so far.
    #[must_use]
    pub fn instr_count(&self) -> usize {
        self.block_instrs.iter().map(Vec::len).sum()
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] describing the first structural problem
    /// found: empty functions/blocks, misplaced terminators, cross-function
    /// branch targets, missing fall-throughs, incomplete branch or memory
    /// annotations, or fault-handler issues.
    pub fn build(self) -> Result<Program, BuildError> {
        if self.func_names.is_empty() {
            return Err(BuildError::NoFunctions);
        }

        // Lay out: functions in order, each function's blocks in creation
        // order, blocks contiguous.
        let mut functions = Vec::with_capacity(self.func_names.len());
        let mut blocks = Vec::new();
        let mut instrs = Vec::new();
        let mut instr_block = Vec::new();
        let mut instr_func = Vec::new();
        // Original block id -> laid-out block id.
        let mut block_remap = vec![u32::MAX; self.block_instrs.len()];

        for (fi, name) in self.func_names.iter().enumerate() {
            let block_start = blocks.len() as u32;
            if self.func_blocks[fi].is_empty() {
                return Err(BuildError::EmptyFunction(name.clone()));
            }
            for &orig_block in &self.func_blocks[fi] {
                let new_id = BlockId(blocks.len() as u32);
                block_remap[orig_block as usize] = new_id.0;
                let start = instrs.len() as u32;
                let body = &self.block_instrs[orig_block as usize];
                if body.is_empty() {
                    return Err(BuildError::EmptyBlock(new_id.0));
                }
                for instr in body {
                    instr_block.push(new_id.0);
                    instr_func.push(fi as u32);
                    instrs.push(instr.clone());
                }
                blocks.push(BasicBlock {
                    id: new_id,
                    function: FunctionId(fi as u32),
                    start,
                    end: instrs.len() as u32,
                });
            }
            functions.push(Function {
                id: FunctionId(fi as u32),
                name: name.clone(),
                block_start,
                block_end: blocks.len() as u32,
            });
        }

        // Remap branch/jump targets to laid-out block ids.
        for instr in &mut instrs {
            for t in [&mut instr.taken_target, &mut instr.jump_target]
                .into_iter()
                .flatten()
            {
                let orig = t.0 as usize;
                if orig >= block_remap.len() || block_remap[orig] == u32::MAX {
                    return Err(BuildError::DanglingTarget(0));
                }
                *t = BlockId(block_remap[orig]);
            }
        }

        // Structural validation.
        let mut needs_handler = false;
        for (bi, block) in blocks.iter().enumerate() {
            let func = &functions[block.function.index()];
            let last_block_of_func = bi as u32 + 1 == func.block_end;
            for gi in block.instr_range() {
                let instr = &instrs[gi];
                let is_last = gi + 1 == block.instr_range().end;
                if instr.kind.is_terminator() && !is_last {
                    return Err(BuildError::TerminatorNotLast(gi as u32));
                }
                match instr.kind {
                    InstrKind::Branch => {
                        let (Some(target), Some(_)) =
                            (instr.taken_target, instr.branch_behavior.as_ref())
                        else {
                            return Err(BuildError::IncompleteBranch(gi as u32));
                        };
                        if blocks[target.index()].function != block.function {
                            return Err(BuildError::CrossFunctionBranch(gi as u32));
                        }
                        // A branch can fall through; the next block must be
                        // in the same function.
                        if last_block_of_func {
                            return Err(BuildError::MissingFallThrough(gi as u32));
                        }
                    }
                    InstrKind::Jump => {
                        let Some(target) = instr.jump_target else {
                            return Err(BuildError::DanglingTarget(gi as u32));
                        };
                        if blocks[target.index()].function != block.function {
                            return Err(BuildError::CrossFunctionJump(gi as u32));
                        }
                    }
                    InstrKind::Call => {
                        let Some(callee) = instr.callee else {
                            return Err(BuildError::DanglingTarget(gi as u32));
                        };
                        if callee.index() >= functions.len() {
                            return Err(BuildError::DanglingTarget(gi as u32));
                        }
                        // Execution resumes at the next block after return.
                        if last_block_of_func {
                            return Err(BuildError::MissingFallThrough(gi as u32));
                        }
                    }
                    InstrKind::Load | InstrKind::Store => {
                        if instr.mem.is_none() {
                            return Err(BuildError::MissingMemBehavior(gi as u32));
                        }
                        if instr.fault.is_some() {
                            if instr.kind != InstrKind::Load {
                                return Err(BuildError::FaultOnNonLoad(gi as u32));
                            }
                            needs_handler = true;
                        }
                    }
                    _ => {
                        if instr.fault.is_some() {
                            return Err(BuildError::FaultOnNonLoad(gi as u32));
                        }
                    }
                }
                // Plain fall-through off the end of a function.
                if is_last && !instr.kind.is_terminator() && last_block_of_func {
                    return Err(BuildError::MissingFallThrough(gi as u32));
                }
            }
        }

        let fault_handler = if needs_handler {
            let handler = self.fault_handler.ok_or(BuildError::MissingFaultHandler)?;
            // Handler's final block must end with ret.
            let func = &functions[handler.index()];
            let last_block = &blocks[func.block_end as usize - 1];
            let last_instr = &instrs[last_block.instr_range().end - 1];
            if last_instr.kind != InstrKind::Ret {
                return Err(BuildError::HandlerMustReturn);
            }
            Some(handler)
        } else {
            self.fault_handler
        };

        let behavior_keys = (0..instrs.len() as u32).collect();
        Ok(Program {
            name: self.name,
            functions,
            blocks,
            instrs,
            instr_block,
            instr_func,
            fault_handler,
            behavior_keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{BranchBehavior, FaultSpec, MemBehavior};
    use crate::reg::Reg;

    fn loop_program() -> ProgramBuilder {
        let mut b = ProgramBuilder::named("loop");
        let main = b.function("main");
        let body = b.block(main);
        b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(
            body,
            Instr::branch(body, BranchBehavior::Loop { taken_iters: 2 }),
        );
        let exit = b.block(main);
        b.push(exit, Instr::halt());
        b
    }

    #[test]
    fn valid_program_builds() {
        let p = loop_program().build().expect("valid");
        assert_eq!(p.name(), "loop");
        assert_eq!(p.len(), 3);
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.blocks().len(), 2);
    }

    #[test]
    fn no_functions_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            BuildError::NoFunctions
        );
    }

    #[test]
    fn empty_function_rejected() {
        let mut b = ProgramBuilder::new();
        b.function("empty");
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::EmptyFunction(_)
        ));
    }

    #[test]
    fn empty_block_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        b.block(f);
        assert!(matches!(b.build().unwrap_err(), BuildError::EmptyBlock(_)));
    }

    #[test]
    fn terminator_must_be_last() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let blk = b.block(f);
        b.push(blk, Instr::halt());
        b.push(blk, Instr::nop());
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::TerminatorNotLast(_)
        ));
    }

    #[test]
    fn branch_fall_through_must_exist() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let blk = b.block(f);
        b.push(blk, Instr::branch(blk, BranchBehavior::AlwaysTaken));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::MissingFallThrough(_)
        ));
    }

    #[test]
    fn cross_function_branch_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let g = b.function("other");
        let gb = b.block(g);
        b.push(gb, Instr::ret());
        let blk = b.block(f);
        b.push(blk, Instr::branch(gb, BranchBehavior::AlwaysTaken));
        let exit = b.block(f);
        b.push(exit, Instr::halt());
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::CrossFunctionBranch(_)
        ));
    }

    #[test]
    fn memory_instr_requires_behavior() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let blk = b.block(f);
        b.push(
            blk,
            Instr::op(InstrKind::Load, Some(Reg::int(1)), [None, None]),
        );
        b.push(blk, Instr::halt());
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::MissingMemBehavior(_)
        ));
    }

    #[test]
    fn fault_requires_handler() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let blk = b.block(f);
        b.push(
            blk,
            Instr::load(Some(Reg::int(1)), None, MemBehavior::Fixed { addr: 0x8000 })
                .with_fault(FaultSpec { every: 100 }),
        );
        b.push(blk, Instr::halt());
        assert_eq!(b.build().unwrap_err(), BuildError::MissingFaultHandler);
    }

    #[test]
    fn fault_handler_must_return() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let h = b.function("handler");
        let hb = b.block(h);
        b.push(hb, Instr::halt()); // not ret
        let blk = b.block(f);
        b.push(
            blk,
            Instr::load(Some(Reg::int(1)), None, MemBehavior::Fixed { addr: 0x8000 })
                .with_fault(FaultSpec { every: 100 }),
        );
        b.push(blk, Instr::halt());
        b.set_fault_handler(h);
        assert_eq!(b.build().unwrap_err(), BuildError::HandlerMustReturn);
    }

    #[test]
    fn fall_through_off_function_end_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main");
        let blk = b.block(f);
        b.push(blk, Instr::nop());
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::MissingFallThrough(_)
        ));
    }

    #[test]
    fn error_messages_are_nonempty_lowercase() {
        let errs: Vec<BuildError> = vec![
            BuildError::NoFunctions,
            BuildError::EmptyFunction("f".into()),
            BuildError::EmptyBlock(0),
            BuildError::TerminatorNotLast(0),
            BuildError::CrossFunctionBranch(0),
            BuildError::CrossFunctionJump(0),
            BuildError::MissingFallThrough(0),
            BuildError::IncompleteBranch(0),
            BuildError::MissingMemBehavior(0),
            BuildError::FaultOnNonLoad(0),
            BuildError::MissingFaultHandler,
            BuildError::HandlerMustReturn,
            BuildError::DanglingTarget(0),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
