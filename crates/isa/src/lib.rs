//! Static program model for the TIP reproduction.
//!
//! This crate provides the substrate that stands in for compiled RISC-V
//! binaries in the paper's evaluation: a small instruction set ([`InstrKind`]),
//! programs structured as functions of basic blocks ([`Program`]), a builder
//! with validation ([`ProgramBuilder`]), symbol lookup at instruction, basic
//! block, and function granularity ([`Granularity`], [`SymbolMap`]), and a
//! functional [`Executor`] that turns the static CFG plus per-instruction
//! behaviour annotations ([`BranchBehavior`], [`MemBehavior`]) into the
//! dynamic, correct-path instruction stream consumed by the timing simulator
//! in `tip-ooo`.
//!
//! Programs here are *synthetic*: instructions do not compute real values.
//! Instead, every control-flow or memory instruction carries a seeded
//! behaviour that deterministically decides branch outcomes and memory
//! addresses. This preserves exactly what the paper's evaluation depends on —
//! dependency structure (ILP), stall/flush/drain behaviour, and a symbol
//! hierarchy — without needing SPEC/PARSEC binaries.
//!
//! # Example
//!
//! ```
//! use tip_isa::{ProgramBuilder, Instr, Reg, BranchBehavior, Executor};
//!
//! # fn main() -> Result<(), tip_isa::BuildError> {
//! let mut b = ProgramBuilder::new();
//! let main = b.function("main");
//! let body = b.block(main);
//! b.push(body, Instr::int_alu(Some(Reg::int(1)), [None, None]));
//! b.push(body, Instr::branch(body, BranchBehavior::Loop { taken_iters: 3 }));
//! let exit = b.block(main);
//! b.push(exit, Instr::halt());
//! let program = b.build()?;
//!
//! let stream: Vec<_> = Executor::new(&program, 42).take(16).collect();
//! assert_eq!(stream.len(), 9); // 4 loop iterations of 2 instrs + halt
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod behavior;
mod builder;
mod edit;
mod exec;
mod kind;
mod program;
mod reg;
pub mod snap;
mod validate;

pub use behavior::{BranchBehavior, FaultSpec, MemBehavior};
pub use builder::{BuildError, ProgramBuilder};
pub use edit::{BlockKey, EditError, ProgramEditor, Provenance};
pub use exec::{DynInstr, Executor, WrongPath, WrongPathInstr};
pub use kind::{FuClass, InstrKind};
pub use program::{
    BasicBlock, BlockId, Function, FunctionId, Granularity, Instr, InstrAddr, InstrIdx, Program,
    SymbolId, SymbolMap, INSTR_BYTES, TEXT_BASE,
};
pub use reg::{Reg, RegClass};
pub use validate::ValidateError;
