//! Instruction kinds and functional-unit classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a static instruction.
///
/// The set is deliberately small: it is the minimum needed to reproduce the
/// commit-stage behaviour the paper's profilers distinguish — integer and
/// floating-point compute with different latencies, loads and stores (stall
/// states), branches and jumps (flush state via misprediction), CSR
/// instructions that flush the pipeline at commit (the Imagick case study),
/// fences (serialized dispatch), and nops (the Imagick optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Pipelined floating-point add/sub/compare.
    FpAlu,
    /// Pipelined floating-point multiply / fused multiply-add.
    FpMul,
    /// Unpipelined floating-point divide / square root.
    FpDiv,
    /// Memory load; latency depends on the cache hierarchy.
    Load,
    /// Memory store; retires through the store buffer at commit.
    Store,
    /// Conditional branch (direction decided by a [`crate::BranchBehavior`]).
    Branch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call; pushes a return address consumed by `Ret`.
    Call,
    /// Function return; target predicted through the return-address stack.
    Ret,
    /// Control-status-register access that forces a full pipeline flush when
    /// it commits (e.g. RISC-V `frflags`/`fsflags` on a core that does not
    /// rename status registers — the root cause in the Imagick case study).
    CsrFlush,
    /// Memory fence: dispatch is serialized around it (the ROB must drain
    /// before it dispatches, and nothing dispatches until it commits).
    Fence,
    /// No-operation (still occupies a ROB entry and commits).
    Nop,
    /// Terminates the program when committed.
    Halt,
}

impl InstrKind {
    /// Execution latency in cycles on its functional unit.
    ///
    /// For loads this is only the address-generation component; the memory
    /// access latency is added by the memory hierarchy.
    #[must_use]
    pub fn exec_latency(self) -> u32 {
        match self {
            InstrKind::IntAlu
            | InstrKind::Branch
            | InstrKind::Jump
            | InstrKind::Call
            | InstrKind::Ret
            | InstrKind::CsrFlush
            | InstrKind::Fence
            | InstrKind::Nop
            | InstrKind::Halt => 1,
            InstrKind::IntMul => 3,
            InstrKind::IntDiv => 12,
            InstrKind::FpAlu | InstrKind::FpMul => 4,
            InstrKind::FpDiv => 16,
            InstrKind::Load | InstrKind::Store => 1,
        }
    }

    /// Whether the functional unit is pipelined for this kind (unpipelined
    /// units block their FU for the whole latency).
    #[must_use]
    pub fn pipelined(self) -> bool {
        !matches!(self, InstrKind::IntDiv | InstrKind::FpDiv)
    }

    /// The functional-unit / issue-queue class this kind executes on.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            InstrKind::FpAlu | InstrKind::FpMul | InstrKind::FpDiv => FuClass::Fp,
            InstrKind::Load | InstrKind::Store => FuClass::Mem,
            _ => FuClass::Int,
        }
    }

    /// True for instructions that may redirect the front-end (branches,
    /// jumps, calls, returns).
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            InstrKind::Branch | InstrKind::Jump | InstrKind::Call | InstrKind::Ret
        )
    }

    /// True for instructions that must terminate a basic block.
    #[must_use]
    pub fn is_terminator(self) -> bool {
        self.is_control_flow() || self == InstrKind::Halt
    }

    /// True for loads and stores.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }

    /// Short mnemonic used in profile listings.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstrKind::IntAlu => "alu",
            InstrKind::IntMul => "mul",
            InstrKind::IntDiv => "div",
            InstrKind::FpAlu => "fadd",
            InstrKind::FpMul => "fmul",
            InstrKind::FpDiv => "fdiv",
            InstrKind::Load => "ld",
            InstrKind::Store => "st",
            InstrKind::Branch => "br",
            InstrKind::Jump => "j",
            InstrKind::Call => "call",
            InstrKind::Ret => "ret",
            InstrKind::CsrFlush => "csr",
            InstrKind::Fence => "fence",
            InstrKind::Nop => "nop",
            InstrKind::Halt => "halt",
        }
    }
}

impl fmt::Display for InstrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Functional-unit (and issue-queue) class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer pipeline (ALU, MUL, DIV, control flow, CSR, fence, nop).
    Int,
    /// Floating-point pipeline.
    Fp,
    /// Memory pipeline (address generation + load/store unit).
    Mem,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuClass::Int => f.write_str("INT"),
            FuClass::Fp => f.write_str("FP"),
            FuClass::Mem => f.write_str("MEM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flow_kinds_are_terminators() {
        for kind in [
            InstrKind::Branch,
            InstrKind::Jump,
            InstrKind::Call,
            InstrKind::Ret,
            InstrKind::Halt,
        ] {
            assert!(kind.is_terminator(), "{kind} should terminate a block");
        }
        assert!(!InstrKind::IntAlu.is_terminator());
        assert!(!InstrKind::CsrFlush.is_terminator());
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!InstrKind::IntDiv.pipelined());
        assert!(!InstrKind::FpDiv.pipelined());
        assert!(InstrKind::IntMul.pipelined());
        assert!(InstrKind::FpMul.pipelined());
    }

    #[test]
    fn fu_classes() {
        assert_eq!(InstrKind::Load.fu_class(), FuClass::Mem);
        assert_eq!(InstrKind::Store.fu_class(), FuClass::Mem);
        assert_eq!(InstrKind::FpDiv.fu_class(), FuClass::Fp);
        assert_eq!(InstrKind::Branch.fu_class(), FuClass::Int);
        assert_eq!(InstrKind::CsrFlush.fu_class(), FuClass::Int);
    }

    #[test]
    fn latencies_are_positive() {
        for kind in [
            InstrKind::IntAlu,
            InstrKind::IntMul,
            InstrKind::IntDiv,
            InstrKind::FpAlu,
            InstrKind::FpMul,
            InstrKind::FpDiv,
            InstrKind::Load,
            InstrKind::Store,
            InstrKind::Branch,
            InstrKind::Jump,
            InstrKind::Call,
            InstrKind::Ret,
            InstrKind::CsrFlush,
            InstrKind::Fence,
            InstrKind::Nop,
            InstrKind::Halt,
        ] {
            assert!(kind.exec_latency() >= 1);
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(InstrKind::Load.to_string(), "ld");
        assert_eq!(FuClass::Mem.to_string(), "MEM");
    }
}
