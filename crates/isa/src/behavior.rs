//! Behaviour annotations that make synthetic programs executable.
//!
//! A [`BranchBehavior`] deterministically decides the direction of a
//! conditional branch each time it executes; a [`MemBehavior`] produces the
//! effective address of each dynamic load/store. Both are seeded so a program
//! plus a seed yields exactly one dynamic instruction stream, which is what
//! lets every profiler in the evaluation observe the very same execution.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Decides conditional-branch directions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// A loop back-edge: taken `taken_iters` times, then not taken once, then
    /// the cycle repeats. `taken_iters == 0` is a never-taken branch.
    Loop {
        /// Number of consecutive taken executions per loop instance.
        taken_iters: u32,
    },
    /// Independent Bernoulli trials: taken with probability `taken_prob`.
    /// This is the knob for hard-to-predict, flush-inducing branches.
    Bernoulli {
        /// Probability in `[0, 1]` that the branch is taken.
        taken_prob: f64,
    },
    /// A fixed cyclic direction pattern (e.g. `[true, true, false]`).
    Pattern {
        /// Directions replayed cyclically; must be non-empty.
        pattern: Vec<bool>,
    },
    /// Always taken.
    AlwaysTaken,
    /// Never taken.
    NeverTaken,
}

impl BranchBehavior {
    /// The behaviour whose outcome sequence is the element-wise negation of
    /// this one, if it is expressible: swapping a branch's taken target with
    /// its fall-through plus inverting its behaviour preserves the exact
    /// dynamic control flow (the basis of hot-path relayout).
    ///
    /// `Bernoulli` is not invertible — its outcomes come from an RNG whose
    /// stream cannot be negated by re-parameterizing — and `Loop` bodies
    /// longer than 64 iterations are declined to avoid materializing huge
    /// patterns; callers fall back to a trampoline jump in both cases.
    #[must_use]
    pub fn inverted(&self) -> Option<BranchBehavior> {
        match self {
            BranchBehavior::Loop { taken_iters } if *taken_iters <= 64 => {
                // taken^n, not-taken, cyclic — negated: not-taken^n, taken.
                let n = *taken_iters as usize;
                let mut pattern = vec![false; n + 1];
                pattern[n] = true;
                Some(BranchBehavior::Pattern { pattern })
            }
            BranchBehavior::Loop { .. } | BranchBehavior::Bernoulli { .. } => None,
            BranchBehavior::Pattern { pattern } => Some(BranchBehavior::Pattern {
                pattern: pattern.iter().map(|b| !b).collect(),
            }),
            BranchBehavior::AlwaysTaken => Some(BranchBehavior::NeverTaken),
            BranchBehavior::NeverTaken => Some(BranchBehavior::AlwaysTaken),
        }
    }
}

/// Per-dynamic-execution state for one branch instruction.
#[derive(Debug, Clone)]
pub(crate) struct BranchState {
    counter: u64,
    rng: SmallRng,
}

impl BranchState {
    pub(crate) fn new(seed: u64) -> Self {
        BranchState {
            counter: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Serializes the state for a checkpoint.
    pub(crate) fn snapshot_into(&self, out: &mut Vec<u8>) {
        crate::snap::put_u64(out, self.counter);
        crate::snap::put_rng(out, &self.rng);
    }

    /// Restores a state captured by [`BranchState::snapshot_into`].
    pub(crate) fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapError> {
        Ok(BranchState {
            counter: r.u64()?,
            rng: crate::snap::get_rng(r)?,
        })
    }

    /// Produces the next direction for `behavior`.
    pub(crate) fn next_outcome(&mut self, behavior: &BranchBehavior) -> bool {
        let n = self.counter;
        self.counter += 1;
        match behavior {
            BranchBehavior::Loop { taken_iters } => {
                let period = u64::from(*taken_iters) + 1;
                n % period != u64::from(*taken_iters)
            }
            BranchBehavior::Bernoulli { taken_prob } => {
                self.rng.random_bool(taken_prob.clamp(0.0, 1.0))
            }
            BranchBehavior::Pattern { pattern } => {
                if pattern.is_empty() {
                    false
                } else {
                    pattern[(n % pattern.len() as u64) as usize]
                }
            }
            BranchBehavior::AlwaysTaken => true,
            BranchBehavior::NeverTaken => false,
        }
    }
}

/// Produces effective addresses for a load or store instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemBehavior {
    /// Sequential streaming: `base + (k * stride) % footprint` on the k-th
    /// execution. Small footprints stay L1-resident; large footprints with
    /// cache-line strides stream through the hierarchy.
    Stride {
        /// First address of the region.
        base: u64,
        /// Byte step between consecutive accesses.
        stride: u64,
        /// Region size in bytes; the address wraps inside it. Must be > 0.
        footprint: u64,
    },
    /// Uniformly random 8-byte-aligned addresses within a region — the
    /// pointer-chasing stand-in (combine with a loop-carried register
    /// dependency for serialized misses, as in `mcf`).
    RandomIn {
        /// First address of the region.
        base: u64,
        /// Region size in bytes. Must be > 0.
        footprint: u64,
    },
    /// A fixed single address (always the same line; hits after warm-up).
    Fixed {
        /// The constant effective address.
        addr: u64,
    },
}

/// Per-dynamic-execution state for one memory instruction.
#[derive(Debug, Clone)]
pub(crate) struct MemState {
    counter: u64,
    rng: SmallRng,
}

impl MemState {
    pub(crate) fn new(seed: u64) -> Self {
        MemState {
            counter: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Serializes the state for a checkpoint.
    pub(crate) fn snapshot_into(&self, out: &mut Vec<u8>) {
        crate::snap::put_u64(out, self.counter);
        crate::snap::put_rng(out, &self.rng);
    }

    /// Restores a state captured by [`MemState::snapshot_into`].
    pub(crate) fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Self, crate::snap::SnapError> {
        Ok(MemState {
            counter: r.u64()?,
            rng: crate::snap::get_rng(r)?,
        })
    }

    /// Produces the next effective address for `behavior`.
    pub(crate) fn next_addr(&mut self, behavior: &MemBehavior) -> u64 {
        let k = self.counter;
        self.counter += 1;
        match behavior {
            MemBehavior::Stride {
                base,
                stride,
                footprint,
            } => {
                let fp = (*footprint).max(1);
                base + (k.wrapping_mul(*stride)) % fp
            }
            MemBehavior::RandomIn { base, footprint } => {
                let fp = (*footprint).max(8);
                base + (self.rng.random_range(0..fp / 8)) * 8
            }
            MemBehavior::Fixed { addr } => *addr,
        }
    }
}

/// Marks a load as periodically page-faulting.
///
/// The executor interposes the program's designated fault-handler function
/// and a re-execution of the load into the correct-path stream, which is how
/// the paper's State-3 (Flushed, exception flavour) and the page-miss
/// walkthrough of Section 2.2 are exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The load faults on every `every`-th dynamic execution (1-based: the
    /// `every`-th, `2*every`-th, ... executions fault). Must be > 0.
    pub every: u64,
}

impl FaultSpec {
    /// Whether the `n`-th (0-based) dynamic execution of the load faults.
    #[must_use]
    pub fn faults_on(&self, n: u64) -> bool {
        self.every > 0 && (n + 1).is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_behavior_period() {
        let b = BranchBehavior::Loop { taken_iters: 3 };
        let mut st = BranchState::new(1);
        let outcomes: Vec<bool> = (0..8).map(|_| st.next_outcome(&b)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn never_and_always() {
        let mut st = BranchState::new(0);
        assert!(!st.next_outcome(&BranchBehavior::NeverTaken));
        assert!(st.next_outcome(&BranchBehavior::AlwaysTaken));
        assert!(!st.next_outcome(&BranchBehavior::Loop { taken_iters: 0 }));
    }

    #[test]
    fn pattern_cycles() {
        let b = BranchBehavior::Pattern {
            pattern: vec![true, false],
        };
        let mut st = BranchState::new(0);
        let outcomes: Vec<bool> = (0..4).map(|_| st.next_outcome(&b)).collect();
        assert_eq!(outcomes, vec![true, false, true, false]);
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let b = BranchBehavior::Bernoulli { taken_prob: 0.5 };
        let run = |seed| {
            let mut st = BranchState::new(seed);
            (0..64).map(|_| st.next_outcome(&b)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn stride_wraps_in_footprint() {
        let b = MemBehavior::Stride {
            base: 0x1000,
            stride: 64,
            footprint: 256,
        };
        let mut st = MemState::new(0);
        let addrs: Vec<u64> = (0..6).map(|_| st.next_addr(&b)).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0, 0x1000, 0x1040]);
    }

    #[test]
    fn random_in_stays_in_region() {
        let b = MemBehavior::RandomIn {
            base: 0x2000,
            footprint: 4096,
        };
        let mut st = MemState::new(3);
        for _ in 0..256 {
            let a = st.next_addr(&b);
            assert!((0x2000..0x3000).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn inverted_negates_outcomes() {
        let cases = vec![
            BranchBehavior::Loop { taken_iters: 0 },
            BranchBehavior::Loop { taken_iters: 3 },
            BranchBehavior::Pattern {
                pattern: vec![true, false, false, true],
            },
            BranchBehavior::AlwaysTaken,
            BranchBehavior::NeverTaken,
        ];
        for b in cases {
            let inv = b.inverted().expect("invertible");
            let mut st = BranchState::new(5);
            let mut st_inv = BranchState::new(5);
            for _ in 0..32 {
                assert_eq!(st.next_outcome(&b), !st_inv.next_outcome(&inv), "{b:?}");
            }
        }
    }

    #[test]
    fn bernoulli_and_huge_loops_not_invertible() {
        assert_eq!(
            BranchBehavior::Bernoulli { taken_prob: 0.5 }.inverted(),
            None
        );
        assert_eq!(BranchBehavior::Loop { taken_iters: 65 }.inverted(), None);
    }

    #[test]
    fn fault_spec_every() {
        let f = FaultSpec { every: 3 };
        let faults: Vec<bool> = (0..7).map(|n| f.faults_on(n)).collect();
        assert_eq!(faults, vec![false, false, true, false, false, true, false]);
    }
}
