//! Post-construction invariant checking for [`Program`].
//!
//! [`ProgramBuilder`](crate::ProgramBuilder) validates structure once at
//! build time, but CFG rewrites ([`crate::ProgramEditor`]) re-assemble
//! programs from edited pieces. [`Program::validate`] re-checks every
//! invariant the simulator relies on, so a malformed rewrite fails fast with
//! a typed error instead of mis-simulating. The executor asserts it (debug
//! builds) at construction.

use crate::kind::InstrKind;
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// Invariant violations detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program declares no functions.
    NoFunctions,
    /// A function's block range is empty or not contiguous with its
    /// neighbours.
    BadFunctionLayout(u32),
    /// A block's instruction range is empty or not contiguous with its
    /// neighbours, or its recorded id/function disagrees with the layout.
    BadBlockLayout(u32),
    /// `instr_block`/`instr_func`/`behavior_keys` disagree with the layout
    /// (wrong length or wrong owner recorded for an instruction).
    BadInstrIndex(u32),
    /// A control-flow instruction appears before the end of its block.
    TerminatorNotLast(u32),
    /// A branch is missing its direction behaviour or taken target.
    IncompleteBranch(u32),
    /// A branch or jump targets a block outside the program or in another
    /// function.
    BadTarget(u32),
    /// A call targets an unknown function.
    BadCallee(u32),
    /// A block falls through (or a call returns) past the end of its
    /// function.
    MissingFallThrough(u32),
    /// A memory instruction is missing its address behaviour.
    MissingMemBehavior(u32),
    /// A fault spec is attached to a non-load instruction.
    FaultOnNonLoad(u32),
    /// A load carries a fault spec but no fault handler is designated.
    MissingFaultHandler,
    /// The designated fault handler does not end with `ret`.
    HandlerMustReturn,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoFunctions => write!(f, "program declares no functions"),
            ValidateError::BadFunctionLayout(i) => {
                write!(f, "function {i} has an empty or non-contiguous block range")
            }
            ValidateError::BadBlockLayout(b) => {
                write!(
                    f,
                    "block {b} has an empty or non-contiguous instruction range"
                )
            }
            ValidateError::BadInstrIndex(i) => {
                write!(f, "instruction {i} has an inconsistent owner or key table")
            }
            ValidateError::TerminatorNotLast(i) => {
                write!(
                    f,
                    "control-flow instruction {i} is not the last in its block"
                )
            }
            ValidateError::IncompleteBranch(i) => {
                write!(f, "branch {i} lacks a target or direction behaviour")
            }
            ValidateError::BadTarget(i) => {
                write!(f, "instruction {i} targets an unknown or foreign block")
            }
            ValidateError::BadCallee(i) => write!(f, "call {i} targets an unknown function"),
            ValidateError::MissingFallThrough(i) => {
                write!(
                    f,
                    "instruction {i} falls through past the end of its function"
                )
            }
            ValidateError::MissingMemBehavior(i) => {
                write!(f, "memory instruction {i} lacks an address behaviour")
            }
            ValidateError::FaultOnNonLoad(i) => {
                write!(f, "fault spec attached to non-load instruction {i}")
            }
            ValidateError::MissingFaultHandler => {
                write!(
                    f,
                    "a load carries a fault spec but no fault handler is designated"
                )
            }
            ValidateError::HandlerMustReturn => {
                write!(f, "the fault handler's last block must end with `ret`")
            }
        }
    }
}

impl Error for ValidateError {}

impl Program {
    /// Re-checks every structural invariant the simulator relies on: layout
    /// contiguity (functions over blocks, blocks over instructions),
    /// consistent owner tables, terminator placement, intra-function
    /// control-flow targets, fall-through existence, memory/fault
    /// annotations, and fault-handler shape.
    ///
    /// Builder-built programs always pass; this exists so CFG rewrites (and
    /// hand-assembled test programs) fail fast with a typed error.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.functions.is_empty() {
            return Err(ValidateError::NoFunctions);
        }

        // Functions are contiguous over blocks and non-empty.
        let mut next_block = 0u32;
        for (fi, func) in self.functions.iter().enumerate() {
            if func.id.0 != fi as u32
                || func.block_start != next_block
                || func.block_end <= func.block_start
                || func.block_end as usize > self.blocks.len()
            {
                return Err(ValidateError::BadFunctionLayout(fi as u32));
            }
            next_block = func.block_end;
        }
        if next_block as usize != self.blocks.len() {
            return Err(ValidateError::BadFunctionLayout(
                self.functions.len() as u32 - 1,
            ));
        }

        // Blocks are contiguous over instructions, non-empty, and owned by
        // the function whose range contains them.
        let mut next_instr = 0u32;
        for (bi, block) in self.blocks.iter().enumerate() {
            if block.id.0 != bi as u32
                || block.start != next_instr
                || block.end <= block.start
                || block.end as usize > self.instrs.len()
            {
                return Err(ValidateError::BadBlockLayout(bi as u32));
            }
            let func = self
                .functions
                .get(block.function.index())
                .ok_or(ValidateError::BadBlockLayout(bi as u32))?;
            if !(func.block_start..func.block_end).contains(&(bi as u32)) {
                return Err(ValidateError::BadBlockLayout(bi as u32));
            }
            next_instr = block.end;
        }
        if next_instr as usize != self.instrs.len() {
            return Err(ValidateError::BadBlockLayout(self.blocks.len() as u32 - 1));
        }

        // Owner and key tables track the layout exactly.
        if self.instr_block.len() != self.instrs.len()
            || self.instr_func.len() != self.instrs.len()
            || self.behavior_keys.len() != self.instrs.len()
        {
            return Err(ValidateError::BadInstrIndex(0));
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            for gi in block.instr_range() {
                if self.instr_block[gi] != bi as u32 || self.instr_func[gi] != block.function.0 {
                    return Err(ValidateError::BadInstrIndex(gi as u32));
                }
            }
        }

        // Per-instruction structural checks (mirrors the builder).
        let mut needs_handler = false;
        for (bi, block) in self.blocks.iter().enumerate() {
            let func = &self.functions[block.function.index()];
            let last_block_of_func = bi as u32 + 1 == func.block_end;
            for gi in block.instr_range() {
                let instr = &self.instrs[gi];
                let is_last = gi + 1 == block.instr_range().end;
                if instr.kind.is_terminator() && !is_last {
                    return Err(ValidateError::TerminatorNotLast(gi as u32));
                }
                match instr.kind {
                    InstrKind::Branch => {
                        let (Some(target), Some(_)) =
                            (instr.taken_target, instr.branch_behavior.as_ref())
                        else {
                            return Err(ValidateError::IncompleteBranch(gi as u32));
                        };
                        let ok = self
                            .blocks
                            .get(target.index())
                            .is_some_and(|t| t.function == block.function);
                        if !ok {
                            return Err(ValidateError::BadTarget(gi as u32));
                        }
                        if last_block_of_func {
                            return Err(ValidateError::MissingFallThrough(gi as u32));
                        }
                    }
                    InstrKind::Jump => {
                        let ok = instr.jump_target.is_some_and(|t| {
                            self.blocks
                                .get(t.index())
                                .is_some_and(|b| b.function == block.function)
                        });
                        if !ok {
                            return Err(ValidateError::BadTarget(gi as u32));
                        }
                    }
                    InstrKind::Call => {
                        let ok = instr
                            .callee
                            .is_some_and(|c| c.index() < self.functions.len());
                        if !ok {
                            return Err(ValidateError::BadCallee(gi as u32));
                        }
                        if last_block_of_func {
                            return Err(ValidateError::MissingFallThrough(gi as u32));
                        }
                    }
                    InstrKind::Load | InstrKind::Store => {
                        if instr.mem.is_none() {
                            return Err(ValidateError::MissingMemBehavior(gi as u32));
                        }
                        if instr.fault.is_some() {
                            if instr.kind != InstrKind::Load {
                                return Err(ValidateError::FaultOnNonLoad(gi as u32));
                            }
                            needs_handler = true;
                        }
                    }
                    _ => {
                        if instr.fault.is_some() {
                            return Err(ValidateError::FaultOnNonLoad(gi as u32));
                        }
                    }
                }
                if is_last && !instr.kind.is_terminator() && last_block_of_func {
                    return Err(ValidateError::MissingFallThrough(gi as u32));
                }
            }
        }

        if needs_handler {
            let handler = self
                .fault_handler
                .ok_or(ValidateError::MissingFaultHandler)?;
            let func = &self.functions[handler.index()];
            let last_block = &self.blocks[func.block_end as usize - 1];
            let last_instr = &self.instrs[last_block.instr_range().end - 1];
            if last_instr.kind != InstrKind::Ret {
                return Err(ValidateError::HandlerMustReturn);
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BranchBehavior;
    use crate::builder::ProgramBuilder;
    use crate::program::Instr;
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut b = ProgramBuilder::named("sample");
        let main = b.function("main");
        let helper = b.function("helper");
        let m0 = b.block(main);
        b.push(m0, Instr::int_alu(Some(Reg::int(1)), [None, None]));
        b.push(m0, Instr::call(helper));
        let m1 = b.block(main);
        b.push(
            m1,
            Instr::branch(m1, BranchBehavior::Loop { taken_iters: 2 }),
        );
        let m2 = b.block(main);
        b.push(m2, Instr::halt());
        let h0 = b.block(helper);
        b.push(h0, Instr::ret());
        b.build().expect("valid")
    }

    #[test]
    fn builder_output_validates() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn corrupted_owner_table_detected() {
        let mut p = sample();
        p.instr_func[0] = 1;
        assert_eq!(p.validate(), Err(ValidateError::BadInstrIndex(0)));
    }

    #[test]
    fn truncated_behavior_keys_detected() {
        let mut p = sample();
        p.behavior_keys.pop();
        assert_eq!(p.validate(), Err(ValidateError::BadInstrIndex(0)));
    }

    #[test]
    fn dangling_branch_target_detected() {
        let mut p = sample();
        // Retarget the branch at a block of the other function.
        let n = p.blocks.len() as u32;
        for instr in &mut p.instrs {
            if instr.kind == InstrKind::Branch {
                instr.taken_target = Some(crate::program::BlockId(n));
            }
        }
        assert!(matches!(p.validate(), Err(ValidateError::BadTarget(_))));
    }

    #[test]
    fn misplaced_terminator_detected() {
        let mut p = sample();
        // Swap the alu and the call in block 0: call is no longer last.
        p.instrs.swap(0, 1);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::TerminatorNotLast(_))
        ));
    }

    #[test]
    fn error_messages_are_nonempty_lowercase() {
        let errs: Vec<ValidateError> = vec![
            ValidateError::NoFunctions,
            ValidateError::BadFunctionLayout(0),
            ValidateError::BadBlockLayout(0),
            ValidateError::BadInstrIndex(0),
            ValidateError::TerminatorNotLast(0),
            ValidateError::IncompleteBranch(0),
            ValidateError::BadTarget(0),
            ValidateError::BadCallee(0),
            ValidateError::MissingFallThrough(0),
            ValidateError::MissingMemBehavior(0),
            ValidateError::FaultOnNonLoad(0),
            ValidateError::MissingFaultHandler,
            ValidateError::HandlerMustReturn,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
